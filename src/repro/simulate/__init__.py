"""Discrete-event cluster simulator.

Replaces the paper's 8-node Gigabit-Ethernet testbed.  Tasks from both
execution engines run as coroutine processes that pay modeled costs for
CPU, disk and network through bandwidth-shared resources, while the
functional query work (filter/join/aggregate over real rows) happens
eagerly in wall-clock time.

Layers:

* :mod:`repro.simulate.events`  — event loop, processes, timeouts, combinators
* :mod:`repro.simulate.resources` — slot pools, processor-shared bandwidth, memory
* :mod:`repro.simulate.cluster` — nodes and the cluster topology
* :mod:`repro.simulate.metrics` — dstat-style 1 Hz utilization sampler
* :mod:`repro.simulate.faults` — declarative fault plans, elastic
  membership (scale-up/drain) and the heartbeat failure detector
* :mod:`repro.simulate.leases` — multi-query slot arbitration + attribution
* :mod:`repro.simulate.chaos` — randomized fault+membership schedules
  checked against global recovery invariants
"""

from repro.simulate.events import Simulator, Event, Process, Interrupt
from repro.simulate.resources import SlotPool, Bandwidth, MemoryAccount
from repro.simulate.cluster import Node, Cluster, ClusterSpec
from repro.simulate.metrics import MetricsSampler, ResourceSample
from repro.simulate.faults import (
    Degradation,
    Drain,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    HeartbeatMonitor,
    NodeCrash,
    ScaleUp,
    Straggler,
)
from repro.simulate.leases import (
    GangLease,
    LeaseLedger,
    LeaseManager,
    LeaseOwner,
    OwnerUsage,
)

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Interrupt",
    "SlotPool",
    "Bandwidth",
    "MemoryAccount",
    "Node",
    "Cluster",
    "ClusterSpec",
    "MetricsSampler",
    "ResourceSample",
    "FaultPlan",
    "FaultInjector",
    "FaultEvent",
    "HeartbeatMonitor",
    "NodeCrash",
    "Degradation",
    "Straggler",
    "ScaleUp",
    "Drain",
    "LeaseManager",
    "LeaseOwner",
    "LeaseLedger",
    "GangLease",
    "OwnerUsage",
]
