"""Hadoop SequenceFile-style binary row format.

HiBench's Hive workloads use sequence files by default (paper §V-B).  The
encoding is the tagged binary serde from :mod:`repro.common.kv` applied to
each row (empty key, row as value) plus a small per-record header —
the same ballpark overhead a real ``SequenceFile<NullWritable, Text>``
carries.  Like Text it is row-oriented: no pruning, no pushdown.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.kv import fields_size
from repro.common.rows import Schema
from repro.storage.formats.base import (
    FileFormat,
    Row,
    ScanResult,
    StatsConjunct,
    StoredFile,
    register_format,
)

_RECORD_HEADER_BYTES = 8  # record length + key length words


def record_size(row: Row) -> int:
    """Encoded size of one row as a sequence-file record."""
    # empty key tuple contributes exactly its arity byte
    return _RECORD_HEADER_BYTES + 1 + fields_size(row)


class SequenceStoredFile(StoredFile):
    def __init__(self, schema: Schema, rows: List[Row]):
        super().__init__(schema, rows)
        self._offsets = [0]
        running = 0
        for row in rows:
            running += record_size(row)
            self._offsets.append(running)

    @property
    def total_bytes(self) -> int:
        return self._offsets[-1]

    def bytes_for_range(self, row_start: int, row_count: int) -> int:
        row_end = min(row_start + row_count, self.row_count)
        row_start = min(row_start, self.row_count)
        return self._offsets[row_end] - self._offsets[row_start]

    def scan(
        self,
        row_start: int,
        row_count: int,
        columns: Optional[Sequence[str]] = None,
        stats_conjuncts: Optional[Sequence[StatsConjunct]] = None,
    ) -> ScanResult:
        row_end = min(row_start + row_count, self.row_count)
        rows = self.rows[row_start:row_end]
        return ScanResult(rows=rows, bytes_read=self.bytes_for_range(row_start, row_count))


class SequenceFormat(FileFormat):
    name = "sequence"

    def build(self, schema: Schema, rows: List[Row]) -> SequenceStoredFile:
        return SequenceStoredFile(schema, rows)


register_format(SequenceFormat())
