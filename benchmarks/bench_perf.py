"""Wall-clock performance harness for the reproduction itself.

Every other benchmark in this directory reports *simulated* seconds —
the numbers compared against the paper.  This one times the host: how
fast the reproduction executes a TPC-H subset and the HiBench
AGGREGATE/JOIN queries in real wall-clock time, what that is in input
rows per second, and how much memory each workload costs.  The output
lands in ``BENCH_perf.json`` at the repo root so the perf trajectory is
tracked alongside the figure CSVs.

Run standalone::

    python benchmarks/bench_perf.py              # full measurement
    python benchmarks/bench_perf.py --smoke      # small/fast CI variant
    python benchmarks/bench_perf.py --best-of 3  # min wall over 3 passes
    python benchmarks/bench_perf.py --parallel 4 # pool runs + speedup column
    python benchmarks/bench_perf.py --compare BENCH_perf.json

``--guard-seconds`` turns the run into a regression gate: exit non-zero
when total wall-clock exceeds the bound.  ``--compare`` gates against a
committed report instead: exit non-zero when total wall-clock over the
workloads common to both reports regresses more than 25 %.

Each workload executes its script twice on one driver session: the
second pass exercises the compiled-plan cache, and both passes must
produce byte-identical rows (checked via the result digest).  Workloads
whose script is an INSERT hash the output table through ``check_sql``
so the digest covers real rows, never the empty string.  Every workload
is additionally replayed once with ``repro.exec.vectorized=false``
(untimed) and must produce the identical digest — the row pipeline is
the ground truth the vectorized one is checked against.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import connect  # noqa: E402
from repro.bench import perf_workloads  # noqa: E402
from repro.common.config import (  # noqa: E402
    Configuration,
    EXEC_VECTORIZED,
    PARALLEL_WORKERS,
)
from repro.parallel import active_pool  # noqa: E402

OUTPUT_PATH = REPO_ROOT / "BENCH_perf.json"
RUNS_PER_WORKLOAD = 2  # second run hits the driver's plan cache
EMPTY_DIGEST = hashlib.md5().hexdigest()  # digest of zero rows
COMPARE_THRESHOLD = 1.25  # --compare fails beyond +25 % wall-clock


def _peak_rss_kb() -> int:
    """Process peak resident set size in KiB (monotone over the run)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _workers_rss_kb() -> int:
    """Summed peak RSS (VmHWM, KiB) of the live pool workers.

    The pool workers are separate processes, so ``ru_maxrss`` of this
    process never sees their memory; without this probe a ``--parallel``
    run would under-report its footprint.  Returns 0 when no pool is
    active or ``/proc`` is unreadable (non-Linux hosts).
    """
    pool = active_pool()
    if pool is None:
        return 0
    total = 0
    for pid in pool.worker_pids():
        try:
            with open(f"/proc/{pid}/status") as handle:
                for line in handle:
                    if line.startswith("VmHWM:"):
                        total += int(line.split()[1])
                        break
        except (OSError, ValueError, IndexError):
            pass
    return total


def _canonical_row(row) -> str:
    """One row as a digest-stable string.

    Floats are formatted at 9 significant digits: reduce-side sums are
    accumulated in shuffle-arrival order, so repeated runs can differ in
    the last couple of ulps (~1e-12 relative) without any row being
    wrong.  Nine digits distinguishes every real difference and absorbs
    that accumulation noise.
    """
    return "|".join(
        f"{value:.9g}" if isinstance(value, float) else repr(value)
        for value in row
    )


def _digest_rows(results, ordered: bool = True) -> "hashlib._Hash":
    """Stable digest of every result row (result-identity witness).

    ``ordered=False`` hashes the rows as a sorted multiset — used for
    the ``SELECT *`` output-table probes, whose row order is scan order
    (file layout), not a query guarantee.
    """
    hasher = hashlib.md5()
    lines = (
        _canonical_row(row) for result in results for row in result.rows
    )
    if not ordered:
        lines = sorted(lines)
    for line in lines:
        hasher.update(line.encode("utf-8"))
        hasher.update(b"\n")
    return hasher


def _rows_read(results) -> int:
    total = 0
    for result in results:
        if result.execution is None:
            continue
        for job in result.execution.jobs:
            for task in job.tasks:
                total += task.rows_read
    return total


def _simulated_seconds(results) -> float:
    return sum(result.simulated_seconds for result in results)


def _execute_and_digest(driver, script: str, check_sql: str):
    """Run *script*, then the untimed *check_sql* probe, on *driver*.

    Returns (results, digest) where the digest covers the script's own
    rows plus the probe's rows — for INSERT workloads the probe is what
    turns the digest from md5("") into a hash of the produced table.
    """
    results = driver.execute(script)
    hasher = _digest_rows(results)
    if check_sql:
        hasher.update(
            _digest_rows(driver.execute(check_sql), ordered=False).digest()
        )
    return results, hasher.hexdigest()


def _run_workload(spec, parallel: int = 0) -> dict:
    """Time one workload over a freshly built warehouse.

    Dataset generation, DDL, digest probes and the row-mode replay all
    stay outside the timed region; the clock covers only query
    execution in the default (vectorized) mode — the paths this harness
    exists to keep fast.

    With ``parallel`` > 0 the same suite is additionally timed with
    map-task compute dispatched to a worker pool of that size —
    ``wall_seconds`` stays the inline number (so ``--compare`` keeps
    comparing like with like across reports), the pool pass lands in
    ``parallel_wall_seconds`` / ``parallel_speedup``, its digest must
    match the inline digest, and the pool workers' peak RSS folds into
    the memory accounting.
    """
    rss_before = _peak_rss_kb()
    workers_rss_before = _workers_rss_kb()
    hdfs, metastore = spec.build_warehouse()  # untimed: dataset generation
    driver = connect(
        engine=spec.engine, hdfs=hdfs, metastore=metastore,
        conf=Configuration(),
    )
    if spec.setup_sql:
        driver.execute(spec.setup_sql)

    digests = []
    rows_read = 0
    simulated = 0.0
    wall = 0.0
    for _ in range(RUNS_PER_WORKLOAD):
        start = time.perf_counter()
        results = driver.execute(spec.script)
        wall += time.perf_counter() - start
        hasher = _digest_rows(results)
        if spec.check_sql:  # untimed probe of the output table
            hasher.update(
                _digest_rows(driver.execute(spec.check_sql), ordered=False)
                .digest()
            )
        digests.append(hasher.hexdigest())
        rows_read += _rows_read(results)
        simulated += _simulated_seconds(results)

    if len(set(digests)) != 1:
        raise AssertionError(
            f"{spec.name}: repeated runs produced different rows "
            f"(plan-cache correctness violation): {digests}"
        )
    if digests[0] == EMPTY_DIGEST:
        raise AssertionError(
            f"{spec.name}: result digest is md5 of the empty string — the "
            f"workload hashed no rows; give it a check_sql probe"
        )

    # Untimed oracle: the same warehouse and script with the vectorized
    # pipeline disabled must hash to the identical digest.
    row_driver = connect(
        engine=spec.engine, hdfs=hdfs, metastore=metastore,
        conf=Configuration({EXEC_VECTORIZED: "false"}),
    )
    _, row_digest = _execute_and_digest(row_driver, spec.script, spec.check_sql)
    if row_digest != digests[0]:
        raise AssertionError(
            f"{spec.name}: vectorized and row pipelines disagree "
            f"({digests[0]} vs {row_digest})"
        )

    record = {
        "name": spec.name,
        "engine": spec.engine,
        "runs": RUNS_PER_WORKLOAD,
        "wall_seconds": round(wall, 4),
        "rows_read": rows_read,
        "rows_per_second": round(rows_read / wall, 1) if wall > 0 else 0.0,
        "simulated_seconds": round(simulated, 4),
        "result_digest": digests[0],
        "row_mode_digest": row_digest,
    }

    if parallel:
        # Timed pool pass on the same warehouse with the same number of
        # runs (cold + plan-cached, matching the inline loop): the
        # digest must match the inline run's, and the wall ratio is the
        # speedup column.
        pool_driver = connect(
            engine=spec.engine, hdfs=hdfs, metastore=metastore,
            conf=Configuration({PARALLEL_WORKERS: parallel}),
        )
        if spec.setup_sql:
            pool_driver.execute(spec.setup_sql)
        pool_wall = 0.0
        for _ in range(RUNS_PER_WORKLOAD):
            start = time.perf_counter()
            pool_results = pool_driver.execute(spec.script)
            pool_wall += time.perf_counter() - start
            hasher = _digest_rows(pool_results)
            if spec.check_sql:
                hasher.update(
                    _digest_rows(pool_driver.execute(spec.check_sql),
                                 ordered=False).digest()
                )
            if hasher.hexdigest() != digests[0]:
                raise AssertionError(
                    f"{spec.name}: pool and inline execution disagree "
                    f"({digests[0]} vs {hasher.hexdigest()})"
                )
        record["parallel_wall_seconds"] = round(pool_wall, 4)
        record["parallel_speedup"] = round(
            wall / pool_wall, 3
        ) if pool_wall > 0 else 0.0

    workers_rss = max(0, _workers_rss_kb() - workers_rss_before)
    record["rss_workers_kb"] = workers_rss
    record["rss_delta_kb"] = (
        max(0, _peak_rss_kb() - rss_before) + workers_rss
    )
    return record


def run(smoke: bool = False, best_of: int = 1, parallel: int = 0) -> dict:
    """Execute the suite ``best_of`` times; keep each workload's best.

    ``wall_seconds`` is the per-workload minimum (least-noise estimate
    of the code's speed); ``rss_delta_kb`` comes from the first pass,
    the only one that sees the allocations cold — ``ru_maxrss`` is a
    process-wide high-water mark, so later passes mostly report zero
    growth.
    """
    workloads = []
    for spec in perf_workloads(smoke):
        passes = [
            _run_workload(spec, parallel=parallel)
            for _ in range(max(1, best_of))
        ]
        digests = {p["result_digest"] for p in passes}
        if len(digests) != 1:
            raise AssertionError(
                f"{spec.name}: passes produced different rows: {digests}"
            )
        best = min(passes, key=lambda p: p["wall_seconds"])
        best["rss_delta_kb"] = passes[0]["rss_delta_kb"]
        best["rss_workers_kb"] = passes[0]["rss_workers_kb"]
        workloads.append(best)
        speedup = (
            f"  {best['parallel_speedup']:5.2f}x vs inline"
            if "parallel_speedup" in best else ""
        )
        print(
            f"{spec.name:>20} [{spec.engine:>7}]  "
            f"{best['wall_seconds']:8.3f}s wall  "
            f"{best['rows_per_second']:>12,.0f} rows/s  "
            f"{best['simulated_seconds']:10.2f}s simulated{speedup}"
        )
    return {
        "schema_version": 3,
        "mode": "smoke" if smoke else "full",
        "runs_per_workload": RUNS_PER_WORKLOAD,
        "best_of": max(1, best_of),
        "parallel_workers": parallel,
        "workloads": workloads,
        "total_wall_seconds": round(
            sum(w["wall_seconds"] for w in workloads), 4
        ),
        "peak_rss_kb": _peak_rss_kb() + _workers_rss_kb(),
    }


def compare(report: dict, baseline_path: Path,
            threshold: float = COMPARE_THRESHOLD) -> bool:
    """Gate *report* against a committed baseline report.

    Sums wall-clock over the workloads common to both reports and fails
    when the sum regresses beyond *threshold*.  Requires matching modes:
    smoke and full datasets are not comparable.
    """
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("mode") != report["mode"]:
        print(
            f"--compare: baseline mode {baseline.get('mode')!r} != current "
            f"mode {report['mode']!r}; run the same suite as the baseline",
            file=sys.stderr,
        )
        return False
    base = {w["name"]: w["wall_seconds"] for w in baseline["workloads"]}
    cur = {w["name"]: w["wall_seconds"] for w in report["workloads"]}
    common = sorted(set(base) & set(cur))
    if not common:
        print("--compare: no workloads in common with the baseline",
              file=sys.stderr)
        return False
    base_total = sum(base[name] for name in common)
    cur_total = sum(cur[name] for name in common)
    ratio = cur_total / base_total if base_total > 0 else float("inf")
    print(
        f"compare vs {baseline_path.name} over {len(common)} workloads: "
        f"{base_total:.3f}s -> {cur_total:.3f}s ({ratio:.2f}x)"
    )
    if ratio > threshold:
        print(
            f"PERF REGRESSION: wall-clock {ratio:.2f}x the committed "
            f"baseline (limit {threshold:.2f}x) over {', '.join(common)}",
            file=sys.stderr,
        )
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small datasets, core workloads only (CI)",
    )
    parser.add_argument(
        "--guard-seconds", type=float, default=None, metavar="S",
        help="fail (exit 1) when total wall-clock exceeds S seconds",
    )
    parser.add_argument(
        "--best-of", type=int, default=1, metavar="N",
        help="run the suite N times and keep each workload's best wall",
    )
    parser.add_argument(
        "--compare", type=Path, default=None, metavar="BASELINE",
        help="fail (exit 1) on >25%% wall-clock regression vs a "
             "committed BENCH_perf.json",
    )
    parser.add_argument(
        "--parallel", type=int, default=0, metavar="N",
        help="additionally time each workload with map-task compute "
             "dispatched to N pool workers and report per-workload "
             "speedup vs inline (digests must match)",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH,
        help=f"where to write the JSON report (default: {OUTPUT_PATH})",
    )
    args = parser.parse_args(argv)

    report = run(smoke=args.smoke, best_of=args.best_of,
                 parallel=max(0, args.parallel))
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    total = report["total_wall_seconds"]
    print(f"\ntotal: {total:.2f}s wall, peak RSS {report['peak_rss_kb']} KiB")
    print(f"wrote {args.output}")

    failed = False
    if args.guard_seconds is not None and total > args.guard_seconds:
        print(
            f"PERF REGRESSION: total wall-clock {total:.2f}s exceeds "
            f"the {args.guard_seconds:.0f}s guard",
            file=sys.stderr,
        )
        failed = True
    if args.compare is not None and not compare(report, args.compare):
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
