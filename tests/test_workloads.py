"""Tests for the workload generators (HiBench, TPC-H, TeraSort)."""

import pytest

from repro.common.rng import derive_rng
from repro.common.units import GB, MB
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore
from repro.workloads.hibench import ZipfSampler, load_hibench
from repro.workloads.terasort import load_teragen, terasort_job
from repro.workloads.tpch import NATIONS, REGIONS, load_tpch, tpch_query


@pytest.fixture()
def store():
    hdfs = HDFS(num_workers=7)
    return hdfs, Metastore(hdfs)


class TestZipf:
    def test_skew_toward_low_ranks(self):
        sampler = ZipfSampler(100, s=1.0, rng=derive_rng("zipf-skew"))
        draws = [sampler.sample() for _ in range(5000)]
        top = sum(1 for d in draws if d < 10)
        assert top > 1500  # top-10 ranks dominate
        assert min(draws) == 0
        assert max(draws) < 100

    def test_uniform_when_s_zero(self):
        sampler = ZipfSampler(10, s=0.0, rng=derive_rng("zipf-uniform"))
        draws = [sampler.sample() for _ in range(5000)]
        counts = [draws.count(i) for i in range(10)]
        assert max(counts) < 2 * min(counts)


class TestHiBench:
    def test_tables_and_sizes(self, store):
        hdfs, metastore = store
        info = load_hibench(hdfs, metastore, nominal_gb=20, sample_uservisits=4000)
        assert metastore.has_table("rankings")
        assert metastore.has_table("uservisits")
        # Table I: 20 GB -> rankings 935 MB, uservisits 17 GB
        rankings = metastore.get_table("rankings").logical_bytes(hdfs)
        uservisits = metastore.get_table("uservisits").logical_bytes(hdfs)
        assert rankings == pytest.approx(935 * MB, rel=0.02)
        assert uservisits == pytest.approx(17 * GB, rel=0.02)
        assert info.uservisits_rows == 4000

    def test_every_visit_references_a_ranking(self, store):
        hdfs, metastore = store
        load_hibench(hdfs, metastore, nominal_gb=5, sample_uservisits=2000)
        pages = {row[0] for row in hdfs.dir_rows("/warehouse/rankings")}
        visits = hdfs.dir_rows("/warehouse/uservisits")
        assert all(row[1] in pages for row in visits)

    def test_visit_distribution_skewed(self, store):
        hdfs, metastore = store
        load_hibench(hdfs, metastore, nominal_gb=5, sample_uservisits=4000, zipf_s=0.9)
        visits = hdfs.dir_rows("/warehouse/uservisits")
        from collections import Counter

        counts = Counter(row[1] for row in visits)
        top_share = sum(c for _p, c in counts.most_common(10)) / len(visits)
        assert top_share > 0.10  # Zipfian concentration

    def test_reload_replaces(self, store):
        hdfs, metastore = store
        load_hibench(hdfs, metastore, nominal_gb=5, sample_uservisits=1000)
        load_hibench(hdfs, metastore, nominal_gb=5, sample_uservisits=1500)
        assert len(hdfs.dir_rows("/warehouse/uservisits")) == 1500


class TestTpchGenerator:
    def test_row_count_proportions(self, store):
        hdfs, metastore = store
        info = load_tpch(hdfs, metastore, sf=10, lineitem_sample=4000)
        counts = info.row_counts
        assert counts["region"] == 5
        assert counts["nation"] == 25
        assert counts["partsupp"] == 4 * counts["part"]
        assert 3000 <= counts["lineitem"] <= 5200
        # spec ratios approximately: orders ~ customer * 10
        assert counts["orders"] > counts["customer"] * 5

    def test_logical_sizes_match_table1(self, store):
        hdfs, metastore = store
        load_tpch(hdfs, metastore, sf=10, lineitem_sample=3000)
        lineitem = metastore.get_table("lineitem").logical_bytes(hdfs)
        orders = metastore.get_table("orders").logical_bytes(hdfs)
        assert lineitem == pytest.approx(7.3 * GB, rel=0.02)
        assert orders == pytest.approx(1.7 * GB, rel=0.02)

    def test_foreign_keys_consistent(self, store):
        hdfs, metastore = store
        info = load_tpch(hdfs, metastore, sf=10, lineitem_sample=3000)
        customers = {r[0] for r in hdfs.dir_rows("/warehouse/customer")}
        parts = {r[0] for r in hdfs.dir_rows("/warehouse/part")}
        partsupp = {(r[0], r[1]) for r in hdfs.dir_rows("/warehouse/partsupp")}
        for order in hdfs.dir_rows("/warehouse/orders"):
            assert order[1] in customers
        for line in hdfs.dir_rows("/warehouse/lineitem"):
            assert line[1] in parts
            assert (line[1], line[2]) in partsupp  # ps_partkey, ps_suppkey

    def test_date_invariants(self, store):
        hdfs, metastore = store
        load_tpch(hdfs, metastore, sf=10, lineitem_sample=2000)
        for line in hdfs.dir_rows("/warehouse/lineitem"):
            shipdate, commitdate, receiptdate = line[10], line[11], line[12]
            assert "1992-01-01" < shipdate < "1999-01-01"
            assert receiptdate > shipdate
            # returnflag consistent with receipt date vs current date
            if line[8] == "N":
                assert receiptdate > "1995-06-17"

    def test_orc_tables_smaller(self, store):
        hdfs, metastore = store
        load_tpch(hdfs, metastore, sf=10, lineitem_sample=3000, format_name="orc")
        orc_lineitem = metastore.get_table("lineitem").logical_bytes(hdfs)
        assert orc_lineitem < 7.3 * GB  # compression shows up in logical size

    def test_nation_region_fixed(self, store):
        hdfs, metastore = store
        load_tpch(hdfs, metastore, sf=10, lineitem_sample=1000)
        nations = hdfs.dir_rows("/warehouse/nation")
        assert len(nations) == 25
        assert {n[1] for n in nations} == {name for _k, name, _r in NATIONS}
        regions = hdfs.dir_rows("/warehouse/region")
        assert [r[1] for r in regions] == REGIONS

    def test_query_text_available(self):
        for q in range(1, 23):
            text = tpch_query(q, sf=10)
            assert "SELECT" in text.upper()
        with pytest.raises(KeyError):
            tpch_query(23)

    def test_q11_fraction_parameterized(self):
        assert "1e-05" in tpch_query(11, sf=10) or "0.00001" in tpch_query(11, sf=10) \
            or "1.0000000000000002e-05" in tpch_query(11, sf=10)


class TestTeraSort:
    def test_teragen_and_sort(self, store):
        hdfs, metastore = store
        load_teragen(hdfs, metastore, nominal_gb=2, sample_rows=2000)
        table = metastore.get_table("teradata")
        assert table.logical_bytes(hdfs) == pytest.approx(2 * GB, rel=0.02)

        from repro.engines.local import LocalEngine

        plan = terasort_job("/tmp/tera-out")
        result = LocalEngine(hdfs).run_plan(plan)
        keys = [row[0] for row in result.rows]
        assert len(keys) == 2000
        # hash partitioned: globally complete, per-partition sorted
        per_file = hdfs.list_dir("/tmp/tera-out")
        for data_file in per_file:
            file_keys = [row[0] for row in data_file.rows]
            assert file_keys == sorted(file_keys)
