"""Persistent worker-process pool for map-task computation.

One pool per process (module-global, lazily spawned, resized on demand)
holds ``repro.parallel.workers`` long-lived child processes connected by
pipes.  Engines submit :class:`~repro.parallel.compute.MapComputeSpec`s
at simulated task start and block on the future only where the inline
path would have computed — so while the discrete-event simulator works
through one task's simulated setup, the other tasks scheduled at the
same simulated instant are already crunching on other cores.

Protocol (parent → worker): ``("blob", uid, obj)`` ships a heavy object
once per worker; ``("task", task_id, lean_spec, refs)`` names the blobs
a stripped spec needs; ``("shutdown",)`` ends the worker loop.  Worker →
parent: ``("result", task_id, outcome)`` or ``("error", task_id, tb)``.
Blobs are cached per worker keyed by uid, so every task over the same
table/plan rehydrates the *same* objects — keeping the ``id()``-keyed
vectorized kernel cache hot across tasks (per-worker compiled-plan
memoization without pickling code objects).

Failure policy: any pool-side problem (worker crash, pickling surprise,
broken pipe) surfaces as a :class:`PoolError` from ``future.result()``;
the engine's :func:`resolve_compute` then recomputes inline, so a sick
pool degrades to the single-process behaviour instead of failing the
query.  Genuine query errors re-raise identically during the inline
recompute.  Crashed workers are respawned with a fresh blob cache.
"""

from __future__ import annotations

import atexit
import os
import traceback
from collections import deque
from itertools import count
from multiprocessing import connection, get_all_start_methods, get_context
from typing import Deque, Dict, List, Optional

from repro.common.config import PARALLEL_WORKERS, Configuration
from repro.common.errors import ConfigError, ExecutionError
from repro.obs import get_metrics
from repro.parallel.compute import (
    BLOB_FIELDS,
    MapComputeOutcome,
    MapComputeSpec,
    lean_spec,
    run_map_compute,
)


class PoolError(ExecutionError):
    """The pool could not produce a result; compute inline instead."""


class WorkerCrashError(PoolError):
    """A worker process died while holding (or being handed) a task."""


class RemoteComputeError(PoolError):
    """The compute raised on the worker; carries the remote traceback."""


class ComputeFuture:
    """Handle for one submitted task; ``result()`` blocks the *process*
    (never the simulator — engines call it where the inline compute
    would have run, which is not a simulated yield point)."""

    __slots__ = ("_pool", "task_id", "_value", "_error", "_done")

    def __init__(self, pool: "WorkerPool", task_id: int):
        self._pool = pool
        self.task_id = task_id
        self._value: Optional[MapComputeOutcome] = None
        self._error: Optional[PoolError] = None
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> MapComputeOutcome:
        self._pool._wait_for(self)
        if self._error is not None:
            raise self._error
        return self._value

    # pool-internal
    def _resolve(self, value: MapComputeOutcome) -> None:
        self._value = value
        self._done = True

    def _reject(self, error: PoolError) -> None:
        self._error = error
        self._done = True


class _Task:
    __slots__ = ("task_id", "lean", "refs", "future")

    def __init__(self, task_id, lean, refs, future):
        self.task_id = task_id
        self.lean = lean
        self.refs = refs
        self.future = future


class _Worker:
    __slots__ = ("proc", "conn", "sent", "task")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.sent = set()  # blob uids this worker already holds
        self.task: Optional[_Task] = None


def _worker_main(conn) -> None:
    """Worker loop: cache blobs, run compute specs, ship outcomes back."""
    blobs: Dict[int, object] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        tag = message[0]
        if tag == "blob":
            blobs[message[1]] = message[2]
        elif tag == "task":
            task_id, lean, refs = message[1], message[2], message[3]
            try:
                for name, uid in refs.items():
                    setattr(lean, name, None if uid is None else blobs[uid])
                reply = ("result", task_id, run_map_compute(lean))
            except BaseException:
                reply = ("error", task_id, traceback.format_exc())
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                return
        else:  # shutdown
            return


class WorkerPool:
    """A fixed-size set of persistent compute workers."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ConfigError("WorkerPool needs at least one worker")
        # fork shares the parent's loaded tables copy-on-write; spawn is
        # the fallback where fork does not exist
        method = "fork" if "fork" in get_all_start_methods() else "spawn"
        self._ctx = get_context(method)
        self.num_workers = workers
        self.closed = False
        self._task_ids = count()
        self._tasks: Dict[int, _Task] = {}
        self._pending: Deque[_Task] = deque()
        self._blob_uids: Dict[int, int] = {}  # id(obj) -> uid
        self._blobs: Dict[int, object] = {}  # uid -> obj (keeps ids stable)
        self._blob_seq = count(1)
        self._workers: List[_Worker] = [self._spawn() for _ in range(workers)]

    # -- lifecycle ----------------------------------------------------------
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
            name="repro-parallel-worker",
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def shutdown(self) -> None:
        if self.closed:
            return
        self.closed = True
        for task in list(self._tasks.values()):
            task.future._reject(PoolError("pool shut down"))
        self._tasks.clear()
        self._pending.clear()
        for worker in self._workers:
            try:
                worker.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.proc.join(timeout=10)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=10)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    def worker_pids(self) -> List[int]:
        return [worker.proc.pid for worker in self._workers]

    # -- submission ---------------------------------------------------------
    def submit(self, spec: MapComputeSpec) -> ComputeFuture:
        if self.closed:
            raise PoolError("pool is closed")
        task_id = next(self._task_ids)
        refs = {}
        for name in BLOB_FIELDS:
            obj = getattr(spec, name)
            refs[name] = None if obj is None else self._uid_for(obj)
        task = _Task(task_id, lean_spec(spec), refs, ComputeFuture(self, task_id))
        self._tasks[task_id] = task
        idle = next((w for w in self._workers if w.task is None), None)
        if idle is not None:
            self._dispatch(idle, task)
        else:
            self._pending.append(task)
        get_metrics().counter("parallel.tasks.dispatched").add(1)
        return task.future

    def _uid_for(self, obj: object) -> int:
        uid = self._blob_uids.get(id(obj))
        if uid is None:
            uid = next(self._blob_seq)
            self._blob_uids[id(obj)] = uid
            self._blobs[uid] = obj  # strong ref keeps id(obj) unambiguous
        return uid

    def _dispatch(self, worker: _Worker, task: _Task) -> None:
        try:
            for uid in task.refs.values():
                if uid is not None and uid not in worker.sent:
                    worker.conn.send(("blob", uid, self._blobs[uid]))
                    worker.sent.add(uid)
            worker.conn.send(("task", task.task_id, task.lean, task.refs))
        except (BrokenPipeError, OSError):
            worker.task = task  # so _crash rejects + respawns
            self._crash(worker)
            return
        worker.task = task

    # -- completion ---------------------------------------------------------
    def _wait_for(self, future: ComputeFuture) -> None:
        while not future._done:
            if self.closed:
                future._reject(PoolError("pool shut down"))
                return
            self._poll()

    def _poll(self) -> None:
        busy = [w for w in self._workers if w.task is not None]
        if not busy:
            # a waited-on future with no busy worker means its dispatch
            # crashed and it was rejected; nothing to poll
            return
        readers = [w.conn for w in busy] + [w.proc.sentinel for w in busy]
        ready = set(connection.wait(readers))
        for worker in busy:
            if worker.conn in ready:
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    self._crash(worker)
                    continue
                self._finish(worker, message)
            elif worker.proc.sentinel in ready:
                self._crash(worker)

    def _finish(self, worker: _Worker, message) -> None:
        tag, task_id, payload = message
        worker.task = None
        task = self._tasks.pop(task_id, None)
        if task is not None:
            if tag == "result":
                task.future._resolve(payload)
            else:
                task.future._reject(
                    RemoteComputeError(f"compute failed on worker:\n{payload}")
                )
        get_metrics().counter("parallel.tasks.completed").add(1)
        self._drain(worker)

    def _crash(self, worker: _Worker) -> None:
        task = worker.task
        worker.task = None
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=10)
        replacement = self._spawn()
        self._workers[self._workers.index(worker)] = replacement
        get_metrics().counter("parallel.workers.respawned").add(1)
        if task is not None:
            self._tasks.pop(task.task_id, None)
            task.future._reject(
                WorkerCrashError(f"worker died while running task {task.task_id}")
            )
        self._drain(replacement)

    def _drain(self, worker: _Worker) -> None:
        if worker.task is None and self._pending:
            self._dispatch(worker, self._pending.popleft())


# -- module-global pool ------------------------------------------------------

_POOL: Optional[WorkerPool] = None


def get_pool(workers: int) -> WorkerPool:
    """The process-wide pool, (re)spawned to hold *workers* processes."""
    global _POOL
    if _POOL is not None and (_POOL.closed or _POOL.num_workers != workers):
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _POOL = WorkerPool(workers)
        get_metrics().gauge("parallel.workers").set(workers)
    return _POOL


def active_pool() -> Optional[WorkerPool]:
    return _POOL if _POOL is not None and not _POOL.closed else None


def shutdown() -> None:
    """Tear down the global pool (atexit; also used by tests/benchmarks)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
        get_metrics().gauge("parallel.workers").set(0)


atexit.register(shutdown)


def resolve_workers(conf: Configuration) -> int:
    """Worker count from ``repro.parallel.workers`` (0 = inline)."""
    raw = (conf.get(PARALLEL_WORKERS, "0") or "0").strip().lower()
    if raw == "auto":
        return max(1, (os.cpu_count() or 2) - 1)
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigError(
            f"{PARALLEL_WORKERS}={raw!r} is not an int or 'auto'"
        ) from None
    return max(0, workers)


def pool_from_conf(conf: Configuration) -> Optional[WorkerPool]:
    """The pool a query should dispatch to, or None for inline compute."""
    workers = resolve_workers(conf)
    return get_pool(workers) if workers > 0 else None


def resolve_compute(
    future: Optional[ComputeFuture], spec: MapComputeSpec
) -> MapComputeOutcome:
    """A task's compute outcome: the pool's result when a future is in
    flight, computed inline otherwise — and *recomputed* inline when the
    pool fails, so worker crashes degrade to single-process behaviour
    (genuine query errors re-raise identically from the inline run)."""
    if future is not None:
        try:
            return future.result()
        except PoolError:
            get_metrics().counter("parallel.fallbacks").add(1)
    return run_map_compute(spec)
