"""repro.obs — structured tracing + metrics for every execution layer.

The observability substrate the paper's evaluation methodology implies
(phase breakdowns, collect-time sequences, dstat samples) as one
coherent surface:

* :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Span`: nested spans
  (``query`` → ``compile`` → ``job`` → ``task`` / ``shuffle`` /
  ``spill``) over **simulated** time, with attributes and instant
  events;
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of counters/gauges/histograms (shuffle bytes, send-queue occupancy,
  slot waves, startup latency);
* :mod:`repro.obs.export` — Chrome-trace JSON (loadable in
  ``chrome://tracing`` / Perfetto) and flat CSV/JSON dumps for
  ``benchmarks/``.

Entry points: ``QueryResult.trace`` holds the query's span tree,
``repro.cli --trace out.json`` exports it, and the engines record
metrics into :func:`get_metrics` as they run.
"""

from repro.obs.export import (
    as_roots,
    chrome_trace_events,
    flatten_spans,
    load_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_spans_csv,
    write_spans_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
)
from repro.obs.trace import Span, SpanEvent, Tracer

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "as_roots",
    "chrome_trace_events",
    "flatten_spans",
    "load_chrome_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_spans_csv",
    "write_spans_json",
]
