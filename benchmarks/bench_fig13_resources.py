"""Fig 13 — resource utilization of TPC-H Q9 (40 GB, enhanced).

Paper: DataMPI finishes Q9 in 598 s vs Hadoop's 802 s with slightly
higher CPU utilization, similar disk write bandwidth (~24-25 MB/s avg),
an earlier climb to the memory-footprint ceiling (it caches intermediate
data), and higher average network bandwidth (30 vs 20 MB/s) thanks to
the non-blocking shuffle.
"""

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_tpch, run_script
from repro.common.units import MB
from repro.reporting.figures import write_csv
from repro.workloads.tpch import tpch_query


def _experiment():
    hdfs, metastore = fresh_tpch(40, lineitem_sample=8000, format_name="orc")
    runs = {}
    for engine in ("hadoop", "datampi"):
        runs[engine] = run_script(
            engine, hdfs, metastore, tpch_query(9, 40),
            conf={"hive.datampi.parallelism": "enhanced"}, with_metrics=True,
        )
    return runs


def _series_stats(samples, attribute):
    values = [getattr(sample, attribute) for sample in samples]
    if not values:
        return 0.0, 0.0
    return sum(values) / len(values), max(values)


def test_fig13_resource_utilization(benchmark):
    runs = run_once(benchmark, _experiment)

    csv_rows = []
    stats = {}
    for engine, run in runs.items():
        samples = run.metrics
        total = run.breakdown.total
        cpu_avg, cpu_peak = _series_stats(samples, "cpu_utilization")
        wait_avg, _ = _series_stats(samples, "io_wait")
        read_avg, read_peak = _series_stats(samples, "disk_read_bps")
        write_avg, write_peak = _series_stats(samples, "disk_write_bps")
        net_avg, net_peak = _series_stats(samples, "net_tx_bps")
        mem_peak = max((sample.memory_used for sample in samples), default=0.0)
        stats[engine] = dict(total=total, cpu_avg=cpu_avg, net_avg=net_avg,
                             write_avg=write_avg, mem_peak=mem_peak)
        emit(
            f"== Fig 13 Q9 on {engine} ({total:.0f}s, {len(samples)} samples) ==\n"
            f"  CPU avg {100 * cpu_avg:.1f}% peak {100 * cpu_peak:.1f}%  "
            f"io-wait avg {100 * wait_avg:.1f}%\n"
            f"  disk read avg {read_avg / MB:.1f} MB/s peak {read_peak / MB:.1f}  "
            f"write avg {write_avg / MB:.1f} MB/s peak {write_peak / MB:.1f}\n"
            f"  net tx avg {net_avg / MB:.1f} MB/s peak {net_peak / MB:.1f}  "
            f"mem peak {mem_peak / MB:.0f} MB"
        )
        for sample in samples:
            csv_rows.append([
                engine, round(sample.time, 1), round(sample.cpu_utilization, 4),
                round(sample.io_wait, 4), round(sample.disk_read_bps / MB, 3),
                round(sample.disk_write_bps / MB, 3), round(sample.net_tx_bps / MB, 3),
                round(sample.memory_used / MB, 1),
            ])
    write_csv(results_path("fig13_resources.csv"),
              ["engine", "time_s", "cpu", "io_wait", "disk_read_mbps",
               "disk_write_mbps", "net_tx_mbps", "memory_mb"], csv_rows)

    # paper shapes: DataMPI faster overall, >= CPU utilization, higher
    # average network bandwidth (overlapped shuffle pushes data sooner)
    assert stats["datampi"]["total"] < stats["hadoop"]["total"]
    assert stats["datampi"]["net_avg"] >= stats["hadoop"]["net_avg"] * 0.9
    assert stats["datampi"]["cpu_avg"] >= stats["hadoop"]["cpu_avg"] * 0.8
