"""Fig 6 — blocking vs non-blocking communication styles.

Paper: HiBench AGGREGATE over 20 GB; O tasks take 61 s with the
non-blocking shuffle engine vs 120 s blocking, because the blocking
style's synchronized rounds make every task wait for the slowest
participant (data skew), fragmenting the send timelines.
"""

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_hibench, run_hibench_query
from repro.reporting.figures import write_csv


def _o_phase(run):
    tasks = [
        task
        for result in run.results
        if result.execution
        for job in result.execution.jobs
        for task in job.tasks
        if task.kind == "o"
    ]
    start = min(task.started for task in tasks)
    end = max(task.finished for task in tasks)
    return tasks, end - start


def _experiment():
    hdfs, metastore = fresh_hibench(20, sample_uservisits=16000)
    runs = {}
    for style, flag in (("non-blocking", True), ("blocking", False)):
        runs[style] = run_hibench_query(
            "datampi", hdfs, metastore, "aggregate",
            conf={"datampi.shuffle.nonblocking": flag},
        )
    return runs


def test_fig06_blocking_vs_nonblocking(benchmark):
    runs = run_once(benchmark, _experiment)
    spans = {}
    rows = []
    for style, run in runs.items():
        tasks, span = _o_phase(run)
        spans[style] = span
        sends = sum(len(task.send_events) for task in tasks)
        emit(
            f"Fig 6 {style}: O-phase {span:.1f}s, total {run.breakdown.total:.1f}s, "
            f"{sends} send operations across {len(tasks)} O tasks"
        )
        for task in tasks:
            for when in task.send_events:
                rows.append([style, task.task_id, round(when, 3)])
    write_csv(results_path("fig06_send_events.csv"), ["style", "task", "time_s"], rows)

    ratio = spans["blocking"] / spans["non-blocking"]
    emit(f"blocking / non-blocking O-phase ratio: {ratio:.2f}x (paper: 120/61 = 1.97x)")
    assert ratio > 1.4, "blocking style must pay visible synchronization overhead"

    # blocking timelines are fragmented: large gaps between successive sends
    def max_gap(task):
        events = task.send_events
        return max(
            (b - a for a, b in zip(events, events[1:])), default=0.0
        )

    blocking_tasks, _ = _o_phase(runs["blocking"])
    nonblocking_tasks, _ = _o_phase(runs["non-blocking"])
    blocking_gap = max(max_gap(task) for task in blocking_tasks)
    nonblocking_gap = max(max_gap(task) for task in nonblocking_tasks)
    emit(f"largest inter-send gap: blocking {blocking_gap:.2f}s vs "
         f"non-blocking {nonblocking_gap:.2f}s")
    assert blocking_gap > nonblocking_gap
