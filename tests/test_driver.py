"""Tests for the Hive driver: DDL, CTAS, INSERT, SET, cleanup."""

import pytest

from repro.common.errors import SemanticError
from repro import connect


class TestDdl:
    def test_create_and_drop(self, local_session):
        local_session.execute("CREATE TABLE scratch (a int, b string)")
        assert local_session.metastore.has_table("scratch")
        local_session.execute("DROP TABLE scratch")
        assert not local_session.metastore.has_table("scratch")

    def test_create_if_not_exists(self, local_session):
        local_session.execute("CREATE TABLE t (a int)")
        local_session.execute("CREATE TABLE IF NOT EXISTS t (a int)")  # no raise

    def test_create_stored_as(self, local_session):
        local_session.execute("CREATE TABLE t (a int) STORED AS orc")
        assert local_session.metastore.get_table("t").format_name == "orc"

    def test_set_option(self, local_session):
        local_session.execute("SET hive.datampi.parallelism = enhanced")
        assert local_session.conf.get("hive.datampi.parallelism") == "enhanced"


class TestSelect:
    def test_simple_select(self, local_session):
        result = local_session.query("SELECT name FROM emp WHERE dept = 'hr'")
        assert result.rows == [("eve",)]

    def test_result_schema_names(self, local_session):
        result = local_session.query("SELECT name AS who, salary * 2 doubled FROM emp LIMIT 1")
        assert result.schema.names == ["who", "doubled"]

    def test_temp_dirs_cleaned(self, local_session):
        local_session.query("SELECT dept, sum(salary) s FROM emp GROUP BY dept ORDER BY s")
        hdfs = local_session.hdfs
        leftovers = [p for p in hdfs._files if p.startswith("/tmp/")]
        assert leftovers == []

    def test_multi_statement_script(self, local_session):
        results = local_session.execute("""
            SET a.b = c;
            SELECT count(*) FROM emp;
        """)
        assert [r.statement for r in results] == ["set", "select"]
        assert results[1].rows == [(7,)]


class TestCtas:
    def test_ctas_creates_queryable_table(self, local_session):
        local_session.execute(
            "CREATE TABLE high_paid AS SELECT name, salary FROM emp WHERE salary >= 100"
        )
        result = local_session.query("SELECT count(*) FROM high_paid")
        assert result.rows == [(2,)]

    def test_ctas_format(self, local_session):
        local_session.execute(
            "CREATE TABLE t STORED AS orc AS SELECT dept FROM emp"
        )
        table = local_session.metastore.get_table("t")
        assert table.format_name == "orc"
        files = local_session.hdfs.list_dir(table.location)
        assert files and all(f.format_name == "orc" for f in files)

    def test_ctas_duplicate_rejected(self, local_session):
        local_session.execute("CREATE TABLE t AS SELECT name FROM emp")
        with pytest.raises(SemanticError):
            local_session.execute("CREATE TABLE t AS SELECT name FROM emp")

    def test_ctas_schema_from_select(self, local_session):
        local_session.execute(
            "CREATE TABLE t AS SELECT dept, avg(salary) avg_sal FROM emp GROUP BY dept"
        )
        schema = local_session.metastore.get_table("t").schema
        assert schema.names == ["dept", "avg_sal"]


class TestInsertOverwrite:
    def test_insert_overwrite_replaces(self, local_session):
        local_session.execute("CREATE TABLE sink (who string, pay double)")
        local_session.execute(
            "INSERT OVERWRITE TABLE sink SELECT name, salary FROM emp WHERE dept = 'eng'"
        )
        first = local_session.query("SELECT count(*) FROM sink").rows
        local_session.execute(
            "INSERT OVERWRITE TABLE sink SELECT name, salary FROM emp WHERE dept = 'hr'"
        )
        second = local_session.query("SELECT count(*) FROM sink").rows
        assert first == [(3,)]
        assert second == [(1,)]

    def test_insert_arity_mismatch(self, local_session):
        local_session.execute("CREATE TABLE sink (a string)")
        with pytest.raises(SemanticError):
            local_session.execute("INSERT OVERWRITE TABLE sink SELECT name, salary FROM emp")

    def test_insert_into_missing_table(self, local_session):
        with pytest.raises(SemanticError):
            local_session.execute("INSERT OVERWRITE TABLE ghost SELECT name FROM emp")


class TestSessionFactory:
    def test_engine_selection(self):
        assert connect(engine="mr").engine.name == "hadoop"
        assert connect(engine="dm").engine.name == "datampi"
        assert connect(engine="local").engine.name == "local"

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            connect(engine="spark")

    def test_compile_seconds_accounted(self, local_session):
        result = local_session.query("SELECT count(*) FROM emp")
        assert result.compile_seconds > 0
        assert result.simulated_seconds >= result.compile_seconds


class TestPlanCache:
    def test_repeated_select_reuses_plan(self, local_session):
        sql = "SELECT dept, count(*) c FROM emp GROUP BY dept ORDER BY dept"
        first = local_session.query(sql)
        assert len(local_session._plan_cache) == 1
        (cached_plan, *_rest), = local_session._plan_cache.values()
        second = local_session.query(sql)
        assert second.rows == first.rows
        assert len(local_session._plan_cache) == 1
        assert second.plan is cached_plan  # same compiled object, not a re-plan

    def test_different_statements_cache_separately(self, local_session):
        local_session.query("SELECT count(*) FROM emp")
        local_session.query("SELECT count(*) FROM dept")
        assert len(local_session._plan_cache) == 2

    def test_insert_invalidates_cached_plan(self, local_session):
        local_session.execute(
            "CREATE TABLE emp_copy AS SELECT * FROM emp WHERE dept = 'hr'"
        )
        sql = "SELECT count(*) FROM emp_copy"
        assert local_session.query(sql).rows == [(1,)]
        local_session.execute("INSERT OVERWRITE TABLE emp_copy SELECT * FROM emp")
        # the input data moved: the stale plan must not serve old results
        assert local_session.query(sql).rows == [(7,)]

    def test_ddl_invalidates_cached_plan(self, local_session):
        sql = "SELECT count(*) FROM emp"
        first = local_session.query(sql)
        (cached_plan, *_rest), = local_session._plan_cache.values()
        local_session.execute("CREATE TABLE unrelated (a int)")
        second = local_session.query(sql)  # catalog version moved
        assert second.rows == first.rows
        assert second.plan is not cached_plan

    def test_cache_respects_mapjoin_threshold(self, local_session):
        sql = (
            "SELECT e.name, d.region FROM emp e JOIN dept d "
            "ON e.dept = d.dept ORDER BY e.name"
        )
        first = local_session.query(sql)
        local_session.execute("SET hive.mapjoin.smalltable.filesize = 1")
        second = local_session.query(sql)  # new key: threshold is part of it
        assert second.rows == first.rows
        assert len(local_session._plan_cache) == 2


class TestPlanCacheStats:
    """ANALYZE bumps only the stats epoch (not the catalog version);
    cached plans must still be re-costed against the new statistics."""

    # dept raw is 4.6KB; region = 'east' keeps 1 of 3 rows -> est ~1.5KB
    SQL = (
        "SELECT e.name, d.region FROM emp e JOIN dept d ON e.dept = d.dept "
        "WHERE d.region = 'east' ORDER BY e.name"
    )

    def test_analyze_recosts_cached_plan(self, local_session):
        local_session.execute("SET hive.mapjoin.smalltable.filesize = 3000")
        first = local_session.query(self.SQL)
        assert not first.plan.jobs[0].broadcasts  # raw dept above threshold
        local_session.execute("ANALYZE TABLE dept COMPUTE STATISTICS FOR COLUMNS")
        second = local_session.query(self.SQL)  # stats epoch is part of the key
        assert second.plan is not first.plan
        assert second.plan.jobs[0].broadcasts  # estimate now below threshold
        assert second.plan.num_jobs < first.plan.num_jobs  # join job folded away
        assert second.rows == first.rows

    def test_growth_past_threshold_flips_back_to_shuffle(self, local_session):
        local_session.execute("CREATE TABLE tiny AS SELECT name FROM emp LIMIT 1")
        sql = (
            "SELECT e.name FROM emp e JOIN tiny t ON e.name = t.name "
            "ORDER BY e.name"
        )
        tiny_bytes = local_session.metastore.get_table("tiny").logical_bytes(
            local_session.hdfs
        )
        local_session.execute(
            f"SET hive.mapjoin.smalltable.filesize = {int(tiny_bytes * 3)}"
        )
        first = local_session.query(sql)
        assert first.plan.jobs[0].broadcasts  # tiny broadcasts
        local_session.execute("INSERT OVERWRITE TABLE tiny SELECT name FROM emp")
        second = local_session.query(sql)
        assert not second.plan.jobs[0].broadcasts  # grew past the threshold
        assert len(second.rows) == 7

    def test_stats_knobs_are_part_of_cache_key(self, local_session):
        local_session.execute("ANALYZE TABLE dept COMPUTE STATISTICS FOR COLUMNS")
        local_session.execute("SET hive.mapjoin.smalltable.filesize = 3000")
        with_stats = local_session.query(self.SQL)
        assert with_stats.plan.jobs[0].broadcasts
        local_session.execute("SET repro.stats.enabled = false")
        without = local_session.query(self.SQL)  # distinct key, fresh plan
        assert not without.plan.jobs[0].broadcasts
        assert without.rows == with_stats.rows
