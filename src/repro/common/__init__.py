"""Shared building blocks: units, errors, configuration, rows and KV serde.

Everything in this package is engine-agnostic.  The storage layer, the SQL
compiler and both execution engines build on these primitives.
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    ParseError,
    SemanticError,
    PlanError,
    ExecutionError,
    StorageError,
)
from repro.common.units import (
    KB,
    MB,
    GB,
    parse_size,
    format_size,
    format_duration,
)
from repro.common.config import Configuration
from repro.common.rows import (
    DataType,
    Schema,
    Column,
    coerce_value,
    compare_values,
)
from repro.common.kv import KeyValue, serialize_kv, deserialize_kv, kv_size

__all__ = [
    "ReproError",
    "ConfigError",
    "ParseError",
    "SemanticError",
    "PlanError",
    "ExecutionError",
    "StorageError",
    "KB",
    "MB",
    "GB",
    "parse_size",
    "format_size",
    "format_duration",
    "Configuration",
    "DataType",
    "Schema",
    "Column",
    "coerce_value",
    "compare_values",
    "KeyValue",
    "serialize_kv",
    "deserialize_kv",
    "kv_size",
]
