"""TeraGen/TeraSort (used only for the Fig 2 communication comparison).

TeraSort is a plain Hadoop benchmark — not a Hive query — with perfectly
uniform map work: 100-byte records, identity map, sort by 10-byte key.
The paper uses it as the *regular* communication pattern to contrast
with Hive's irregular one (Fig 2(a) vs 2(b)).

The job is built directly as a physical plan (no SQL involved), with a
hash partitioner standing in for TeraSort's range partitioner — the
collect-time behaviour, which is what Fig 2 plots, is unaffected.
"""

from __future__ import annotations

import random
import string
from typing import Tuple

from repro.common.rows import Schema
from repro.common.units import GB
from repro.exec.expressions import InputRef
from repro.exec.operators import FileSinkDesc, ReduceSinkDesc
from repro.exec.reduce import ReduceSortDesc
from repro.plan.physical import MapInput, MRJob, PhysicalPlan, ScanHints
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore

TERA_SCHEMA = Schema.parse("k string, v string")


def load_teragen(
    hdfs: HDFS,
    metastore: Metastore,
    nominal_gb: float,
    sample_rows: int = 24000,
    seed: int = 100,
) -> float:
    """Generate TeraGen data: 10-byte random key + 90-byte payload."""
    rng = random.Random(seed)
    alphabet = string.ascii_uppercase + string.digits
    rows = [
        (
            "".join(rng.choice(alphabet) for _ in range(10)),
            "".join(rng.choice(alphabet) for _ in range(90)),
        )
        for _ in range(sample_rows)
    ]
    if metastore.has_table("teradata"):
        metastore.drop_table("teradata")
    table = metastore.create_table("teradata", TERA_SCHEMA, format_name="text")
    logical = nominal_gb * GB
    from repro.storage.formats.base import get_format

    encoded = get_format("text").build(TERA_SCHEMA, rows)
    scale = logical / max(1, encoded.total_bytes)
    parts = 8
    chunk = (len(rows) + parts - 1) // parts
    for part in range(parts):
        piece = rows[part * chunk : (part + 1) * chunk]
        hdfs.write(
            f"{table.location}/part-{part:05d}", TERA_SCHEMA, piece,
            format_name="text", scale=scale, writer_node=part,
        )
    return logical


def terasort_job(output_location: str = "/tmp/terasort-out") -> PhysicalPlan:
    """The TeraSort physical plan: identity map -> shuffle on key ->
    identity (sorted) reduce."""
    map_input = MapInput(
        location="/warehouse/teradata",
        tag=0,
        operators=[
            ReduceSinkDesc(
                key_expressions=[InputRef(0)],
                value_expressions=[InputRef(0), InputRef(1)],
            )
        ],
        hints=ScanHints(),
    )
    job = MRJob(
        job_id="terasort-job1",
        inputs=[map_input],
        reduce_logic=ReduceSortDesc(),
        reduce_operators=[FileSinkDesc(column_names=["k", "v"])],
        output_location=output_location,
        output_schema=TERA_SCHEMA,
        output_format="text",
        sort_directions=[True],
        is_final=True,
    )
    return PhysicalPlan(jobs=[job], output_location=output_location,
                        output_schema=TERA_SCHEMA)
