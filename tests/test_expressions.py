"""Tests for bound-expression compilation (NULL logic, operators)."""

import pytest

from repro.common.rows import DataType
from repro.exec import expressions as bexpr
from repro.exec.expressions import Const, InputRef, compile_many, stable_hash


def ref(index, dtype=DataType.BIGINT):
    return InputRef(index, dtype)


def const(value):
    return Const(value, DataType.BIGINT if isinstance(value, int) else DataType.STRING)


class TestArithmetic:
    def test_basic_ops(self):
        row = (10, 3)
        assert bexpr.Arithmetic("+", ref(0), ref(1)).compile()(row) == 13
        assert bexpr.Arithmetic("-", ref(0), ref(1)).compile()(row) == 7
        assert bexpr.Arithmetic("*", ref(0), ref(1)).compile()(row) == 30
        assert bexpr.Arithmetic("%", ref(0), ref(1)).compile()(row) == 1

    def test_division_by_zero_is_null(self):
        assert bexpr.Arithmetic("/", ref(0), ref(1)).compile()((1, 0)) is None

    def test_null_propagates(self):
        evaluate = bexpr.Arithmetic("+", ref(0), ref(1)).compile()
        assert evaluate((None, 1)) is None
        assert evaluate((1, None)) is None


class TestComparison:
    def test_all_operators(self):
        row = (1, 2)
        cases = {"=": False, "<>": True, "<": True, "<=": True, ">": False, ">=": False}
        for op, expected in cases.items():
            assert bexpr.Comparison(op, ref(0), ref(1)).compile()(row) is expected

    def test_null_comparison_unknown(self):
        assert bexpr.Comparison("=", ref(0), ref(1)).compile()((None, 1)) is None


class TestThreeValuedLogic:
    def test_and_short_circuit_false(self):
        # FALSE AND NULL -> FALSE (not NULL)
        expr = bexpr.LogicalAnd(operands=[Const(False, DataType.BOOLEAN),
                                          Const(None, DataType.BOOLEAN)])
        assert expr.compile()(()) is False

    def test_and_with_unknown(self):
        expr = bexpr.LogicalAnd(operands=[Const(True, DataType.BOOLEAN),
                                          Const(None, DataType.BOOLEAN)])
        assert expr.compile()(()) is None

    def test_or_short_circuit_true(self):
        expr = bexpr.LogicalOr(operands=[Const(None, DataType.BOOLEAN),
                                         Const(True, DataType.BOOLEAN)])
        assert expr.compile()(()) is True

    def test_or_with_unknown(self):
        expr = bexpr.LogicalOr(operands=[Const(False, DataType.BOOLEAN),
                                         Const(None, DataType.BOOLEAN)])
        assert expr.compile()(()) is None

    def test_not_null(self):
        expr = bexpr.LogicalNot(operand=Const(None, DataType.BOOLEAN))
        assert expr.compile()(()) is None


class TestLike:
    def evaluate(self, pattern, value, negated=False):
        expr = bexpr.LikeExpr(operand=ref(0, DataType.STRING), pattern=pattern,
                              negated=negated)
        return expr.compile()((value,))

    def test_percent(self):
        assert self.evaluate("%green%", "dark green wheat") is True
        assert self.evaluate("%green%", "dark red wheat") is False

    def test_prefix_suffix(self):
        assert self.evaluate("forest%", "forest green") is True
        assert self.evaluate("%BRASS", "PROMO BRASS") is True

    def test_underscore(self):
        assert self.evaluate("a_c", "abc") is True
        assert self.evaluate("a_c", "abbc") is False

    def test_regex_chars_escaped(self):
        assert self.evaluate("a.c", "abc") is False
        assert self.evaluate("a.c", "a.c") is True

    def test_negated(self):
        assert self.evaluate("%special%requests%", "no such thing", negated=True) is True

    def test_null_operand(self):
        assert self.evaluate("%x%", None) is None


class TestMisc:
    def test_in_set(self):
        expr = bexpr.InSet(operand=ref(0), values=frozenset({1, 2, 3}))
        assert expr.compile()((2,)) is True
        assert expr.compile()((9,)) is False
        assert expr.compile()((None,)) is None

    def test_in_set_negated(self):
        expr = bexpr.InSet(operand=ref(0), values=frozenset({1}), negated=True)
        assert expr.compile()((2,)) is True

    def test_is_null(self):
        assert bexpr.IsNullExpr(operand=ref(0)).compile()((None,)) is True
        assert bexpr.IsNullExpr(operand=ref(0), negated=True).compile()((1,)) is True

    def test_case(self):
        expr = bexpr.CaseExpr(
            branches=[(bexpr.Comparison(">", ref(0), const(10)), const("big"))],
            else_value=const("small"),
        )
        evaluate = expr.compile()
        assert evaluate((11,)) == "big"
        assert evaluate((5,)) == "small"

    def test_case_without_else_yields_null(self):
        expr = bexpr.CaseExpr(
            branches=[(bexpr.Comparison(">", ref(0), const(10)), const("big"))]
        )
        assert expr.compile()((1,)) is None

    def test_cast(self):
        assert bexpr.CastExpr(operand=ref(0), dtype=DataType.INT).compile()(("42",)) == 42
        assert bexpr.CastExpr(operand=ref(0), dtype=DataType.DOUBLE).compile()((3,)) == 3.0
        assert bexpr.CastExpr(operand=ref(0), dtype=DataType.STRING).compile()((3,)) == "3"

    def test_cast_malformed_is_null(self):
        expr = bexpr.CastExpr(operand=ref(0), dtype=DataType.INT)
        assert expr.compile()(("abc",)) is None

    def test_compile_many(self):
        project = compile_many([ref(1), const(7), ref(0)])
        assert project(("a", "b")) == ("b", 7, "a")


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("key", 1)) == stable_hash(("key", 1))

    def test_spreads(self):
        buckets = {stable_hash((f"k{i}",)) % 16 for i in range(200)}
        assert len(buckets) >= 12

    def test_distinguishes(self):
        assert stable_hash(("a",)) != stable_hash(("b",))


class TestCodegenEquivalence:
    """The generated straight-line evaluators must agree with the closure
    compiler — the ground truth — on both values and types, including the
    three-valued-logic corners and short-circuit laziness."""

    ROWS = [
        (None, None, None),
        (0, 0, ""),
        (1, -2, "a"),
        (5, 5, "bb"),
        (None, 3, "a"),
        (7, None, None),
        (-1, 10, "zz"),
    ]

    def _grid(self):
        a, b = ref(0), ref(1)
        comparisons = [
            bexpr.Comparison(op, a, b)
            for op in ("=", "<>", "<", "<=", ">", ">=")
        ]
        arith = [
            bexpr.Arithmetic(op, a, b) for op in ("+", "-", "*", "/", "%")
        ]
        leaves = comparisons + arith + [
            bexpr.InSet(operand=ref(2), values=frozenset({"a", "bb"})),
            bexpr.InSet(operand=ref(2), values=frozenset({"a"}), negated=True),
            bexpr.IsNullExpr(operand=a),
            bexpr.IsNullExpr(operand=b, negated=True),
            const(1),
            const(0),
            Const(None, DataType.BIGINT),
        ]
        composites = []
        for i, x in enumerate(leaves):
            y = leaves[(i + 3) % len(leaves)]
            composites += [
                bexpr.LogicalAnd(operands=[x, y]),
                bexpr.LogicalOr(operands=[x, y]),
                bexpr.LogicalNot(operand=x),
                bexpr.LogicalAnd(
                    operands=[bexpr.LogicalOr(operands=[x, y]),
                              bexpr.LogicalNot(operand=y)]
                ),
            ]
        return leaves + composites

    def _outcome(self, fn, row):
        try:
            value = fn(row)
        except TypeError:
            return ("TypeError",)  # e.g. None < int must fail identically
        return (type(value).__name__, value)

    def test_matches_closure_compiler(self):
        from repro.exec.expressions import compile_expression

        for expression in self._grid():
            closure = expression.compile()
            generated = compile_expression(expression)
            for row in self.ROWS:
                assert self._outcome(generated, row) == \
                    self._outcome(closure, row), (expression, row)

    def test_compile_many_matches_per_expression(self):
        expressions = [
            ref(0),
            bexpr.Arithmetic("*", ref(0), ref(1)),
            bexpr.LogicalAnd(
                operands=[bexpr.Comparison("<", ref(0), ref(1)),
                          bexpr.IsNullExpr(operand=ref(2), negated=True)]
            ),
        ]
        project = compile_many(expressions)
        singles = [e.compile() for e in expressions]
        for row in self.ROWS:
            expected = tuple(self._outcome(fn, row) for fn in singles)
            if ("TypeError",) in expected:
                with pytest.raises(TypeError):
                    project(row)
            else:
                got = project(row)
                assert tuple(
                    (type(v).__name__, v) for v in got
                ) == expected, row

    def test_unsupported_nodes_fall_back(self):
        from repro.exec.expressions import compile_expression

        expr = bexpr.CaseExpr(
            branches=[(bexpr.Comparison(">", ref(0), const(3)), const("big"))],
            else_value=const("small"),
        )
        fn = compile_expression(expr)
        assert fn((5,)) == "big"
        assert fn((1,)) == "small"


class TestFusedGroupUpdate:
    """codegen_group_update must replay exactly what the per-aggregate
    create/update/partial protocol produces."""

    ROWS = [(3, 1.5), (None, 2.0), (4, None), (0, -1.0), (7, 3.5)]

    def _generic(self, aggregates, arg_fns, rows):
        accs = [agg.create() for agg, _arg in aggregates]
        for row in rows:
            for i, (agg, _arg) in enumerate(aggregates):
                accs[i] = agg.update(accs[i], arg_fns[i](row))
        out = ()
        for (agg, _arg), acc in zip(aggregates, accs):
            out += tuple(agg.partial(acc))
        return out

    def test_count_sum_avg_fused(self):
        from repro.exec.expressions import codegen_group_update
        from repro.sql.functions import (
            AvgAggregate,
            CountAggregate,
            SumAggregate,
        )

        aggregates = [
            (CountAggregate(), None),  # COUNT(*)
            (CountAggregate(), ref(0)),
            (SumAggregate(), ref(0)),
            (SumAggregate(), ref(1)),
            (AvgAggregate(), ref(1)),
        ]
        fused = codegen_group_update(aggregates)
        assert fused is not None
        update, initial = fused
        acc = initial[:]
        for row in self.ROWS:
            update(row, acc)

        arg_fns = [
            (arg.compile() if arg is not None else (lambda row: True))
            for _agg, arg in aggregates
        ]
        assert tuple(acc) == self._generic(aggregates, arg_fns, self.ROWS)

    def test_sum_of_all_nulls_stays_null(self):
        from repro.exec.expressions import codegen_group_update
        from repro.sql.functions import SumAggregate

        update, initial = codegen_group_update([(SumAggregate(), ref(0))])
        acc = initial[:]
        for row in [(None,), (None,)]:
            update(row, acc)
        assert acc == [None]

    def test_unsupported_aggregate_returns_none(self):
        from repro.exec.expressions import codegen_group_update
        from repro.sql.functions import MinAggregate, SumAggregate

        assert codegen_group_update(
            [(SumAggregate(), ref(0)), (MinAggregate(), ref(1))]
        ) is None
        assert codegen_group_update([]) is None
