"""Statistics subsystem: deterministic sketches + table/column stats.

See :mod:`repro.stats.sketches` for the KMV (NDV) and Space-Saving
(heavy hitter) sketches and :mod:`repro.stats.model` for collection,
selectivity estimation and freshness fingerprints.
"""

from repro.stats.model import (
    ColumnStats,
    TableStats,
    collect_table_stats,
    table_fingerprint,
)
from repro.stats.sketches import (
    KMVSketch,
    SpaceSavingSketch,
    value_hash64,
)

__all__ = [
    "ColumnStats",
    "TableStats",
    "collect_table_stats",
    "table_fingerprint",
    "KMVSketch",
    "SpaceSavingSketch",
    "value_hash64",
]
