"""Integration: all 22 TPC-H queries, engines cross-checked.

The full 22-query sweep runs on the reference executor; a representative
subset (covering map-join, common join, distinct-agg, anti-join, cross
join, multi-stage scripts) is additionally executed on both simulated
engines and must produce identical rows.
"""

import pytest

from repro import connect
from repro.bench import fresh_tpch
from repro.engines.base import compare_result_rows
from repro.workloads.tpch import TPCH_QUERY_IDS, tpch_query

SF = 10
CROSS_ENGINE_QUERIES = (1, 3, 5, 9, 11, 13, 16, 18, 21, 22)


@pytest.fixture(scope="module")
def tpch_store():
    return fresh_tpch(SF, lineitem_sample=5000)


def last_select(results):
    return [r for r in results if r.statement == "select"][-1]


@pytest.mark.parametrize("query", TPCH_QUERY_IDS)
def test_query_runs_on_reference(tpch_store, query):
    hdfs, metastore = tpch_store
    session = connect(engine="local", hdfs=hdfs, metastore=metastore)
    results = session.execute(tpch_query(query, SF))
    select = last_select(results)
    assert select.schema is not None
    # queries with guaranteed output at any scale
    if query in (1, 6, 13, 14, 22):
        assert select.rows, f"Q{query} must produce rows"


@pytest.mark.parametrize("query", CROSS_ENGINE_QUERIES)
def test_engines_agree(tpch_store, query):
    hdfs, metastore = tpch_store
    script = tpch_query(query, SF)
    rows = {}
    for engine in ("local", "hadoop", "datampi"):
        session = connect(engine=engine, hdfs=hdfs, metastore=metastore)
        rows[engine] = last_select(session.execute(script)).rows
    assert compare_result_rows(rows["local"], rows["hadoop"], ordered=True), \
        f"Q{query}: hadoop differs from reference"
    assert compare_result_rows(rows["local"], rows["datampi"], ordered=True), \
        f"Q{query}: datampi differs from reference"


def test_q1_values_are_consistent(tpch_store):
    """Q1's aggregates satisfy internal arithmetic identities."""
    hdfs, metastore = tpch_store
    session = connect(engine="local", hdfs=hdfs, metastore=metastore)
    rows = session.query(tpch_query(1, SF)).rows
    assert rows
    for row in rows:
        (_flag, _status, sum_qty, sum_base, sum_disc, _sum_charge,
         avg_qty, avg_price, _avg_disc, count_order) = row
        assert sum_disc <= sum_base
        assert avg_qty == pytest.approx(sum_qty / count_order)
        assert avg_price == pytest.approx(sum_base / count_order)


def test_q6_equals_manual_filter(tpch_store):
    hdfs, metastore = tpch_store
    expected = 0.0
    for line in hdfs.dir_rows("/warehouse/lineitem"):
        quantity, price, discount, shipdate = line[4], line[5], line[6], line[10]
        if ("1994-01-01" <= shipdate < "1995-01-01"
                and 0.05 - 1e-9 <= discount <= 0.07 + 1e-9 and quantity < 24):
            expected += price * discount
    session = connect(engine="local", hdfs=hdfs, metastore=metastore)
    rows = session.query(tpch_query(6, SF)).rows
    value = rows[0][0] or 0.0
    assert value == pytest.approx(expected, rel=1e-9)


def test_q13_counts_customers(tpch_store):
    """custdist sums to the number of customers (every customer lands in
    exactly one c_count bucket)."""
    hdfs, metastore = tpch_store
    session = connect(engine="local", hdfs=hdfs, metastore=metastore)
    rows = session.query(tpch_query(13, SF)).rows
    total = sum(row[1] for row in rows)
    customers = len(hdfs.dir_rows("/warehouse/customer"))
    assert total == customers


def test_q22_excludes_customers_with_orders(tpch_store):
    hdfs, metastore = tpch_store
    session = connect(engine="local", hdfs=hdfs, metastore=metastore)
    results = session.execute(tpch_query(22, SF))
    rows = last_select(results).rows
    # every reported bucket must be a valid country code
    codes = {"13", "31", "23", "29", "30", "18", "17"}
    assert all(row[0] in codes for row in rows)
