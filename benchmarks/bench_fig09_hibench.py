"""Fig 9 — Intel HiBench performance, Hadoop vs DataMPI, 5-40 GB.

Paper: Hive on DataMPI improves AGGREGATE by ~29 % and JOIN by ~31 % on
average across the 5/10/20/40 GB data sets.
"""

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_hibench, improvement_percent, run_hibench_query
from repro.reporting.figures import format_series_table, write_csv

SIZES_GB = [5, 10, 20, 40]


def _experiment():
    results = {"aggregate": {}, "join": {}}
    for size in SIZES_GB:
        hdfs, metastore = fresh_hibench(size, sample_uservisits=12000)
        for which in results:
            for engine in ("hadoop", "datampi"):
                run = run_hibench_query(engine, hdfs, metastore, which)
                results[which].setdefault(engine, []).append(run.breakdown.total)
    return results


def test_fig09_hibench_performance(benchmark):
    results = run_once(benchmark, _experiment)
    csv_rows = []
    for which, series in results.items():
        emit(format_series_table(
            f"Fig 9 HiBench {which.upper()}", "size (GB)", SIZES_GB, series
        ))
        improvements = [
            improvement_percent(h, d)
            for h, d in zip(series["hadoop"], series["datampi"])
        ]
        average = sum(improvements) / len(improvements)
        emit(f"{which}: per-size improvement {['%.1f%%' % i for i in improvements]}, "
             f"average {average:.1f}% (paper: ~{29 if which == 'aggregate' else 31}%)")
        for size, h, d in zip(SIZES_GB, series["hadoop"], series["datampi"]):
            csv_rows.append([which, size, round(h, 2), round(d, 2)])
        # shape: DataMPI wins at every size, average in the paper's band
        assert all(i > 0 for i in improvements)
        assert 15.0 < average < 45.0
    write_csv(results_path("fig09_hibench.csv"),
              ["workload", "size_gb", "hadoop_s", "datampi_s"], csv_rows)
