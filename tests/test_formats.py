"""Tests for the Text/Sequence/ORC file formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rows import DataType, Schema
from repro.storage.formats.base import get_format
from repro.storage.formats.orc import (
    OrcFormat,
    read_varint,
    unzigzag,
    write_varint,
    zigzag,
)
from repro.storage.formats.text import decode_row, encode_row

SCHEMA = Schema.parse("id int, name string, price double, flag boolean, day date")

ROWS = [
    (1, "alpha", 1.5, True, "1995-01-01"),
    (2, "beta", 2.25, False, "1995-06-17"),
    (3, None, None, None, None),
    (4, "alpha", -3.75, True, "1998-12-01"),
]


class TestRegistry:
    def test_known_formats(self):
        for name in ("text", "sequence", "orc"):
            assert get_format(name).name == name

    def test_unknown_format(self):
        from repro.common.errors import StorageError

        with pytest.raises(StorageError):
            get_format("parquet")


class TestTextFormat:
    def test_encode_decode_row(self):
        line = encode_row(ROWS[0])
        assert decode_row(line, SCHEMA) == ROWS[0]

    def test_null_round_trip(self):
        line = encode_row(ROWS[2])
        assert decode_row(line, SCHEMA) == ROWS[2]

    def test_total_bytes_positive_and_additive(self):
        stored = get_format("text").build(SCHEMA, ROWS)
        assert stored.total_bytes > 0
        assert stored.bytes_for_range(0, 2) + stored.bytes_for_range(2, 2) == \
            stored.total_bytes

    def test_scan_range(self):
        stored = get_format("text").build(SCHEMA, ROWS)
        result = stored.scan(1, 2)
        assert result.rows == ROWS[1:3]
        assert result.bytes_read == stored.bytes_for_range(1, 2)

    def test_scan_past_end_clipped(self):
        stored = get_format("text").build(SCHEMA, ROWS)
        result = stored.scan(3, 100)
        assert result.rows == ROWS[3:]


class TestSequenceFormat:
    def test_larger_than_raw_payload(self):
        stored = get_format("sequence").build(SCHEMA, ROWS)
        assert stored.total_bytes > 0
        assert stored.row_count == len(ROWS)

    def test_scan_returns_rows(self):
        stored = get_format("sequence").build(SCHEMA, ROWS)
        assert stored.scan(0, 4).rows == ROWS


class TestVarint:
    @settings(max_examples=200)
    @given(value=st.integers(min_value=0, max_value=2**63))
    def test_round_trip(self, value):
        out = bytearray()
        write_varint(value, out)
        decoded, offset = read_varint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    @settings(max_examples=200)
    @given(value=st.integers(min_value=-(2**62), max_value=2**62))
    def test_zigzag_round_trip(self, value):
        assert unzigzag(zigzag(value)) == value

    def test_zigzag_ordering_small(self):
        # zigzag interleaves: 0, -1, 1, -2, 2 ...
        assert [zigzag(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]


class TestOrcFormat:
    def test_round_trip_all_stripes(self):
        stored = OrcFormat(stripe_rows=2).build(SCHEMA, ROWS)
        assert len(stored.stripes) == 2
        for index in range(len(stored.stripes)):
            decoded = stored.decode_stripe(index)
            start = stored.stripes[index].row_start
            assert decoded == ROWS[start : start + stored.stripes[index].row_count]

    def test_column_pruning_reduces_bytes(self):
        rows = [(i, f"name{i % 5}", float(i), True, "1995-01-01") for i in range(2000)]
        stored = OrcFormat().build(SCHEMA, rows)
        full = stored.scan(0, len(rows))
        pruned = stored.scan(0, len(rows), columns=["id"])
        assert pruned.bytes_read < full.bytes_read
        assert pruned.rows == full.rows  # rows stay full-width

    def test_predicate_pushdown_skips_stripes(self):
        rows = [(i, "x", float(i), True, "1995-01-01") for i in range(4000)]
        stored = OrcFormat(stripe_rows=1000).build(SCHEMA, rows)
        result = stored.scan(0, 4000, stats_conjuncts=[("id", ">", 3500)])
        assert result.rows_skipped >= 3000
        assert all(row[0] >= 3000 for row in result.rows)

    def test_pushdown_conservative_on_unknown_column(self):
        stored = OrcFormat(stripe_rows=2).build(SCHEMA, ROWS)
        result = stored.scan(0, 4, stats_conjuncts=[("nope", "=", 1)])
        assert len(result.rows) == 4

    def test_partial_stripe_charges_fraction(self):
        rows = [(i, "n", 1.0, True, "1995-01-01") for i in range(1000)]
        stored = OrcFormat(stripe_rows=1000).build(SCHEMA, rows)
        half = stored.bytes_for_range(0, 500)
        full = stored.bytes_for_range(0, 1000)
        assert 0 < half < full
        assert half == pytest.approx(full / 2, rel=0.2)

    def test_dictionary_beats_direct_on_repeats(self):
        repeats = [(i, "only-a-few-values-%d" % (i % 3), 0.0, True, "1995-01-01")
                   for i in range(3000)]
        uniques = [(i, f"totally-unique-string-{i:08d}", 0.0, True, "1995-01-01")
                   for i in range(3000)]
        small = OrcFormat().build(SCHEMA, repeats).total_bytes
        big = OrcFormat().build(SCHEMA, uniques).total_bytes
        assert small < big

    def test_orc_smaller_than_text_on_typical_data(self):
        rows = [(i, f"cat{i % 20}", round(i * 1.1, 2), i % 2 == 0, "1996-03-01")
                for i in range(5000)]
        orc = get_format("orc").build(SCHEMA, rows).total_bytes
        text = get_format("text").build(SCHEMA, rows).total_bytes
        assert orc < text

    def test_stats_recorded(self):
        stored = OrcFormat(stripe_rows=4).build(SCHEMA, ROWS)
        stats = stored.stripes[0].stats
        assert stats["id"] == (1, 4)
        assert stats["name"] == ("alpha", "beta")


_orc_row = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-(2**40), max_value=2**40)),
    st.one_of(st.none(), st.text(max_size=20)),
    st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
    st.one_of(st.none(), st.booleans()),
    st.one_of(st.none(), st.just("1995-01-01")),
)


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(_orc_row, min_size=1, max_size=60))
def test_property_orc_round_trip(rows):
    stored = OrcFormat(stripe_rows=16).build(SCHEMA, rows)
    decoded = []
    for index in range(len(stored.stripes)):
        decoded.extend(stored.decode_stripe(index))
    assert decoded == rows
