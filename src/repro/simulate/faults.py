"""Declarative, seeded fault injection for the cluster simulation.

The paper's central trade-off (§I, §VI) is that Hive-on-MapReduce
tolerates faults at task granularity while the MPI substrate buys speed
with gang-failure semantics.  This module makes that trade-off
mechanical instead of modeled: a :class:`FaultPlan` declares *what goes
wrong and when*, and a :class:`FaultInjector` delivers it through the
event kernel — crashing nodes interrupt every registered task process
mid-flight (via :meth:`repro.simulate.events.Process.interrupt`),
degradation windows change link rates, stragglers slow a node's CPU —
so recovery is something the engines actually have to *do* (release
slots, free memory, discard partial output, re-execute), not a sleep
penalty.

Fault-plan grammar (also accepted via ``repro.faults`` / CLI
``--faults``), clauses separated by ``;``::

    seed:7                     # seed for every probabilistic draw
    fail:0.05                  # per-attempt task failure probability
    crash:w2@40                # worker 2 dies at t=40s, stays dead
    crash:w2@40-90             # ... and recovers at t=90s
    slow:w3x4@10-200           # worker 3 CPU runs 4x slower in [10,200)
    slow:w3x4@10               # ... from t=10s onward
    disk:w1x0.25@5-60          # worker 1 disk at 25% rate in [5,60)
    nic:w4x0.5@0-100           # worker 4 NIC (both directions) at 50%
    scale-up:w7@30             # a new (or re-commissioned) worker joins at t=30
    drain:w3@50                # worker 3 decommissions gracefully from t=50

Worker indices are 0-based positions in ``cluster.workers`` (the paper's
testbed: workers 0..6 behind master node0).  Every draw derives its RNG
from ``(seed, job, task, attempt)`` via :mod:`repro.common.rng`, so runs
are deterministic and independent of event ordering.

When a plan is active the injector also runs a :class:`HeartbeatMonitor`
in simulated time: workers beat every ``repro.heartbeat.interval``
seconds, silence beyond ``repro.heartbeat.suspect`` marks a node
*suspected*, silence beyond ``repro.heartbeat.timeout`` *declares* it
dead and only then notifies deferred crash subscribers — so engines
learn about remote node loss with realistic detection latency instead of
an oracle callback.  A straggling node beats late (every
``interval x slowdown`` seconds), so heavy slowdowns cause transient
false suspicions that clear when the late beat lands.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.config import FAILURE_RATE, FAULT_SEED, FAULT_SPEC
from repro.common.errors import ConfigError
from repro.common.rng import derive_rng
from repro.simulate.cluster import Cluster
from repro.simulate.events import Process, Simulator


@dataclass(frozen=True)
class NodeCrash:
    """Worker *worker* dies at *at*; optionally rejoins at *recover_at*."""

    worker: int
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self):
        if self.at < 0:
            raise ConfigError(f"crash time must be >= 0: {self.at}")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ConfigError(
                f"recovery ({self.recover_at}) must follow the crash ({self.at})"
            )


@dataclass(frozen=True)
class Degradation:
    """Worker *worker*'s *resource* ("disk" or "nic") runs at
    ``factor`` x nominal rate during [start, end)."""

    worker: int
    resource: str
    factor: float
    start: float
    end: Optional[float] = None

    def __post_init__(self):
        if self.resource not in ("disk", "nic"):
            raise ConfigError(f"unknown degraded resource: {self.resource!r}")
        if not 0 < self.factor <= 1:
            raise ConfigError(f"degradation factor must be in (0,1]: {self.factor}")
        if self.end is not None and self.end <= self.start:
            raise ConfigError("degradation window must have end > start")


@dataclass(frozen=True)
class Straggler:
    """Worker *worker*'s CPU runs *factor* x slower during [start, end)."""

    worker: int
    factor: float
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self):
        if self.factor < 1:
            raise ConfigError(f"straggler factor must be >= 1: {self.factor}")
        if self.end is not None and self.end <= self.start:
            raise ConfigError("straggler window must have end > start")


@dataclass(frozen=True)
class ScaleUp:
    """A worker joins the cluster at *at* (elastic scale-up).

    *worker* is the index the new node is expected to occupy; when it
    names an existing drained worker, that node is re-commissioned
    instead of growing the cluster.
    """

    worker: int
    at: float

    def __post_init__(self):
        if self.at < 0:
            raise ConfigError(f"scale-up time must be >= 0: {self.at}")


@dataclass(frozen=True)
class Drain:
    """Worker *worker* starts a graceful decommission at *at*: no new
    placements, running work finishes, then slots/daemons retire."""

    worker: int
    at: float

    def __post_init__(self):
        if self.at < 0:
            raise ConfigError(f"drain time must be >= 0: {self.at}")


_CLAUSE = re.compile(
    r"""^(?P<kind>scale-up|drain|crash|slow|disk|nic)
         :w(?P<worker>\d+)
         (?:x(?P<factor>[0-9.]+))?
         @(?P<start>[0-9.]+)
         (?:-(?P<end>[0-9.]+))?$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run, declared up front."""

    seed: int = 0
    task_failure_rate: float = 0.0
    node_crashes: Tuple[NodeCrash, ...] = ()
    degradations: Tuple[Degradation, ...] = ()
    stragglers: Tuple[Straggler, ...] = ()
    scale_ups: Tuple[ScaleUp, ...] = ()
    drains: Tuple[Drain, ...] = ()

    def __post_init__(self):
        if not 0 <= self.task_failure_rate < 1:
            raise ConfigError(
                f"task failure rate must be in [0,1): {self.task_failure_rate}"
            )
        self._reject_overlapping_windows()

    def _reject_overlapping_windows(self) -> None:
        """Two windows of the same fault kind on the same worker whose
        intervals intersect leave the injector in an undefined state
        (who recovers the node first?), so the plan is rejected up
        front with a clear error instead."""
        infinity = float("inf")
        grouped: Dict[Tuple[str, object], List[Tuple[float, float]]] = {}
        for crash in self.node_crashes:
            grouped.setdefault(("crash", crash.worker), []).append(
                (crash.at, crash.recover_at if crash.recover_at is not None
                 else infinity))
        for straggler in self.stragglers:
            grouped.setdefault(("slow", straggler.worker), []).append(
                (straggler.start, straggler.end if straggler.end is not None
                 else infinity))
        for window in self.degradations:
            grouped.setdefault((window.resource, window.worker), []).append(
                (window.start, window.end if window.end is not None
                 else infinity))
        for (kind, worker), spans in grouped.items():
            spans.sort()
            for (start1, end1), (start2, _end2) in zip(spans, spans[1:]):
                if end1 > start2:
                    until = "inf" if end1 == infinity else f"{end1:g}"
                    raise ConfigError(
                        f"overlapping {kind} windows for worker {worker}: "
                        f"[{start1:g}, {until}) intersects the window "
                        f"starting at {start2:g}"
                    )

    @property
    def empty(self) -> bool:
        return (
            self.task_failure_rate == 0.0
            and not self.node_crashes
            and not self.degradations
            and not self.stragglers
            and not self.scale_ups
            and not self.drains
        )

    # -- construction ---------------------------------------------------------
    @staticmethod
    def parse(spec: str, seed: int = 0, task_failure_rate: float = 0.0) -> "FaultPlan":
        """Parse the clause grammar documented at module top."""
        crashes: List[NodeCrash] = []
        degradations: List[Degradation] = []
        stragglers: List[Straggler] = []
        scale_ups: List[ScaleUp] = []
        drains: List[Drain] = []
        for raw in re.split(r"[;\n]", spec or ""):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed:"):
                seed = int(clause[len("seed:"):])
                continue
            if clause.startswith("fail:"):
                task_failure_rate = float(clause[len("fail:"):])
                continue
            match = _CLAUSE.match(clause)
            if match is None:
                raise ConfigError(f"unparseable fault clause: {clause!r}")
            kind = match.group("kind")
            worker = int(match.group("worker"))
            factor = match.group("factor")
            start = float(match.group("start"))
            end = float(match.group("end")) if match.group("end") else None
            if kind in ("scale-up", "drain"):
                if factor is not None:
                    raise ConfigError(f"{kind} takes no factor: {clause!r}")
                if end is not None:
                    raise ConfigError(
                        f"{kind} takes a single time, not a window: {clause!r}"
                    )
                if kind == "scale-up":
                    scale_ups.append(ScaleUp(worker, start))
                else:
                    drains.append(Drain(worker, start))
            elif kind == "crash":
                if factor is not None:
                    raise ConfigError(f"crash takes no factor: {clause!r}")
                crashes.append(NodeCrash(worker, start, recover_at=end))
            elif kind == "slow":
                if factor is None:
                    raise ConfigError(f"slow needs a factor: {clause!r}")
                stragglers.append(Straggler(worker, float(factor), start, end))
            else:  # disk | nic
                if factor is None:
                    raise ConfigError(f"{kind} needs a factor: {clause!r}")
                degradations.append(
                    Degradation(worker, kind, float(factor), start, end)
                )
        return FaultPlan(
            seed=seed,
            task_failure_rate=task_failure_rate,
            node_crashes=tuple(crashes),
            degradations=tuple(degradations),
            stragglers=tuple(stragglers),
            scale_ups=tuple(scale_ups),
            drains=tuple(drains),
        )

    @staticmethod
    def from_conf(conf) -> "FaultPlan":
        """Build the plan a session asked for: the declarative
        ``repro.faults`` spec folded together with the legacy scalar
        ``repro.failure.rate``."""
        return FaultPlan.parse(
            conf.get(FAULT_SPEC, "") or "",
            seed=conf.get_int(FAULT_SEED, 0),
            task_failure_rate=conf.get_float(FAILURE_RATE, 0.0),
        )


@dataclass
class FaultEvent:
    """One fault the injector actually delivered (for ``QueryResult``)."""

    time: float
    kind: str
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out = {"time": self.time, "kind": self.kind}
        out.update(self.detail)
        return out


class HeartbeatMonitor:
    """Failure detection through missed heartbeats, in simulated time.

    Every worker conceptually sends a beat each *interval* seconds; a
    straggling node (CPU slowdown ``F``) beats every ``interval x F``
    seconds, and a dead node stops beating at the crash instant.  The
    monitor ticks once per interval (daemon callbacks only — it never
    keeps the simulation alive) and walks workers through the
    suspicion state machine:

    * silence >= ``suspect_after``  -> *suspected* (``node-suspect``)
    * silence >= ``timeout``        -> *declared dead*
      (``node-dead-declared``) — only now are deferred crash
      subscribers notified, so remote recovery (lost-map re-execution,
      gang teardown for non-resident nodes) pays detection latency;
    * a late beat clears a suspicion (``suspect-cleared``) without a
      death declaration — the false-suspicion path heavy stragglers
      exercise;
    * beats resuming after a declaration (crash window ended) record
      ``node-rejoin`` and re-arm detection.
    """

    def __init__(self, injector: "FaultInjector", interval: float,
                 suspect_after: float, timeout: float):
        if interval <= 0:
            raise ConfigError(f"heartbeat interval must be > 0: {interval}")
        if not 0 < suspect_after < timeout:
            raise ConfigError(
                f"need 0 < suspect ({suspect_after}) < timeout ({timeout})"
            )
        self.injector = injector
        self.sim = injector.sim
        self.interval = interval
        self.suspect_after = suspect_after
        self.timeout = timeout
        self._last_beat: Dict[int, float] = {}
        self._suspected: Set[int] = set()
        self._declared: Set[int] = set()
        self._started = False

    # -- state the engines may consult ---------------------------------------
    def is_suspect(self, worker_index: int) -> bool:
        return worker_index in self._suspected

    def is_declared_dead(self, worker_index: int) -> bool:
        return worker_index in self._declared

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for index in range(len(self.injector.cluster.workers)):
            self._last_beat[index] = self.sim.now
        self.sim.call_at(self.sim.now + self.interval, self._tick, daemon=True)

    def track(self, worker_index: int) -> None:
        """Start watching a worker that joined after :meth:`start`."""
        self._last_beat.setdefault(worker_index, self.sim.now)

    def _tick(self) -> None:
        now = self.sim.now
        for index, node in enumerate(self.injector.cluster.workers):
            last = self._last_beat.get(index, now)
            if node.alive:
                # credit the newest beat that would have arrived by now;
                # a straggler's beats are spaced interval x slowdown
                gap = self.interval * max(1.0, node.slowdown)
                if now - last >= gap:
                    last += math.floor((now - last) / gap) * gap
                    self._last_beat[index] = last
            silence = now - last
            if index in self._declared:
                if silence < self.suspect_after:
                    self._declared.discard(index)
                    self._suspected.discard(index)
                    self.injector._record("node-rejoin", worker=index)
                continue
            if silence >= self.timeout:
                self._suspected.discard(index)
                self._declared.add(index)
                self.injector._record(
                    "node-dead-declared", worker=index,
                    silence=round(silence, 3),
                )
                self.injector._notify_deferred(index)
            elif silence >= self.suspect_after:
                if index not in self._suspected:
                    self._suspected.add(index)
                    self.injector._record(
                        "node-suspect", worker=index,
                        silence=round(silence, 3),
                    )
            elif index in self._suspected:
                self._suspected.discard(index)
                self.injector._record("suspect-cleared", worker=index)
        self.sim.call_at(now + self.interval, self._tick, daemon=True)


class FaultInjector:
    """Delivers a :class:`FaultPlan` into a live simulation.

    The engines cooperate through a small contract:

    * every task attempt **registers** its :class:`Process` under the
      worker index it runs on (and unregisters on exit) so a crash can
      interrupt exactly the work that was on the dead machine;
    * scheduling consults :meth:`node_alive` and skips dead nodes;
    * probabilistic per-attempt failures come from :meth:`attempt_doom`,
      whose draws are seeded per (job, task, attempt) and therefore
      identical across runs and engines;
    * engines may :meth:`subscribe_crash` to learn about node loss even
      when nothing of theirs was running there (the Hadoop job tracker
      uses this to invalidate completed map output on the dead node).
      Default subscriptions are *deferred*: when the heartbeat monitor
      runs, they fire at dead-declaration time, not the physical crash
      instant.  ``immediate=True`` opts into crash-instant delivery for
      strictly node-local physical effects (cache memory vanishing with
      its node);
    * engines may :meth:`subscribe_membership` to react to elastic
      ``join`` / ``drain`` / ``drained`` transitions (the LLAP fleet
      spawns and retires daemons through this).

    All agenda entries are daemon callbacks: an injector never keeps the
    simulation alive on its own.
    """

    #: seconds between graceful-drain completion checks
    DRAIN_POLL_SECONDS = 0.5

    def __init__(self, sim: Simulator, cluster: Cluster, plan: FaultPlan,
                 tracer=None, metrics=None, heartbeat_enabled: str = "auto",
                 heartbeat_interval: float = 1.0,
                 heartbeat_suspect: float = 3.0,
                 heartbeat_timeout: float = 10.0):
        self.sim = sim
        self.cluster = cluster
        self.plan = plan
        self.tracer = tracer
        self.metrics = metrics
        self.events: List[FaultEvent] = []
        self.span = None
        self.monitor: Optional[HeartbeatMonitor] = None
        self._heartbeat_enabled = heartbeat_enabled
        self._heartbeat_params = (
            heartbeat_interval, heartbeat_suspect, heartbeat_timeout
        )
        # insertion-ordered on purpose: crash delivery iterates this, and
        # a set's address-dependent order would make replays diverge
        self._registered: Dict[int, Dict[Process, None]] = {}
        self._immediate_subscribers: List[Callable[[int], None]] = []
        self._deferred_subscribers: List[Callable[[int], None]] = []
        self._membership_subscribers: List[Callable[[str, int], None]] = []
        self._started = False

    @property
    def active(self) -> bool:
        """True when this run has any faults or membership changes — the
        gate for optional bookkeeping (rank registration, monitors) that
        must not perturb byte-identical clean runs."""
        return not self.plan.empty

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Schedule every planned fault on the simulator agenda."""
        if self._started:
            return
        self._started = True
        if self.plan.empty:
            return
        if self.tracer is not None:
            self.span = self.tracer.start(
                "faults", start=self.sim.now, category="faults"
            )
        for crash in self.plan.node_crashes:
            self.sim.call_at(crash.at, self._crash, crash.worker, daemon=True)
            if crash.recover_at is not None:
                self.sim.call_at(
                    crash.recover_at, self._recover, crash.worker, daemon=True
                )
        for window in self.plan.degradations:
            self.sim.call_at(
                window.start, self._degrade, window, True, daemon=True
            )
            if window.end is not None:
                self.sim.call_at(
                    window.end, self._degrade, window, False, daemon=True
                )
        for straggler in self.plan.stragglers:
            self.sim.call_at(
                straggler.start, self._slowdown, straggler.worker,
                straggler.factor, daemon=True,
            )
            if straggler.end is not None:
                self.sim.call_at(
                    straggler.end, self._slowdown, straggler.worker, 1.0,
                    daemon=True,
                )
        for scale_up in self.plan.scale_ups:
            self.sim.call_at(
                scale_up.at, self._scale_up, scale_up.worker, daemon=True
            )
        for drain in self.plan.drains:
            self.sim.call_at(drain.at, self._drain, drain.worker, daemon=True)
        if self._heartbeat_enabled != "false":
            interval, suspect, timeout = self._heartbeat_params
            self.monitor = HeartbeatMonitor(self, interval, suspect, timeout)
            self.monitor.start()
        self._refresh_alive_gauge()

    def close(self) -> None:
        if self.span is not None and not self.span.closed:
            self.span.finish(self.sim.now, faults=len(self.events))

    # -- engine contract ------------------------------------------------------
    def node_alive(self, worker_index: int) -> bool:
        return self.cluster.workers[worker_index % len(self.cluster.workers)].alive

    def node_schedulable(self, worker_index: int) -> bool:
        """Placement check: alive *and* not draining."""
        workers = self.cluster.workers
        return workers[worker_index % len(workers)].schedulable

    def live_worker_indices(self) -> List[int]:
        return [
            index for index, node in enumerate(self.cluster.workers) if node.alive
        ]

    def schedulable_worker_indices(self) -> List[int]:
        return [
            index for index, node in enumerate(self.cluster.workers)
            if node.schedulable
        ]

    def register(self, worker_index: int, process: Process) -> None:
        self._registered.setdefault(worker_index, {})[process] = None

    def unregister(self, worker_index: int, process: Process) -> None:
        self._registered.get(worker_index, {}).pop(process, None)

    def subscribe_crash(self, callback: Callable[[int], None],
                        immediate: bool = False) -> None:
        """Hear about node loss.  Deferred (default) subscribers are
        notified when the heartbeat monitor declares the node dead —
        or at the crash instant when no monitor runs.  Immediate
        subscribers always fire at the physical crash instant; reserve
        that for effects local to the dead machine itself."""
        if immediate:
            self._immediate_subscribers.append(callback)
        else:
            self._deferred_subscribers.append(callback)

    def unsubscribe_crash(self, callback: Callable[[int], None]) -> None:
        if callback in self._immediate_subscribers:
            self._immediate_subscribers.remove(callback)
        if callback in self._deferred_subscribers:
            self._deferred_subscribers.remove(callback)

    def subscribe_membership(self, callback: Callable[[str, int], None]) -> None:
        """Hear about elastic membership: *callback(kind, worker_index)*
        with kind ``"join"`` (node commissioned), ``"drain"``
        (decommission started) or ``"drained"`` (decommission done)."""
        self._membership_subscribers.append(callback)

    def unsubscribe_membership(self, callback: Callable[[str, int], None]) -> None:
        if callback in self._membership_subscribers:
            self._membership_subscribers.remove(callback)

    def attempt_doom(self, job_id: str, task_id: str, attempt: int) -> Optional[float]:
        """Decide whether this attempt fails part-way through.

        Returns the fraction of the attempt's work after which it dies,
        or ``None`` for a clean run.  Seeded per (job, task, attempt):
        the same plan always dooms the same attempts at the same points,
        independent of scheduling order.  Callers must not consult this
        for a task's final permitted attempt — recovery has to converge.
        """
        rate = self.plan.task_failure_rate
        if rate <= 0:
            return None
        rng = derive_rng(self.plan.seed, "attempt-doom", job_id, task_id, attempt)
        if rng.random() >= rate:
            return None
        return 0.05 + 0.90 * rng.random()

    # -- fault delivery -------------------------------------------------------
    def _record(self, kind: str, **detail) -> None:
        event = FaultEvent(self.sim.now, kind, dict(detail))
        self.events.append(event)
        if self.span is not None:
            self.span.add_event(kind, self.sim.now, **detail)
        if self.metrics is not None:
            self.metrics.counter("cluster.faults.injected").add(1)

    def _refresh_alive_gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("cluster.nodes.alive").set(
                len(self.live_worker_indices())
            )

    def _crash(self, worker_index: int) -> None:
        node = self.cluster.workers[worker_index % len(self.cluster.workers)]
        if not node.alive:
            return
        node.alive = False
        self._record("node-crash", worker=worker_index, node=node.name)
        if self.metrics is not None:
            self.metrics.counter("cluster.node.crashes").add(1)
        self._refresh_alive_gauge()
        # interrupt everything running there — the attempt bodies own the
        # cleanup (slots, memory, partial output)
        doomed = list(self._registered.get(worker_index, ()))
        self._registered[worker_index] = {}
        for process in doomed:
            process.interrupt(cause=("node-crash", worker_index))
        for callback in list(self._immediate_subscribers):
            callback(worker_index)
        if self.monitor is None:
            # no failure detector: fall back to oracle-instant delivery
            self._notify_deferred(worker_index)

    def _notify_deferred(self, worker_index: int) -> None:
        for callback in list(self._deferred_subscribers):
            callback(worker_index)

    def _notify_membership(self, kind: str, worker_index: int) -> None:
        for callback in list(self._membership_subscribers):
            callback(kind, worker_index)

    def _scale_up(self, worker_hint: int) -> None:
        workers = self.cluster.workers
        if worker_hint < len(workers):
            # re-commission an existing (typically drained) worker
            node = workers[worker_hint]
            index = worker_hint
            if node.schedulable:
                return
            node.draining = False
            if not node.alive:
                node.alive = True
            self._record("node-join", worker=index, node=node.name,
                         rejoin=True)
        else:
            node = self.cluster.add_node()
            index = len(self.cluster.workers) - 1
            if self.monitor is not None:
                self.monitor.track(index)
            self._record("node-join", worker=index, node=node.name,
                         rejoin=False)
        if self.metrics is not None:
            self.metrics.counter("cluster.nodes.joined").add(1)
        self._refresh_alive_gauge()
        self._notify_membership("join", index)

    def _drain(self, worker_index: int) -> None:
        workers = self.cluster.workers
        if worker_index >= len(workers):
            return
        node = workers[worker_index]
        if node.draining or not node.alive:
            return
        node.draining = True
        self._record("drain-start", worker=worker_index, node=node.name)
        if self.metrics is not None:
            self.metrics.counter("cluster.nodes.draining").add(1)
        self._notify_membership("drain", worker_index)
        self.sim.call_at(
            self.sim.now + self.DRAIN_POLL_SECONDS, self._drain_poll,
            worker_index, daemon=True,
        )

    def _drain_poll(self, worker_index: int) -> None:
        node = self.cluster.workers[worker_index]
        if not node.draining:
            return  # re-commissioned by a scale-up mid-drain
        if self._registered.get(worker_index) or node.slots.in_use > 0:
            self.sim.call_at(
                self.sim.now + self.DRAIN_POLL_SECONDS, self._drain_poll,
                worker_index, daemon=True,
            )
            return
        self._record("node-drained", worker=worker_index, node=node.name)
        self._notify_membership("drained", worker_index)

    def _recover(self, worker_index: int) -> None:
        node = self.cluster.workers[worker_index % len(self.cluster.workers)]
        if node.alive:
            return
        node.alive = True
        self._record("node-recover", worker=worker_index, node=node.name)
        self._refresh_alive_gauge()

    def _degrade(self, window: Degradation, begin: bool) -> None:
        node = self.cluster.workers[window.worker % len(self.cluster.workers)]
        factor = window.factor if begin else 1.0
        if window.resource == "disk":
            node.disk.set_rate(self.cluster.spec.disk_bandwidth * factor)
        else:
            node.nic_tx.set_rate(self.cluster.spec.nic_bandwidth * factor)
            node.nic_rx.set_rate(self.cluster.spec.nic_bandwidth * factor)
        self._record(
            "degrade-start" if begin else "degrade-end",
            worker=window.worker, resource=window.resource, factor=factor,
        )

    def _slowdown(self, worker_index: int, factor: float) -> None:
        node = self.cluster.workers[worker_index % len(self.cluster.workers)]
        node.slowdown = factor
        self._record(
            "straggle-start" if factor > 1.0 else "straggle-end",
            worker=worker_index, factor=factor,
        )
