"""Simulated MPI point-to-point layer.

Provides what DataMPI's shuffle engine needs from MVAPICH2: non-blocking
sends with testable request handles, and a barrier for the blocking
communication style.  Transfers move through the simulated cluster's
NICs (processor-shared), so concurrent sends contend exactly like real
messages on a GigE fabric.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ExecutionError
from repro.simulate.cluster import Cluster, Node
from repro.simulate.events import Event, Simulator


class Request:
    """A non-blocking send handle (``MPI_Isend`` return value)."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        self.event = event

    @property
    def done(self) -> bool:
        """``MPI_Test`` — has the transfer completed?"""
        return self.event.triggered


class SimulatedMPI:
    """Point-to-point message transport over the simulated cluster."""

    def __init__(self, cluster: Cluster, eager_limit: float = 64 * 1024):
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.eager_limit = eager_limit
        self.messages_sent = 0
        self.bytes_sent = 0.0

    def isend(self, source: Node, destination: Node, nbytes: float) -> Request:
        """Start a non-blocking transfer; the request completes when the
        bytes have crossed both NICs (same-node sends are immediate)."""
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if source is destination or nbytes <= 0:
            event = self.sim.event()
            event.trigger(None)
            return Request(event)
        transfer = self.sim.all_of(
            [source.nic_tx.transfer(nbytes), destination.nic_rx.transfer(nbytes)]
        )
        return Request(transfer)

    def waitall(self, requests: List[Request]) -> Event:
        """``MPI_Waitall`` — an event that triggers when every request
        has completed."""
        return self.sim.all_of([request.event for request in requests])


class DynamicBarrier:
    """Barrier whose membership can shrink (tasks deregister on finish).

    The blocking communication style synchronizes every participant at
    each round; a skewed task makes all others wait — this is the
    synchronization overhead Fig 6 visualizes.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._members = 0
        self._arrived = 0
        self._gate: Optional[Event] = None

    def register(self) -> None:
        self._members += 1

    def deregister(self) -> None:
        """Leave the barrier; may release waiters if they were only
        waiting for this member."""
        if self._members <= 0:
            raise ExecutionError("deregister on empty barrier")
        self._members -= 1
        self._maybe_release()

    def arrive(self) -> Event:
        """Arrive at the barrier; the returned event triggers once every
        registered member has arrived."""
        if self._gate is None or self._gate.triggered:
            self._gate = self.sim.event()
            self._arrived = 0
        self._arrived += 1
        gate = self._gate
        self._maybe_release()
        return gate

    def _maybe_release(self) -> None:
        if (
            self._gate is not None
            and not self._gate.triggered
            and self._arrived >= self._members
            and self._arrived > 0
        ):
            self._gate.trigger(None)
