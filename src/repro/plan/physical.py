"""Physical planning: bound logical tree -> DAG of MapReduce jobs.

The physical plan is engine-neutral (paper §IV-B: *"we continue to share
the query plan optimized for Hadoop"*): the Hadoop engine and the DataMPI
engine execute the **same** :class:`MRJob` objects; only job control,
startup and shuffle differ.

Shuffle-requiring logical nodes (Aggregate, common Join, Sort, Distinct)
each open a new job; Filters/Projects/Limits fuse into the enclosing map
or reduce chain; intermediate results go to temp directories in sequence
format.  Map-join converts a join against a small base table into a
broadcast hash join fused into the consuming chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import (
    Configuration,
    HIVE_MAPJOIN_SMALLTABLE_BYTES,
)
from repro.common.errors import PlanError
from repro.common.rows import DataType, Schema
from repro.common.units import MB
from repro.exec import expressions as bexpr
from repro.exec.expressions import BoundExpression, Const, InputRef
from repro.exec.operators import (
    FileSinkDesc,
    FilterDesc,
    LimitDesc,
    MapGroupByDesc,
    MapJoinDesc,
    ReduceSinkDesc,
    SelectDesc,
)
from repro.exec.reduce import (
    ReduceAggregateDesc,
    ReduceDistinctDesc,
    ReduceJoinDesc,
    ReduceSortDesc,
)
from repro.plan.analyzer import collect_input_refs, split_conjuncts
from repro.plan.logical import (
    AggregateNode,
    DistinctNode,
    Filter,
    JoinNode,
    LimitNode,
    LogicalNode,
    Project,
    RowSignature,
    Scan,
    SortNode,
    UnionNode,
)
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore

DEFAULT_MAPJOIN_THRESHOLD = 25 * MB  # Hive 0.13 hive.mapjoin.smalltable.filesize


# ---------------------------------------------------------------------------
# plan data model
# ---------------------------------------------------------------------------

@dataclass
class ScanHints:
    """ORC reader hints derived from the map chain (pruning + pushdown)."""

    columns: Optional[List[str]] = None  # None = all columns
    stats_conjuncts: List[Tuple[str, str, object]] = field(default_factory=list)


@dataclass
class MapInput:
    """One input relation of a job with its per-record operator chain."""

    location: str
    tag: int
    operators: List[object]  # descriptors; a shuffle job's chain ends in ReduceSinkDesc
    hints: ScanHints = field(default_factory=ScanHints)


@dataclass
class BroadcastSpec:
    """A small table to load and preprocess on every map task (map join)."""

    location: str
    operators: List[object]  # Filter/Select chain applied to the loaded rows
    width: int


@dataclass
class MRJob:
    job_id: str
    inputs: List[MapInput]
    reduce_logic: Optional[object]  # None -> map-only job
    reduce_operators: List[object] = field(default_factory=list)  # ends FileSinkDesc
    output_location: str = ""
    output_schema: Optional[Schema] = None
    output_format: str = "sequence"
    output_partition_values: Optional[Dict[str, object]] = None
    sort_directions: Optional[List[bool]] = None
    num_reducers_hint: Optional[int] = None
    broadcasts: List[BroadcastSpec] = field(default_factory=list)
    is_final: bool = False

    @property
    def is_map_only(self) -> bool:
        return self.reduce_logic is None


@dataclass
class PhysicalPlan:
    jobs: List[MRJob]
    output_location: str
    output_schema: Schema
    final_limit: Optional[int] = None

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)


# ---------------------------------------------------------------------------
# compiler
# ---------------------------------------------------------------------------

class _MapStream:
    """Un-materialized map-side stream: per-file-input operator chains."""

    def __init__(self, inputs: List[MapInput], signature: RowSignature,
                 broadcasts: Optional[List[BroadcastSpec]] = None,
                 base_table: Optional[str] = None):
        self.inputs = inputs
        self.signature = signature
        self.broadcasts = broadcasts or []
        self.base_table = base_table  # table name when chain is over one base table

    def append(self, descriptor: object) -> None:
        for map_input in self.inputs:
            map_input.operators.append(descriptor)


class _ReduceStream:
    """An open job whose reduce-side chain is still growing."""

    def __init__(self, job: MRJob, signature: RowSignature):
        self.job = job
        self.signature = signature

    def append(self, descriptor: object) -> None:
        self.job.reduce_operators.append(descriptor)


class PhysicalCompiler:
    def __init__(self, metastore: Metastore, hdfs: HDFS, conf: Optional[Configuration] = None,
                 query_id: str = "q"):
        self.metastore = metastore
        self.hdfs = hdfs
        self.conf = conf or Configuration()
        self.query_id = query_id
        self._job_counter = 0
        self._temp_counter = 0
        self.jobs: List[MRJob] = []

    # -- public API ---------------------------------------------------------
    def compile(
        self,
        root: LogicalNode,
        output_location: str,
        output_format: str = "text",
    ) -> PhysicalPlan:
        self.jobs = []
        final_limit = root.limit if isinstance(root, LimitNode) else None
        stream = self._compile_node(root)
        schema = stream.signature.to_schema()
        if isinstance(stream, _ReduceStream):
            self._close_job(stream, output_location, output_format, final=True)
        else:
            job = self._new_job(stream.inputs, None, broadcasts=stream.broadcasts)
            stream.append(FileSinkDesc(column_names=schema.names))
            job.output_location = output_location
            job.output_schema = schema
            job.output_format = output_format
            job.is_final = True
            self.jobs.append(job)
        for job in self.jobs:
            for map_input in job.inputs:
                map_input.hints = self._compute_scan_hints(map_input)
        return PhysicalPlan(
            jobs=self.jobs,
            output_location=output_location,
            output_schema=schema,
            final_limit=final_limit,
        )

    # -- helpers ----------------------------------------------------------------
    def _next_temp(self) -> str:
        self._temp_counter += 1
        return f"/tmp/hive/{self.query_id}/inter-{self._temp_counter}"

    def _new_job(self, inputs: List[MapInput], reduce_logic: Optional[object],
                 broadcasts: Optional[List[BroadcastSpec]] = None) -> MRJob:
        self._job_counter += 1
        return MRJob(
            job_id=f"{self.query_id}-job{self._job_counter}",
            inputs=inputs,
            reduce_logic=reduce_logic,
            broadcasts=broadcasts or [],
        )

    def _close_job(
        self,
        stream: _ReduceStream,
        location: str,
        output_format: str,
        final: bool,
    ) -> None:
        schema = stream.signature.to_schema()
        stream.job.reduce_operators.append(FileSinkDesc(column_names=schema.names))
        stream.job.output_location = location
        stream.job.output_schema = schema
        stream.job.output_format = output_format
        stream.job.is_final = final
        self.jobs.append(stream.job)

    def _materialize(self, stream) -> _MapStream:
        """Force a stream into readable files (temp dir) if it is an open
        reduce-side job; map streams pass through."""
        if isinstance(stream, _MapStream):
            return stream
        location = self._next_temp()
        self._close_job(stream, location, "sequence", final=False)
        return _MapStream(
            inputs=[MapInput(location=location, tag=0, operators=[])],
            signature=stream.signature,
        )

    # -- node dispatch --------------------------------------------------------------
    def _compile_node(self, node: LogicalNode):
        if isinstance(node, Scan):
            return self._compile_scan(node)
        if isinstance(node, Filter):
            stream = self._compile_node(node.child)
            stream.append(FilterDesc(node.predicate))
            return stream
        if isinstance(node, Project):
            stream = self._compile_node(node.child)
            stream.append(SelectDesc(node.expressions))
            stream.signature = node.signature
            return stream
        if isinstance(node, LimitNode):
            stream = self._compile_node(node.child)
            stream.append(LimitDesc(node.limit))
            return stream
        if isinstance(node, AggregateNode):
            return self._compile_aggregate(node)
        if isinstance(node, DistinctNode):
            return self._compile_distinct(node)
        if isinstance(node, JoinNode):
            return self._compile_join(node)
        if isinstance(node, SortNode):
            return self._compile_sort(node)
        if isinstance(node, UnionNode):
            return self._compile_union(node)
        raise PlanError(f"cannot compile {type(node).__name__}")

    def _compile_union(self, node: UnionNode) -> _MapStream:
        """UNION ALL: the branches' map inputs merge into one stream;
        every branch keeps its own per-input chain, later operators are
        appended to all of them."""
        inputs: List[MapInput] = []
        broadcasts: List[BroadcastSpec] = []
        for child in node.inputs:
            stream = self._materialize(self._compile_node(child))
            inputs.extend(stream.inputs)
            broadcasts.extend(stream.broadcasts)
        return _MapStream(
            inputs=inputs,
            signature=node.signature,
            broadcasts=broadcasts,
        )

    def _compile_scan(self, node: Scan) -> _MapStream:
        splits_inputs = [
            MapInput(location=node.table.location, tag=0, operators=[])
        ]
        return _MapStream(
            inputs=splits_inputs,
            signature=node.signature,
            base_table=node.table.name,
        )

    # -- aggregate ---------------------------------------------------------------
    def _compile_aggregate(self, node: AggregateNode) -> _ReduceStream:
        stream = self._materialize(self._compile_node(node.child))
        key_count = len(node.group_expressions)
        use_partials = not node.has_distinct

        if use_partials:
            aggregates = [(call.aggregate, call.argument) for call in node.calls]
            stream.append(
                MapGroupByDesc(
                    key_expressions=list(node.group_expressions),
                    aggregates=aggregates,
                )
            )
            partial_arities = [
                len(call.aggregate.partial(call.aggregate.create()))
                for call in node.calls
            ]
            flat_width = key_count + sum(partial_arities)
            sink = ReduceSinkDesc(
                key_expressions=[InputRef(i) for i in range(key_count)],
                value_expressions=[InputRef(i) for i in range(key_count, flat_width)],
            )
            logic = ReduceAggregateDesc(
                key_arity=key_count,
                aggregates=[call.aggregate for call in node.calls],
                inputs_are_partials=True,
                partial_arities=partial_arities,
            )
        else:
            values = [
                call.argument if call.argument is not None else Const(True, DataType.BOOLEAN)
                for call in node.calls
            ]
            sink = ReduceSinkDesc(
                key_expressions=list(node.group_expressions),
                value_expressions=values,
            )
            logic = ReduceAggregateDesc(
                key_arity=key_count,
                aggregates=[call.aggregate for call in node.calls],
                inputs_are_partials=False,
            )
        stream.append(sink)
        job = self._new_job(stream.inputs, logic, broadcasts=stream.broadcasts)
        if key_count == 0:
            job.num_reducers_hint = 1  # global aggregate
        return _ReduceStream(job, node.signature)

    def _compile_distinct(self, node: DistinctNode) -> _ReduceStream:
        stream = self._materialize(self._compile_node(node.child))
        width = len(node.signature)
        stream.append(
            MapGroupByDesc(
                key_expressions=[InputRef(i) for i in range(width)], aggregates=[]
            )
        )
        stream.append(
            ReduceSinkDesc(
                key_expressions=[InputRef(i) for i in range(width)],
                value_expressions=[],
            )
        )
        job = self._new_job(stream.inputs, ReduceDistinctDesc(key_arity=width),
                            broadcasts=stream.broadcasts)
        return _ReduceStream(job, node.signature)

    # -- join --------------------------------------------------------------------
    def _table_bytes(self, stream: _MapStream) -> Optional[float]:
        if stream.base_table is None:
            return None
        table = self.metastore.get_table(stream.base_table)
        try:
            return table.logical_bytes(self.hdfs)
        except Exception:
            return None

    def _compile_join(self, node: JoinNode):
        left_stream = self._compile_node(node.left)
        right_stream = self._compile_node(node.right)
        threshold = self.conf.get_float(
            HIVE_MAPJOIN_SMALLTABLE_BYTES, DEFAULT_MAPJOIN_THRESHOLD
        )

        # broadcast conversion applies to equi joins and cross joins alike
        # (a cross join's empty key matches every probe row)
        right_small = (
            isinstance(right_stream, _MapStream)
            and (self._table_bytes(right_stream) or float("inf")) < threshold
        )
        left_small = (
            isinstance(left_stream, _MapStream)
            and (self._table_bytes(left_stream) or float("inf")) < threshold
            and node.join_type == "inner"
        )
        if right_small:
            return self._map_join(node, big=left_stream, small=right_stream, swap=False)
        if left_small:
            return self._map_join(node, big=right_stream, small=left_stream, swap=True)

        return self._common_join(node, left_stream, right_stream)

    def _map_join(self, node: JoinNode, big, small: _MapStream, swap: bool):
        small_chain: List[object] = []
        for descriptor in small.inputs[0].operators:
            small_chain.append(descriptor)
        location = small.inputs[0].location
        if len(small.inputs) != 1:
            raise PlanError("broadcast side must be a single location")
        small_width = len(small.signature)
        if swap:
            probe_keys, build_keys = list(node.right_keys), list(node.left_keys)
        else:
            probe_keys, build_keys = list(node.left_keys), list(node.right_keys)
        descriptor = MapJoinDesc(
            small_location=location,
            probe_key_expressions=probe_keys,
            build_key_expressions=build_keys,
            join_type=node.join_type,
            small_width=small_width,
            swap_output=swap,
        )
        big.append(descriptor)
        broadcast = BroadcastSpec(location=location, operators=small_chain, width=small_width)
        if isinstance(big, _MapStream):
            big.broadcasts.append(broadcast)
            big.base_table = None  # widths changed; no longer a pure table chain
        else:
            big.job.broadcasts.append(broadcast)
        big.signature = node.signature
        if node.residual is not None:
            big.append(FilterDesc(node.residual))
        return big

    def _common_join(self, node: JoinNode, left_stream, right_stream) -> _ReduceStream:
        left_stream = self._materialize(left_stream)
        right_stream = self._materialize(right_stream)
        left_width = len(left_stream.signature)
        right_width = len(right_stream.signature)

        cross = not node.left_keys
        left_keys = node.left_keys or [Const(0, DataType.INT)]
        right_keys = node.right_keys or [Const(0, DataType.INT)]

        left_stream.append(
            ReduceSinkDesc(
                key_expressions=list(left_keys),
                value_expressions=[InputRef(i) for i in range(left_width)],
                tag=0,
            )
        )
        right_stream.append(
            ReduceSinkDesc(
                key_expressions=list(right_keys),
                value_expressions=[InputRef(i) for i in range(right_width)],
                tag=1,
            )
        )
        for map_input in right_stream.inputs:
            map_input.tag = 1

        inputs = left_stream.inputs + right_stream.inputs
        logic = ReduceJoinDesc(
            join_type=node.join_type,
            left_width=left_width,
            right_width=right_width,
        )
        job = self._new_job(
            inputs, logic,
            broadcasts=left_stream.broadcasts + right_stream.broadcasts,
        )
        if cross:
            job.num_reducers_hint = 1
        stream = _ReduceStream(job, node.signature)
        if node.residual is not None:
            stream.append(FilterDesc(node.residual))
        return stream

    # -- sort --------------------------------------------------------------------
    def _compile_sort(self, node: SortNode) -> _ReduceStream:
        stream = self._materialize(self._compile_node(node.child))
        width = len(stream.signature)
        stream.append(
            ReduceSinkDesc(
                key_expressions=list(node.sort_expressions),
                value_expressions=[InputRef(i) for i in range(width)],
            )
        )
        job = self._new_job(stream.inputs, ReduceSortDesc(), broadcasts=stream.broadcasts)
        job.sort_directions = list(node.ascending)
        job.num_reducers_hint = 1  # Hive: total ORDER BY -> single reducer
        return _ReduceStream(job, node.signature)

    # -- scan hints ---------------------------------------------------------------
    def _compute_scan_hints(self, map_input: MapInput) -> ScanHints:
        """Column pruning + stats pushdown for base-table inputs.

        Walks the chain while row positions still equal scan columns;
        stops at the first width-changing operator.  Falls back to "all
        columns" when the chain consumes rows opaquely.
        """
        if not self.hdfs.list_dir(map_input.location):
            return ScanHints()
        sample = self.hdfs.list_dir(map_input.location)
        schema = sample[0].schema
        names = [column.name.lower() for column in schema.columns]

        # mapping[i] = scan-column index feeding position i of the current
        # row; pure-InputRef Selects (column pruner output) are looked
        # through so Filters above them still yield stats conjuncts
        mapping: List[int] = list(range(len(names)))

        def map_refs(expression) -> Optional[List[int]]:
            out = []
            for index in collect_input_refs(expression):
                if not 0 <= index < len(mapping):
                    return None
                out.append(mapping[index])
            return out

        needed: set = set()
        conjuncts: List[Tuple[str, str, object]] = []
        resolved = True
        for descriptor in map_input.operators:
            if isinstance(descriptor, FilterDesc):
                refs = map_refs(descriptor.predicate)
                if refs is None:
                    resolved = False
                    break
                needed.update(refs)
                conjuncts.extend(
                    self._extract_stats_conjuncts(descriptor.predicate, names, mapping)
                )
            elif isinstance(descriptor, SelectDesc):
                for expression in descriptor.expressions:
                    refs = map_refs(expression)
                    if refs is None:
                        resolved = False
                        break
                    needed.update(refs)
                if not resolved:
                    break
                if all(isinstance(e, InputRef) for e in descriptor.expressions):
                    mapping = [mapping[e.index] for e in descriptor.expressions]
                    continue  # keep walking: positions still map to scan columns
                break
            elif isinstance(descriptor, MapGroupByDesc):
                expressions = list(descriptor.key_expressions) + [
                    argument for _agg, argument in descriptor.aggregates
                    if argument is not None
                ]
                for expression in expressions:
                    refs = map_refs(expression)
                    if refs is not None:
                        needed.update(refs)
                break
            elif isinstance(descriptor, ReduceSinkDesc):
                for expression in (
                    descriptor.key_expressions + descriptor.value_expressions
                ):
                    refs = map_refs(expression)
                    if refs is not None:
                        needed.update(refs)
                break
            elif isinstance(descriptor, MapJoinDesc):
                for expression in descriptor.probe_key_expressions:
                    refs = map_refs(expression)
                    if refs is not None:
                        needed.update(refs)
                resolved = False  # widths change; downstream refs unknown
                break
            elif isinstance(descriptor, FileSinkDesc):
                needed.update(mapping)  # every surviving column is written
                break
            elif isinstance(descriptor, LimitDesc):
                continue  # no column references
            else:
                resolved = False
                break
        if not resolved or not needed:
            return ScanHints(columns=None, stats_conjuncts=conjuncts)
        valid = [index for index in needed if 0 <= index < len(names)]
        return ScanHints(
            columns=sorted({names[index] for index in valid}),
            stats_conjuncts=conjuncts,
        )

    @staticmethod
    def _extract_stats_conjuncts(
        predicate: BoundExpression,
        names: List[str],
        mapping: Optional[List[int]] = None,
    ) -> List[Tuple[str, str, object]]:
        def column_of(index: int) -> Optional[str]:
            if mapping is not None:
                if not 0 <= index < len(mapping):
                    return None
                index = mapping[index]
            return names[index] if 0 <= index < len(names) else None

        out: List[Tuple[str, str, object]] = []
        for conjunct in split_conjuncts(predicate):
            if not isinstance(conjunct, bexpr.Comparison):
                continue
            if conjunct.op == "<>":
                continue
            left, right = conjunct.left, conjunct.right
            if isinstance(left, InputRef) and isinstance(right, Const):
                column = column_of(left.index)
                if column is not None:
                    out.append((column, conjunct.op, right.value))
            elif isinstance(left, Const) and isinstance(right, InputRef):
                flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
                column = column_of(right.index)
                if column is not None:
                    out.append((column, flipped[conjunct.op], left.value))
        return out


def explain_plan(plan: PhysicalPlan) -> str:
    """Human-readable physical plan (used in tests and EXPLAIN output)."""
    lines = [f"physical plan: {plan.num_jobs} job(s) -> {plan.output_location}"]
    for job in plan.jobs:
        kind = "map-only" if job.is_map_only else type(job.reduce_logic).__name__
        lines.append(f"  {job.job_id} [{kind}] -> {job.output_location}")
        for map_input in job.inputs:
            ops = ", ".join(type(op).__name__ for op in map_input.operators)
            cols = ",".join(map_input.hints.columns) if map_input.hints.columns else "*"
            lines.append(f"    in[{map_input.tag}] {map_input.location} cols({cols}): {ops}")
        if job.reduce_operators:
            ops = ", ".join(type(op).__name__ for op in job.reduce_operators)
            lines.append(f"    reduce: {ops}")
        for broadcast in job.broadcasts:
            lines.append(f"    broadcast: {broadcast.location}")
    return "\n".join(lines)
