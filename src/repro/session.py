"""The public session API: :func:`connect` and :class:`Session`.

A :class:`Session` is a Hive driver bound to a registry-resolved engine
with context-manager lifecycle::

    import repro

    with repro.connect(engine="datampi") as session:
        session.execute("CREATE TABLE t (k int, v string)")
        result = session.query("SELECT v, count(*) FROM t GROUP BY v")
        for row in result:
            print(row)
        result.trace  # the query's span tree (repro.obs.Span)

Engines are looked up in :mod:`repro.engines`' registry, so anything
registered with ``repro.engines.register(...)`` — including third-party
engines — connects the same way as the built-ins.  Per-engine options
go through ``engine_config``, validated against the engine's declared
:class:`~repro.engines.EngineSpec.options`::

    with repro.connect(engine="llap",
                       engine_config={"cache_mb": 1024}) as session:
        ...
        session.caches()  # live result-/columnar-cache counters
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro import engines as engine_registry
from repro.common.config import Configuration
from repro.common.errors import ExecutionError
from repro.core.driver import Driver, make_warehouse
from repro.engines.base import Engine
from repro.simulate.cluster import ClusterSpec
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore

ConfLike = Union[Configuration, Dict[str, object], None]


def _as_configuration(conf: ConfLike) -> Optional[Configuration]:
    if conf is None or isinstance(conf, Configuration):
        return conf
    configuration = Configuration()
    for key, value in conf.items():
        configuration.set(key, value)
    return configuration


class Session(Driver):
    """One Hive session: a Driver with registry lookup, a lifecycle and
    ``with``-statement semantics.

    Everything the Driver exposes (``execute``, ``query``, ``conf``,
    ``hdfs``, ``metastore``, ``engine``) is available here; closing the
    session only refuses further statements — the warehouse it points at
    stays usable by other sessions.
    """

    def __init__(
        self,
        engine: Union[str, Engine] = "datampi",
        num_workers: int = 7,
        conf: ConfLike = None,
        spec: Optional[ClusterSpec] = None,
        hdfs: Optional[HDFS] = None,
        metastore: Optional[Metastore] = None,
        engine_config: Optional[Dict[str, object]] = None,
    ):
        if hdfs is None:
            hdfs = HDFS(num_workers=num_workers)
        if metastore is None:
            metastore = Metastore(hdfs)
        configuration = _as_configuration(conf) or Configuration()
        if engine_config:
            # typed per-engine namespace: option names are validated and
            # coerced against the registry spec's declared options, then
            # land on their full repro.* keys in the session conf
            name = engine if isinstance(engine, str) else engine.name
            engine_spec = engine_registry.get_spec(name)
            for key, value in engine_spec.validate_config(engine_config).items():
                configuration.set(key, value)
        if isinstance(engine, str):
            spec = spec or ClusterSpec(num_nodes=hdfs.num_workers + 1)
            engine = engine_registry.create(engine, hdfs, spec=spec)
        super().__init__(hdfs, metastore, engine, conf=configuration)
        self._closed = False
        self._scheduler = None

    # -- lifecycle ----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def engine_name(self) -> str:
        return self.engine.name

    def close(self) -> None:
        """Refuse further statements (idempotent)."""
        self._closed = True
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def execute(self, sql: str, with_metrics: bool = False):
        if self._closed:
            raise ExecutionError("session is closed")
        return super().execute(sql, with_metrics=with_metrics)

    # -- cache introspection -------------------------------------------------
    def caches(self) -> Dict[str, object]:
        """Live counters for the session's caches.

        ``"result"`` — the driver result cache's hit/miss/eviction/
        invalidation counters (``None`` when the engine doesn't support
        it or it is disabled); ``"columnar"`` — per-node decoded-stripe
        cache counters from the engine (empty for engines without a
        persistent data cache).
        """
        result_cache = self.result_cache()
        return {
            "result": result_cache.stats() if result_cache is not None else None,
            "columnar": self.engine.cache_stats(),
        }

    # -- statistics introspection --------------------------------------------
    def stats(self, table: Optional[str] = None) -> Dict[str, object]:
        """Collected table statistics (see docs/optimizer.md).

        With *table*: that table's stats summary plus per-column
        summaries (NDV estimate, null count, min/max, top heavy
        hitters), or ``None`` values when no fresh stats exist.  Without
        arguments: ``{table_name: summary}`` for every table whose
        recorded stats are still fresh (stale entries are omitted —
        the optimizer would not use them either).
        """
        if table is not None:
            stats = self.metastore.get_table_stats(table)
            if stats is None:
                return {"table": table.lower(), "stats": None}
            summary = stats.summary()
            summary["columns"] = {
                name: column.summary()
                for name, column in sorted(stats.columns.items())
            }
            return summary
        out: Dict[str, object] = {}
        for name in self.metastore.stats_tables():
            stats = self.metastore.get_table_stats(name)
            if stats is not None:
                out[name] = stats.summary()
        return out

    # -- concurrent submission (repro.sched) --------------------------------
    @property
    def scheduler(self):
        """The session's lazily-built workload scheduler, configured from
        the ``repro.sched.*`` keys (policy, pools, caps)."""
        if self._closed:
            raise ExecutionError("session is closed")
        if self._scheduler is None:
            from repro.sched.scheduler import scheduler_from_conf

            self._scheduler = scheduler_from_conf(self)
        return self._scheduler

    def submit(self, sql: str, pool: Optional[str] = None,
               deadline: Optional[float] = None,
               retry_budget: Optional[int] = None):
        """Queue a script on the shared simulated cluster and return a
        :class:`repro.sched.QueryHandle`; non-blocking in simulated time
        (``handle.result()`` drains the simulation).  Concurrent submits
        interleave on the same cluster under the configured policy.

        *deadline* bounds the query in simulated seconds from submission
        (default ``repro.query.deadline``; unset = unbounded): past it
        the work is cancelled, its slots freed, and ``handle.result()``
        raises :class:`~repro.common.errors.QueryTimeoutError`.
        *retry_budget* overrides ``repro.retry.max`` for this query.
        """
        if self._closed:
            raise ExecutionError("session is closed")
        return self.scheduler.submit(sql, pool=pool, deadline=deadline,
                                     retry_budget=retry_budget)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Session(engine={self.engine.name!r}, {state})"


def connect(
    engine: Union[str, Engine] = "datampi",
    num_workers: int = 7,
    conf: ConfLike = None,
    spec: Optional[ClusterSpec] = None,
    hdfs: Optional[HDFS] = None,
    metastore: Optional[Metastore] = None,
    engine_config: Optional[Dict[str, object]] = None,
) -> Session:
    """Open a :class:`Session` on a registered engine.

    *engine* is a registry name/alias (``"datampi"``/``"dm"``,
    ``"hadoop"``/``"mr"``, ``"llap"``, ``"local"``, or anything added
    via ``repro.engines.register``) or an already-built :class:`Engine`.
    Pass an existing *hdfs*/*metastore* pair to share one warehouse
    between sessions (e.g. to run the same tables on both engines);
    *conf* accepts a :class:`Configuration` or a plain dict.

    *engine_config* is the engine's typed option namespace (e.g.
    ``{"cache_mb": 1024}`` for llap): names and value types are checked
    against the engine's declared options and a
    :class:`~repro.common.errors.EngineConfigError` names the offending
    key on a mismatch.
    """
    return Session(
        engine=engine,
        num_workers=num_workers,
        conf=conf,
        spec=spec,
        hdfs=hdfs,
        metastore=metastore,
        engine_config=engine_config,
    )


__all__ = ["Session", "connect", "make_warehouse"]
