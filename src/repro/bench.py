"""Shared harness for the paper-reproduction benchmarks.

Each ``benchmarks/bench_*.py`` regenerates one table/figure by calling
into this module: dataset builders at laptop-scale sampling, script
runners that execute on a named engine, and breakdown collectors.

Simulated seconds (the numbers compared against the paper) are entirely
decoupled from wall-clock: the same benchmark runs in seconds on a
laptop while modeling the paper's 5-40 GB datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import connect
from repro.common.config import Configuration
from repro.core.driver import Driver, QueryResult
from repro.reporting.breakdown import QueryBreakdown, breakdown_query
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore
from repro.workloads.hibench import hibench_ddl, load_hibench
from repro.workloads.tpch import load_tpch


@dataclass
class ScriptRun:
    """One script executed on one engine."""

    engine: str
    results: List[QueryResult]
    breakdown: QueryBreakdown
    metrics: List[object] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        return sum(result.simulated_seconds for result in self.results)


def fresh_hibench(
    nominal_gb: float,
    sample_uservisits: int = 16000,
    format_name: str = "sequence",
    num_workers: int = 7,
    seed: int = 1425,
) -> Tuple[HDFS, Metastore]:
    """A new warehouse holding the HiBench tables at *nominal_gb*."""
    hdfs = HDFS(num_workers=num_workers)
    metastore = Metastore(hdfs)
    load_hibench(
        hdfs, metastore, nominal_gb,
        sample_uservisits=sample_uservisits, format_name=format_name, seed=seed,
    )
    return hdfs, metastore


def fresh_tpch(
    sf: float,
    lineitem_sample: int = 6000,
    format_name: str = "text",
    num_workers: int = 7,
    seed: int = 19920101,
) -> Tuple[HDFS, Metastore]:
    """A new warehouse holding TPC-H at scale factor *sf*."""
    hdfs = HDFS(num_workers=num_workers)
    metastore = Metastore(hdfs)
    load_tpch(
        hdfs, metastore, sf,
        lineitem_sample=lineitem_sample, format_name=format_name, seed=seed,
    )
    return hdfs, metastore


@dataclass
class PerfWorkload:
    """One wall-clock perf workload (see ``benchmarks/bench_perf.py``).

    ``check_sql`` is an untimed probe executed after each timed pass:
    workloads whose script is an INSERT (and therefore returns no rows)
    point it at the output table so the result digest hashes the rows
    the query actually produced instead of the empty string.
    """

    name: str
    engine: str
    build_warehouse: object  # () -> (HDFS, Metastore), untimed
    setup_sql: str
    script: str
    check_sql: str = ""


def perf_workloads(smoke: bool = False) -> List[PerfWorkload]:
    """The wall-clock perf suite: a TPC-H subset plus HiBench A/J.

    ``smoke`` shrinks the datasets and drops the slow workloads so CI
    can run the suite as a regression gate in seconds.  The ORC variants
    (``*_orc``) and the join-heavy Q12 exist to measure the vectorized
    stripe→batch scan path and the vectorized map join.
    """
    from repro.workloads.hibench import HIBENCH_AGGREGATE, HIBENCH_JOIN
    from repro.workloads.tpch import tpch_query

    sf = 0.5 if smoke else 2.0
    lineitem = 8000 if smoke else 40000
    uservisits = 8000 if smoke else 60000

    def tpch():
        return fresh_tpch(sf, lineitem_sample=lineitem)

    def tpch_orc():
        return fresh_tpch(sf, lineitem_sample=lineitem, format_name="orc")

    def hibench():
        return fresh_hibench(1.0, sample_uservisits=uservisits)

    workloads = [
        PerfWorkload("tpch_q1", "datampi", tpch, "", tpch_query(1, sf)),
        PerfWorkload("tpch_q6", "datampi", tpch, "", tpch_query(6, sf)),
        PerfWorkload(
            "tpch_q6_orc", "datampi", tpch_orc, "", tpch_query(6, sf)
        ),
        PerfWorkload(
            "hibench_aggregate", "hadoop", hibench, hibench_ddl(),
            HIBENCH_AGGREGATE,
            check_sql="SELECT * FROM uservisits_aggre;",
        ),
    ]
    if not smoke:
        workloads += [
            PerfWorkload("tpch_q3", "datampi", tpch, "", tpch_query(3, sf)),
            PerfWorkload("tpch_q12", "datampi", tpch, "", tpch_query(12, sf)),
            PerfWorkload(
                "tpch_q1_orc", "datampi", tpch_orc, "", tpch_query(1, sf)
            ),
            PerfWorkload(
                "hibench_join", "datampi", hibench, hibench_ddl(),
                HIBENCH_JOIN,
                check_sql="SELECT * FROM rankings_uservisits_join;",
            ),
        ]
    return workloads


def run_script(
    engine: str,
    hdfs: HDFS,
    metastore: Metastore,
    script: str,
    label: str = "query",
    conf: Optional[Dict[str, object]] = None,
    with_metrics: bool = False,
) -> ScriptRun:
    """Execute *script* on *engine*; returns results + breakdown."""
    configuration = Configuration()
    for key, value in (conf or {}).items():
        configuration.set(key, value)
    driver: Driver = connect(
        engine=engine, hdfs=hdfs, metastore=metastore, conf=configuration
    )
    results = driver.execute(script, with_metrics=with_metrics)
    metrics: List[object] = []
    for result in results:
        if result.execution is not None:
            metrics.extend(result.execution.metrics)
    return ScriptRun(
        engine=engine,
        results=results,
        breakdown=breakdown_query(label, results),
        metrics=metrics,
    )


def run_hibench_query(
    engine: str,
    hdfs: HDFS,
    metastore: Metastore,
    which: str,
    conf: Optional[Dict[str, object]] = None,
) -> ScriptRun:
    """Run HiBench AGGREGATE or JOIN (with output-table DDL) on *engine*.

    DDL time (table creation) is excluded from the breakdown, matching
    HiBench's timing of only the INSERT query.
    """
    from repro.workloads.hibench import HIBENCH_AGGREGATE, HIBENCH_JOIN

    query = {"aggregate": HIBENCH_AGGREGATE, "join": HIBENCH_JOIN}[which.lower()]
    run_script(engine, hdfs, metastore, hibench_ddl(), label="ddl", conf=conf)
    return run_script(
        engine, hdfs, metastore, query, label=f"hibench-{which}", conf=conf
    )


def improvement_percent(baseline: float, contender: float) -> float:
    """The paper's improvement metric: how much faster the contender is."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - contender) / baseline
