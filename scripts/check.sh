#!/usr/bin/env bash
# Repo health gate: lint (when ruff is installed) + the tier-1 test suite.
# Usage: scripts/check.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests
else
    echo "== ruff not installed; skipping lint (pip install ruff to enable) =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q "$@"

echo "== perf smoke (wall-clock guard) =="
# Small-dataset run of the perf harness doubling as a regression gate:
# the smoke suite finishes well under a second on a laptop, so a 60 s
# ceiling only trips on order-of-magnitude regressions (or hangs), never
# on shared-runner noise.  Writes to a scratch path so the checked-in
# BENCH_perf.json (full-mode numbers) is not clobbered.
python benchmarks/bench_perf.py --smoke --guard-seconds 60 \
    --output "$(mktemp -d)/BENCH_perf_smoke.json"

echo "== parallel smoke (2-worker pool, digest + simulated-time parity) =="
# The same smoke suite with map compute dispatched to a 2-worker pool.
# The harness itself asserts pool runs hash identically to inline runs
# on every workload, so this catches any divergence the pool could
# introduce; tests/test_parallel.py (tier-1, above) covers the full
# engine x mode x format x pool-size matrix.  No wall-clock guard: on a
# 1-core runner the pool measures IPC overhead, not speedup.
python benchmarks/bench_perf.py --smoke --parallel 2 \
    --output "$(mktemp -d)/BENCH_perf_parallel_smoke.json"

echo "== concurrency smoke (scheduler policies, shared cluster) =="
# Small mixed workload under every scheduling policy on both engines;
# cross-checks rows against solo runs and fails if fair-share does not
# beat FIFO ad-hoc latency.  The tier-1 run above already covers the
# deterministic-concurrency and differential-oracle suites
# (tests/test_scheduler.py, tests/test_differential_oracle.py).
python benchmarks/bench_concurrency.py --smoke \
    --output "$(mktemp -d)/BENCH_concurrency_smoke.json"

echo "== llap smoke (persistent daemons + caches, oracle-checked) =="
# Repeated-query workload on all engines: every row cross-checked
# against the local oracle, and the run fails unless warm llap beats
# both baselines >=3x, warm fragment dispatch undercuts hadoop's
# per-job startup, and re-scans hit the decoded-stripe cache.  The
# wall-clock guard only trips on order-of-magnitude regressions.
python benchmarks/bench_llap.py --smoke --guard-seconds 60 \
    --output "$(mktemp -d)/BENCH_llap_smoke.json"

echo "== chaos smoke (seeded fault schedules, four invariants) =="
# A couple of randomized-but-seeded fault + membership schedules per
# engine, each asserting the four chaos invariants (oracle-identical
# rows, balanced lease ledger, cache coherence, no stuck query).  The
# wall-clock guard only trips on order-of-magnitude regressions.
python benchmarks/bench_chaos.py --smoke --guard-seconds 120 \
    --output "$(mktemp -d)/BENCH_chaos_smoke.json"

echo "== serving smoke (open-loop traffic, SLO metrics per policy) =="
# Seeded bursty arrivals (Zipf-skewed query mix, sessions over pools)
# replayed under every admission policy on a small llap cluster; fails
# unless every policy reports latency percentiles and at least one
# query completes.  The wall-clock guard only trips on order-of-
# magnitude kernel regressions (or a stuck scheduler).
python benchmarks/bench_serving.py --smoke --guard-seconds 60 \
    --output "$(mktemp -d)/BENCH_serving_smoke.json"

echo "== skew smoke (stats-driven split shuffle, oracle-checked) =="
# One Zipf-1.6 join per engine with splitting on and off: rows must be
# byte-identical to the local oracle both ways, and at least two
# engines must collapse the hot reducer's byte share >=2x.  The
# wall-clock guard only trips on order-of-magnitude regressions.
python benchmarks/bench_skew.py --smoke --guard-seconds 60 \
    --output "$(mktemp -d)/BENCH_skew_smoke.json"

if [[ "${CHECK_CHAOS_FULL:-0}" == "1" ]]; then
    echo "== chaos full (>=25 schedules + replay determinism) =="
    # Full sweep (9 seeds x 3 engines plus a replay pass per engine)
    # writing the committed availability/recovery report to
    # results/BENCH_chaos.json.  Opt-in because it takes a while; run it
    # before committing fault-, membership- or scheduler-sensitive
    # changes.
    python benchmarks/bench_chaos.py
fi

if [[ "${CHECK_LLAP_FULL:-0}" == "1" ]]; then
    echo "== llap full (warm/cold + cache economics report) =="
    # Full-size repeated workload writing the committed report to
    # results/BENCH_llap.json.  Opt-in because it takes a while; run it
    # before committing llap- or cache-sensitive changes.
    python benchmarks/bench_llap.py
fi

if [[ "${CHECK_CONCURRENCY_FULL:-0}" == "1" ]]; then
    echo "== concurrency full (policy comparison report) =="
    # Full-size workload (more queries, bigger warehouse) writing the
    # policy comparison to results/.  Opt-in because it takes a while;
    # run it before committing scheduler- or lease-sensitive changes.
    python benchmarks/bench_concurrency.py
fi

if [[ "${CHECK_SERVING_FULL:-0}" == "1" ]]; then
    echo "== serving full (>=10k queries on a 101-node cluster + soak) =="
    # Full traffic run (3 policies x 4000 queries, 2000 sessions)
    # writing the committed SLO report to results/BENCH_serving.json,
    # plus the long-run soak test (liveness, clean ledger, stable RSS
    # across thousands of queries with deadlines and cancellations).
    # Opt-in because it takes a while; run it before committing kernel-,
    # scheduler- or lease-sensitive changes.
    python benchmarks/bench_serving.py --guard-seconds 600
    CHECK_SERVING_FULL=1 PYTHONPATH=src python -m pytest \
        tests/test_serving.py::TestServingSoak -q
fi

if [[ "${CHECK_PARALLEL_FULL:-0}" == "1" ]]; then
    echo "== parallel full (4-worker pool vs inline, speedup gate) =="
    # Full-dataset run with a 4-worker pool: every workload's pool
    # digest must match its inline digest (asserted by the harness),
    # and on a host with >=4 cores the aggregate speedup must reach
    # 2x.  On smaller hosts the run still checks correctness but the
    # speedup gate disarms — a 1-core box can only measure overhead.
    python benchmarks/bench_perf.py --parallel 4 \
        --output /tmp/BENCH_perf_parallel_full.json
    python - <<'PY'
import json, os, sys
report = json.load(open("/tmp/BENCH_perf_parallel_full.json"))
inline = sum(w["wall_seconds"] for w in report["workloads"])
pooled = sum(w["parallel_wall_seconds"] for w in report["workloads"])
speedup = inline / pooled if pooled else 0.0
print(f"aggregate pool speedup: {speedup:.2f}x over {len(report['workloads'])} workloads")
if (os.cpu_count() or 1) >= 4 and speedup < 2.0:
    sys.exit(f"PARALLEL REGRESSION: aggregate speedup {speedup:.2f}x < 2.0x "
             f"with 4 workers on a {os.cpu_count()}-core host")
PY
fi

if [[ "${CHECK_SKEW_FULL:-0}" == "1" ]]; then
    echo "== skew full (3 skew factors x 3 engines, committed report) =="
    # Full sweep over Zipf 0.8/1.2/1.6 writing the committed tail-
    # reduction report to results/BENCH_skew.json.  Opt-in because it
    # takes a while; run it before committing optimizer-, stats- or
    # shuffle-sensitive changes.
    python benchmarks/bench_skew.py
fi

if [[ "${CHECK_PERF_FULL:-0}" == "1" ]]; then
    echo "== perf full (compare vs committed baseline) =="
    # Full-dataset run compared against the checked-in BENCH_perf.json:
    # fails on >25 % total wall-clock regression over the workloads the
    # two files share.  Opt-in (CHECK_PERF_FULL=1) because the full
    # suite takes a few seconds and shared runners are noisy; run it
    # before committing any perf-sensitive change.
    python benchmarks/bench_perf.py --compare BENCH_perf.json \
        --output "$(mktemp -d)/BENCH_perf_full.json"
fi
