"""Execution engines + the engine registry.

* :mod:`repro.engines.base` — engine interface, shared functional job
  machinery (splits, broadcasts, reducer policy, output writing) and the
  timing record model every benchmark consumes.
* :mod:`repro.engines.local` — in-process reference executor (no cluster
  simulation); the correctness oracle for both real engines.
* :mod:`repro.engines.hadoop` — simulated Hadoop 1.x MapReduce engine.
* :mod:`repro.engines.datampi` — the paper's contribution: the DataMPI
  engine with bipartite O/A communicators and the optimized shuffle.

The registry is the public extension point: third-party engines plug in
with ``repro.engines.register("mine", MyEngine)`` and become reachable
through ``repro.connect(engine="mine")`` and the CLI, exactly like the
built-ins.  A factory is either an :class:`Engine` subclass or any
callable accepting ``(hdfs, spec=...)`` — factories without a ``spec``
parameter (like :class:`LocalEngine`) are called with ``hdfs`` alone.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Iterable, List, Optional

from repro.engines.base import (
    Engine,
    JobTiming,
    TaskTiming,
    PlanResult,
    decide_num_reducers,
)
from repro.engines.datampi import DataMPIEngine
from repro.engines.hadoop import HadoopEngine
from repro.engines.local import LocalEngine

_REGISTRY: Dict[str, Callable] = {}
_ALIASES: Dict[str, str] = {}


def register(
    name: str,
    factory: Callable,
    aliases: Iterable[str] = (),
    replace: bool = False,
) -> None:
    """Make an engine constructible by name.

    *factory* is an :class:`Engine` subclass or a callable
    ``(hdfs, spec=...) -> Engine``.  *aliases* are alternate lookup
    names (``"dm"`` for ``"datampi"``).  Re-registering an existing
    name requires ``replace=True``.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("engine name must be non-empty")
    if key in _REGISTRY and not replace:
        raise ValueError(
            f"engine {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[key] = factory
    for alias in aliases:
        _ALIASES[alias.strip().lower()] = key


def unregister(name: str) -> None:
    """Remove an engine (and any aliases pointing at it)."""
    key = resolve(name)
    _REGISTRY.pop(key, None)
    for alias in [a for a, target in _ALIASES.items() if target == key]:
        del _ALIASES[alias]


def resolve(name: str) -> str:
    """Canonical registry key for *name* (alias-aware; no existence check)."""
    key = name.strip().lower()
    return _ALIASES.get(key, key)


def available() -> List[str]:
    """Sorted canonical names of every registered engine."""
    return sorted(_REGISTRY)


def create(name: str, hdfs, spec=None, **kwargs) -> Engine:
    """Instantiate the engine registered under *name* (or an alias)."""
    key = resolve(name)
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown engine {name!r} (available: {', '.join(available())})"
        )
    factory = _REGISTRY[key]
    target = factory.__init__ if inspect.isclass(factory) else factory
    parameters = inspect.signature(target).parameters
    takes_spec = "spec" in parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )
    if takes_spec:
        return factory(hdfs, spec=spec, **kwargs)
    return factory(hdfs, **kwargs)


register("datampi", DataMPIEngine, aliases=("dm",))
register("hadoop", HadoopEngine, aliases=("mr",))
register("local", LocalEngine)

__all__ = [
    "Engine",
    "JobTiming",
    "TaskTiming",
    "PlanResult",
    "decide_num_reducers",
    "LocalEngine",
    "HadoopEngine",
    "DataMPIEngine",
    "register",
    "unregister",
    "resolve",
    "available",
    "create",
]
