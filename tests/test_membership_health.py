"""Elastic membership, heartbeat failure detection, query deadlines and
the per-engine circuit breaker."""

import pytest

from repro import connect
from repro.common.config import (
    BREAKER_THRESHOLD,
    FAULT_SPEC,
    HEARTBEAT_ENABLED,
    QUERY_DEADLINE,
)
from repro.common.errors import ConfigError, QueryTimeoutError
from repro.sched.scheduler import EngineBreaker
from repro.simulate.chaos import assert_clean_ledger
from repro.simulate.faults import FaultPlan

from .conftest import build_big_warehouse

QUERY = "SELECT grp, count(*) FROM facts GROUP BY grp"


def _session(engine, **conf):
    hdfs, metastore = build_big_warehouse()
    session = connect(engine=engine, hdfs=hdfs, metastore=metastore)
    for key, value in conf.items():
        session.conf.set(key, value)
    return session


def _kinds(scheduler):
    return [event.kind for event in scheduler.runtime.injector.events]


# -- fault grammar: membership clauses ---------------------------------------

def test_parse_membership_clauses():
    plan = FaultPlan.parse("seed:5; scale-up:w7@30; drain:w3@50")
    assert len(plan.scale_ups) == 1 and plan.scale_ups[0].worker == 7
    assert len(plan.drains) == 1 and plan.drains[0].at == 50.0


def test_membership_clauses_reject_factor_and_window():
    with pytest.raises(ConfigError):
        FaultPlan.parse("scale-up:w7x2@30")
    with pytest.raises(ConfigError):
        FaultPlan.parse("drain:w3@50-80")


def test_overlapping_crash_windows_rejected():
    with pytest.raises(ConfigError, match="overlapping crash windows"):
        FaultPlan.parse("crash:w2@10-50; crash:w2@40-80")


def test_duplicate_open_ended_crash_rejected():
    with pytest.raises(ConfigError, match="overlapping"):
        FaultPlan.parse("crash:w2@10; crash:w2@90")


def test_nonoverlapping_windows_and_distinct_workers_ok():
    plan = FaultPlan.parse("crash:w2@10-20; crash:w2@30-40; crash:w3@15-35")
    assert len(plan.node_crashes) == 3


def test_same_window_different_kinds_ok():
    plan = FaultPlan.parse("slow:w2x3@10-50; disk:w2x0.5@10-50")
    assert len(plan.stragglers) == 1 and len(plan.degradations) == 1


# -- elastic membership -------------------------------------------------------

def test_scale_up_joins_and_query_succeeds():
    session = _session("hadoop")
    session.conf.set(FAULT_SPEC, "scale-up:w7@5")
    try:
        handle = session.submit(QUERY)
        scheduler = session.scheduler
        scheduler.drain()
        assert handle.result().rows
        assert "node-join" in _kinds(scheduler)
        assert len(scheduler.runtime.cluster.workers) == 8
        assert scheduler.runtime.cluster.workers[7].schedulable
    finally:
        session.close()


def test_drain_decommissions_gracefully():
    session = _session("hadoop")
    session.conf.set(FAULT_SPEC, "drain:w3@2")
    try:
        handle = session.submit(QUERY)
        scheduler = session.scheduler
        scheduler.drain()
        assert handle.result().rows
        kinds = _kinds(scheduler)
        assert "drain-start" in kinds
        assert "node-drained" in kinds
        node = scheduler.runtime.cluster.workers[3]
        assert node.alive and node.draining and not node.schedulable
        assert_clean_ledger(scheduler.runtime.leases.ledger)
    finally:
        session.close()


def test_drained_worker_recommissioned_by_scale_up():
    session = _session("llap")
    session.conf.set(FAULT_SPEC, "drain:w2@2; scale-up:w2@40")
    try:
        handle = session.submit(QUERY)
        scheduler = session.scheduler
        scheduler.drain()
        assert handle.result().rows
        assert scheduler.runtime.cluster.workers[2].schedulable
    finally:
        session.close()


# -- heartbeat failure detection ----------------------------------------------

def test_crash_walks_suspect_then_declared_then_rejoin():
    session = _session("hadoop")
    session.conf.set(FAULT_SPEC, "crash:w1@10-60")
    try:
        handle = session.submit(QUERY)
        scheduler = session.scheduler
        scheduler.drain()
        assert handle.result().rows
        kinds = _kinds(scheduler)
        for kind in ("node-crash", "node-suspect", "node-dead-declared",
                     "node-recover", "node-rejoin"):
            assert kind in kinds, kind
        assert kinds.index("node-suspect") < kinds.index("node-dead-declared")
    finally:
        session.close()


def test_straggler_is_suspected_but_never_declared_dead():
    session = _session("hadoop")
    session.conf.set(FAULT_SPEC, "slow:w2x8@2-120")
    try:
        handle = session.submit(QUERY)
        scheduler = session.scheduler
        scheduler.drain()
        assert handle.result().rows
        kinds = _kinds(scheduler)
        assert "node-suspect" in kinds
        assert "suspect-cleared" in kinds
        assert "node-dead-declared" not in kinds
    finally:
        session.close()


def test_heartbeat_disabled_declares_at_crash_instant():
    session = _session("hadoop")
    session.conf.set(FAULT_SPEC, "crash:w1@10-60")
    session.conf.set(HEARTBEAT_ENABLED, "false")
    try:
        handle = session.submit(QUERY)
        scheduler = session.scheduler
        scheduler.drain()
        assert handle.result().rows
        kinds = _kinds(scheduler)
        assert "node-crash" in kinds
        assert "node-suspect" not in kinds
    finally:
        session.close()


# -- query deadlines ----------------------------------------------------------

def test_deadline_miss_raises_and_frees_slots():
    session = _session("hadoop")
    try:
        handle = session.submit(QUERY, deadline=5.0)
        scheduler = session.scheduler
        scheduler.drain()
        assert handle.deadline_missed
        with pytest.raises(QueryTimeoutError, match="deadline"):
            handle.result()
        assert scheduler.summary()["deadline_misses"] == 1
        # cancellation returned every lease the dead query held
        assert_clean_ledger(scheduler.runtime.leases.ledger)
        # and the cluster still serves the next query
        follow_up = session.submit(QUERY)
        scheduler.drain()
        assert follow_up.result().rows
    finally:
        session.close()


def test_generous_deadline_succeeds():
    session = _session("llap")
    try:
        handle = session.submit(QUERY, deadline=10_000.0)
        session.scheduler.drain()
        assert handle.result().rows
        assert not handle.deadline_missed
    finally:
        session.close()


def test_session_conf_deadline_applies_to_submits():
    session = _session("hadoop")
    session.conf.set(QUERY_DEADLINE, 5.0)
    try:
        handle = session.submit(QUERY)
        session.scheduler.drain()
        assert handle.deadline_missed
    finally:
        session.close()


def test_deadline_validation():
    session = _session("hadoop")
    try:
        with pytest.raises(ConfigError):
            session.submit(QUERY, deadline=0.0)
        with pytest.raises(ConfigError):
            session.submit(QUERY, retry_budget=-1)
    finally:
        session.close()


# -- circuit breaker ----------------------------------------------------------

def test_breaker_trips_cools_down_and_half_opens():
    breaker = EngineBreaker(threshold=2, cooldown=30.0)
    assert breaker.allows(0.0)
    assert not breaker.record_failure(1.0)
    assert breaker.record_failure(2.0)  # second consecutive failure trips
    assert breaker.trips == 1
    assert not breaker.allows(10.0)  # still cooling down
    assert breaker.allows(32.0)  # one half-open probe
    assert not breaker.allows(33.0)  # only one until the probe reports
    breaker.record_success()
    assert breaker.allows(34.0)  # closed again


def test_breaker_reopens_when_probe_fails():
    breaker = EngineBreaker(threshold=1, cooldown=10.0)
    assert breaker.record_failure(0.0)
    assert breaker.allows(11.0)  # the probe
    assert breaker.record_failure(11.5)  # probe failed: re-trip
    assert breaker.trips == 2
    assert not breaker.allows(12.0)


def test_open_breaker_degrades_to_fallback_engine():
    session = _session("llap")
    session.conf.set(BREAKER_THRESHOLD, 1)
    try:
        scheduler = session.scheduler
        now = scheduler.runtime.sim.now
        scheduler._breaker("llap").record_failure(now)  # trip it by hand
        handle = session.submit(QUERY)
        scheduler.drain()
        result = handle.result()
        assert result.rows
        # llap declares degrades_to=("hadoop", ...): the query ran there
        assert result.fallback_engine == "hadoop"
        assert any(event[1] == "breaker-degrade" for event in scheduler.events)
    finally:
        session.close()


def test_breaker_disabled_by_default():
    session = _session("llap")
    try:
        scheduler = session.scheduler
        scheduler._breaker("llap").record_failure(0.0)
        handle = session.submit(QUERY)
        scheduler.drain()
        assert handle.result().fallback_engine is None
    finally:
        session.close()


# -- result-cache hits report clean fault metadata ----------------------------

def test_cache_hit_reports_no_fault_fields():
    session = _session("llap")
    try:
        first = session.query(QUERY)
        assert not first.cache_hit
        second = session.query(QUERY)
        assert second.cache_hit
        assert second.rows == first.rows
        assert second.execution is None
        assert second.attempts == 0
        assert second.restarts == 0
        assert second.fault_events == []
        assert second.fallback_engine is None
    finally:
        session.close()


def test_cache_hit_under_faults_still_reports_clean():
    session = _session("llap")
    session.conf.set(FAULT_SPEC, "slow:w1x2@0-1000")
    try:
        first = session.query(QUERY)
        assert first.fault_events  # the real run saw the straggler
        second = session.query(QUERY)
        assert second.cache_hit
        assert second.fault_events == []
        assert second.attempts == 0
    finally:
        session.close()
