"""Tests for builtin scalar functions and aggregates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SemanticError
from repro.common.rows import DataType
from repro.sql.functions import (
    AGGREGATES,
    date_add_days,
    date_add_months,
    get_aggregate,
    get_scalar,
    is_aggregate,
    is_scalar,
)


class TestDateArithmetic:
    def test_add_days_simple(self):
        assert date_add_days("1998-12-01", -90) == "1998-09-02"  # TPC-H Q1

    def test_add_days_across_year(self):
        assert date_add_days("1998-12-31", 1) == "1999-01-01"

    def test_leap_year(self):
        assert date_add_days("1996-02-28", 1) == "1996-02-29"
        assert date_add_days("1995-02-28", 1) == "1995-03-01"

    def test_century_non_leap(self):
        assert date_add_days("1900-02-28", 1) == "1900-03-01"

    def test_add_months_clamps_day(self):
        assert date_add_months("1995-01-31", 1) == "1995-02-28"

    def test_add_months_year_rollover(self):
        assert date_add_months("1995-11-15", 3) == "1996-02-15"

    def test_negative_months(self):
        assert date_add_months("1995-03-31", -1) == "1995-02-28"

    def test_null_propagation(self):
        assert date_add_days(None, 1) is None
        assert date_add_months("1995-01-01", None) is None

    @settings(max_examples=100)
    @given(
        days=st.integers(min_value=-2000, max_value=2000),
        base_days=st.integers(min_value=0, max_value=3000),
    )
    def test_property_add_days_invertible(self, days, base_days):
        base = date_add_days("1992-01-01", base_days)
        assert date_add_days(date_add_days(base, days), -days) == base

    @settings(max_examples=100)
    @given(days=st.integers(min_value=1, max_value=4000))
    def test_property_dates_ordered_lexically(self, days):
        earlier = date_add_days("1992-01-01", days - 1)
        later = date_add_days("1992-01-01", days)
        assert earlier < later  # ISO strings compare like dates


class TestScalars:
    def test_year_month(self):
        assert get_scalar("year").impl("1995-06-17") == 1995
        assert get_scalar("month").impl("1995-06-17") == 6

    def test_substr_one_based(self):
        substr = get_scalar("substr").impl
        assert substr("hello", 1, 2) == "he"
        assert substr("hello", 3) == "llo"
        assert substr("13-555", 1, 2) == "13"  # TPC-H Q22 pattern

    def test_substr_negative_start(self):
        assert get_scalar("substr").impl("hello", -3) == "llo"

    def test_concat(self):
        assert get_scalar("concat").impl("a", 1, "b") == "a1b"
        assert get_scalar("concat").impl("a", None) is None

    def test_round(self):
        impl = get_scalar("round").impl
        assert impl(2.567, 2) == pytest.approx(2.57)
        assert impl(2.4) == 2.0

    def test_if_coalesce(self):
        assert get_scalar("if").impl(True, "a", "b") == "a"
        assert get_scalar("coalesce").impl(None, None, 3) == 3

    def test_case_insensitive_lookup(self):
        assert get_scalar("YEAR").name == "year"

    def test_unknown_scalar(self):
        with pytest.raises(SemanticError):
            get_scalar("frobnicate")
        assert not is_scalar("frobnicate")

    def test_return_type_rules(self):
        assert get_scalar("year").infer_type([DataType.DATE]) is DataType.INT
        assert get_scalar("abs").infer_type([DataType.DOUBLE]) is DataType.DOUBLE
        assert get_scalar("if").infer_type(
            [DataType.BOOLEAN, DataType.BIGINT, DataType.BIGINT]
        ) is DataType.BIGINT


class TestAggregates:
    def run_aggregate(self, name, values, distinct=False):
        aggregate = get_aggregate(name, distinct)
        acc = aggregate.create()
        for value in values:
            acc = aggregate.update(acc, value)
        return aggregate, acc

    def test_count_skips_nulls(self):
        aggregate, acc = self.run_aggregate("count", [1, None, 2, None, 3])
        assert aggregate.result(acc) == 3

    def test_sum(self):
        aggregate, acc = self.run_aggregate("sum", [1, 2, None, 4])
        assert aggregate.result(acc) == 7

    def test_sum_all_null(self):
        aggregate, acc = self.run_aggregate("sum", [None, None])
        assert aggregate.result(acc) is None

    def test_avg(self):
        aggregate, acc = self.run_aggregate("avg", [2.0, 4.0, None])
        assert aggregate.result(acc) == pytest.approx(3.0)

    def test_avg_empty_is_null(self):
        aggregate, acc = self.run_aggregate("avg", [])
        assert aggregate.result(acc) is None

    def test_min_max(self):
        aggregate, acc = self.run_aggregate("min", [5, None, 2, 9])
        assert aggregate.result(acc) == 2
        aggregate, acc = self.run_aggregate("max", ["a", "z", None])
        assert aggregate.result(acc) == "z"

    def test_count_distinct(self):
        aggregate, acc = self.run_aggregate("count", [1, 1, 2, None, 2], distinct=True)
        assert aggregate.result(acc) == 2

    def test_count_distinct_partial_forbidden(self):
        aggregate = get_aggregate("count", distinct=True)
        with pytest.raises(SemanticError):
            aggregate.partial(aggregate.create())

    def test_sum_distinct_unsupported(self):
        with pytest.raises(SemanticError):
            get_aggregate("sum", distinct=True)

    def test_result_types(self):
        assert get_aggregate("count").result_type(None) is DataType.BIGINT
        assert get_aggregate("sum").result_type(DataType.INT) is DataType.BIGINT
        assert get_aggregate("sum").result_type(DataType.DOUBLE) is DataType.DOUBLE
        assert get_aggregate("avg").result_type(DataType.INT) is DataType.DOUBLE
        assert get_aggregate("min").result_type(DataType.STRING) is DataType.STRING

    def test_is_aggregate(self):
        assert is_aggregate("SUM") and is_aggregate("count")
        assert not is_aggregate("substr")

    @settings(max_examples=60)
    @given(
        values=st.lists(
            st.one_of(st.none(), st.integers(min_value=-1000, max_value=1000)),
            max_size=40,
        ),
        split=st.integers(min_value=0, max_value=40),
    )
    def test_property_partial_merge_equals_direct(self, values, split):
        """map-side partial + reduce-side merge == single-pass update,
        for every (non-distinct) aggregate."""
        split = min(split, len(values))
        left, right = values[:split], values[split:]
        for name in ("count", "sum", "avg", "min", "max"):
            aggregate = AGGREGATES[name]
            direct = aggregate.create()
            for value in values:
                direct = aggregate.update(direct, value)

            acc_left = aggregate.create()
            for value in left:
                acc_left = aggregate.update(acc_left, value)
            acc_right = aggregate.create()
            for value in right:
                acc_right = aggregate.update(acc_right, value)
            merged = aggregate.merge(
                aggregate.merge(aggregate.create(), aggregate.partial(acc_left)),
                aggregate.partial(acc_right),
            )
            assert aggregate.result(merged) == aggregate.result(direct)
