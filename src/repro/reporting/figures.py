"""Text/CSV renderers used by the benchmark harness.

Every benchmark prints a paper-shaped table to stdout and (optionally)
writes the raw series as CSV under ``results/`` so the numbers can be
re-plotted.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional, Sequence


def format_series_table(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    unit: str = "sec",
) -> str:
    """Render one-line-per-x table with one column per series."""
    names = list(series)
    width = max(10, max((len(n) for n in names), default=10) + 2)
    header = f"{x_label:<14}" + "".join(f"{name:>{width}}" for name in names)
    lines = [f"== {title} ({unit}) ==", header, "-" * len(header)]
    for index, x in enumerate(x_values):
        row = f"{str(x):<14}"
        for name in names:
            values = series[name]
            value = values[index] if index < len(values) else float("nan")
            row += f"{value:>{width}.2f}"
        lines.append(row)
    return "\n".join(lines)


def format_comparison_table(
    title: str,
    row_labels: Sequence[str],
    columns: Dict[str, Sequence[float]],
    improvement_of: Optional[tuple] = None,
) -> str:
    """Render rows x columns; optionally append an improvement column
    ``(baseline_name, contender_name)`` as the paper reports (% faster)."""
    names = list(columns)
    width = max(11, max((len(n) for n in names), default=11) + 2)
    header = f"{'case':<22}" + "".join(f"{name:>{width}}" for name in names)
    if improvement_of:
        header += f"{'improve%':>10}"
    lines = [f"== {title} ==", header, "-" * len(header)]
    for index, label in enumerate(row_labels):
        row = f"{label:<22}"
        for name in names:
            values = columns[name]
            value = values[index] if index < len(values) else float("nan")
            row += f"{value:>{width}.2f}"
        if improvement_of:
            base_name, new_name = improvement_of
            base = columns[base_name][index]
            new = columns[new_name][index]
            improvement = 100.0 * (base - new) / base if base else 0.0
            row += f"{improvement:>10.1f}"
        lines.append(row)
    if improvement_of:
        base_name, new_name = improvement_of
        bases = columns[base_name][: len(row_labels)]
        news = columns[new_name][: len(row_labels)]
        pct = [100.0 * (b - n) / b for b, n in zip(bases, news) if b]
        if pct:
            lines.append(
                f"{'average improvement':<22}" + " " * (width * len(names))
                + f"{sum(pct) / len(pct):>10.1f}"
            )
    return "\n".join(lines)


def ascii_bar_chart(
    title: str, labels: Sequence[str], values: Sequence[float], width: int = 50
) -> str:
    """Quick horizontal bar chart for time-series-free figures."""
    peak = max(values) if values else 1.0
    lines = [f"== {title} =="]
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(width * value / peak)) if peak > 0 else ""
        lines.append(f"{label:<20} {value:>10.2f} |{bar}")
    return "\n".join(lines)


def write_csv(path: str, header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Write rows under ``results/`` (created if missing); returns path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path
