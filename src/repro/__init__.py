"""repro — Hive on DataMPI, reproduced.

A from-scratch Python reproduction of *"Accelerating Apache Hive with
MPI for Data Warehouse Systems"* (ICDCS 2015): a HiveQL compiler, a
simulated HDFS with Text/Sequence/ORC formats, a Hadoop-MapReduce
execution engine and the paper's DataMPI engine, all running real
relational workloads (Intel HiBench, TPC-H) on a discrete-event cluster
simulator calibrated to the paper's 8-node GigE testbed.

Quick start::

    import repro

    with repro.connect(engine="datampi") as session:
        session.execute("CREATE TABLE t (k int, v string)")
        result = session.query("SELECT count(*) FROM t")
        result.fetchall()
        result.trace      # cross-layer span tree (simulated seconds)

Engines are resolved through the registry in :mod:`repro.engines`;
``repro.engines.register("mine", MyEngine)`` makes a third-party engine
connectable by name.  Query traces export to Chrome-trace JSON via
:mod:`repro.obs`.  See README.md for the full tour, DESIGN.md for the
architecture and docs/observability.md for tracing.
"""

from repro.common.config import Configuration
from repro.core.driver import Driver, QueryResult, make_warehouse
from repro.engines import EngineCapabilities, EngineSpec, capabilities
from repro.engines.datampi import DataMPIEngine
from repro.engines.hadoop import HadoopEngine
from repro.engines.llap import LlapEngine
from repro.engines.local import LocalEngine
from repro.obs import MetricsRegistry, Span, Tracer, get_metrics
from repro.sched import Pool, QueryHandle, WorkloadScheduler
from repro.session import Session, connect
from repro.simulate.cluster import ClusterSpec
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore

__version__ = "1.2.0"

__all__ = [
    "connect",
    "Session",
    "make_warehouse",
    "Driver",
    "QueryResult",
    "Configuration",
    "HDFS",
    "Metastore",
    "ClusterSpec",
    "HadoopEngine",
    "DataMPIEngine",
    "LlapEngine",
    "LocalEngine",
    "EngineCapabilities",
    "EngineSpec",
    "capabilities",
    "WorkloadScheduler",
    "QueryHandle",
    "Pool",
    "Span",
    "Tracer",
    "MetricsRegistry",
    "get_metrics",
    "__version__",
]
