"""Tests for the map-side runtime operators and reduce logics."""

import functools

import pytest

from repro.common.errors import ExecutionError
from repro.common.kv import KeyValue
from repro.common.rows import DataType
from repro.exec.expressions import Const, InputRef
from repro.exec import expressions as bexpr
from repro.exec.mapper import ExecMapper, ExecReducer
from repro.exec.operators import (
    FileSinkDesc,
    FilterDesc,
    LimitDesc,
    ListCollector,
    MapGroupByDesc,
    MapJoinDesc,
    ReduceSinkDesc,
    SelectDesc,
    build_pipeline,
    OperatorContext,
)
from repro.exec.reduce import (
    ReduceAggregateDesc,
    ReduceDistinctDesc,
    ReduceJoinDesc,
    ReduceSortDesc,
    group_sorted_pairs,
    key_comparator,
    merge_sorted_runs,
    sort_pairs,
)
from repro.sql.functions import AGGREGATES


def ref(i, dtype=DataType.BIGINT):
    return InputRef(i, dtype)


class TestMapPipeline:
    def test_filter_select_filesink(self):
        mapper = ExecMapper(
            [
                FilterDesc(bexpr.Comparison(">", ref(0), Const(1, DataType.BIGINT))),
                SelectDesc([ref(1), ref(0)]),
                FileSinkDesc(),
            ],
            collector=None,
            num_partitions=1,
        )
        mapper.process_batch([(1, "a"), (2, "b"), (3, "c")])
        result = mapper.close()
        assert result.output_rows == [("b", 2), ("c", 3)]
        assert result.rows_read == 3

    def test_filter_drops_null_predicate(self):
        mapper = ExecMapper(
            [FilterDesc(bexpr.Comparison("=", ref(0), ref(1))), FileSinkDesc()],
            collector=None, num_partitions=1,
        )
        mapper.process_batch([(None, 1), (1, 1)])
        assert mapper.close().output_rows == [(1, 1)]

    def test_reduce_sink_partitions_and_tags(self):
        collector = ListCollector()
        mapper = ExecMapper(
            [ReduceSinkDesc(key_expressions=[ref(0)], value_expressions=[ref(1)], tag=1)],
            collector=collector, num_partitions=4,
        )
        mapper.process_batch([(1, "x"), (2, "y")])
        result = mapper.close()
        assert result.kv_pairs == 2
        assert result.kv_bytes > 0
        partitions = {p for p, _pair in collector.pairs}
        assert partitions <= {0, 1, 2, 3}
        assert all(pair.value[0] == 1 for _p, pair in collector.pairs)

    def test_limit_operator(self):
        mapper = ExecMapper(
            [LimitDesc(2), FileSinkDesc()], collector=None, num_partitions=1
        )
        mapper.process_batch([(i,) for i in range(10)])
        assert len(mapper.close().output_rows) == 2

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ExecutionError):
            build_pipeline([], OperatorContext())

    def test_pipeline_must_end_in_sink(self):
        with pytest.raises(ExecutionError):
            build_pipeline([FilterDesc(Const(True, DataType.BOOLEAN))], OperatorContext())


class TestMapGroupBy:
    def make(self, max_groups=100):
        return ExecMapper(
            [
                MapGroupByDesc(
                    key_expressions=[ref(0)],
                    aggregates=[(AGGREGATES["sum"], ref(1)), (AGGREGATES["count"], None)],
                    max_groups_in_memory=max_groups,
                ),
                FileSinkDesc(),
            ],
            collector=None, num_partitions=1,
        )

    def test_partial_aggregation(self):
        mapper = self.make()
        mapper.process_batch([("a", 1), ("b", 5), ("a", 2)])
        rows = sorted(mapper.close().output_rows)
        # rows are key + flattened partials: sum partial (value,), count (n,)
        assert rows == [("a", 3, 2), ("b", 5, 1)]

    def test_flush_on_pressure(self):
        mapper = self.make(max_groups=2)
        mapper.process_batch([("a", 1), ("b", 1), ("c", 1), ("a", 1)])
        rows = mapper.close().output_rows
        # 'a' may appear twice (flushed then re-created): partial results
        total_for_a = sum(row[1] for row in rows if row[0] == "a")
        assert total_for_a == 2
        assert len(rows) >= 3

    def test_count_star_sentinel(self):
        mapper = ExecMapper(
            [
                MapGroupByDesc(
                    key_expressions=[],
                    aggregates=[(AGGREGATES["count"], None)],
                ),
                FileSinkDesc(),
            ],
            collector=None, num_partitions=1,
        )
        mapper.process_batch([(None,), (None,), (1,)])
        assert mapper.close().output_rows == [(3,)]


class TestMapJoin:
    def run_join(self, join_type="inner", swap=False, probe_rows=None):
        desc = MapJoinDesc(
            small_location="/small",
            probe_key_expressions=[ref(0)],
            build_key_expressions=[ref(0)],
            join_type=join_type,
            small_width=2,
            swap_output=swap,
        )
        mapper = ExecMapper(
            [desc, FileSinkDesc()],
            collector=None,
            num_partitions=1,
            small_tables={"/small": [(1, "one"), (2, "two"), (2, "deux")]},
        )
        mapper.process_batch(probe_rows or [(1, "L1"), (2, "L2"), (9, "L9")])
        return mapper.close().output_rows

    def test_inner(self):
        rows = self.run_join()
        assert (1, "L1", 1, "one") in rows
        assert (2, "L2", 2, "two") in rows and (2, "L2", 2, "deux") in rows
        assert not any(row[0] == 9 for row in rows)

    def test_left_outer(self):
        rows = self.run_join(join_type="left")
        assert (9, "L9", None, None) in rows

    def test_swap_output_order(self):
        rows = self.run_join(swap=True)
        assert (1, "one", 1, "L1") in rows

    def test_null_keys_never_match(self):
        rows = self.run_join(probe_rows=[(None, "LN")])
        assert rows == []

    def test_missing_broadcast_table(self):
        desc = MapJoinDesc(
            small_location="/ghost",
            probe_key_expressions=[ref(0)],
            build_key_expressions=[ref(0)],
        )
        with pytest.raises(ExecutionError):
            ExecMapper([desc, FileSinkDesc()], None, 1, small_tables={})


class TestReduceLogics:
    def test_aggregate_merge_partials(self):
        reducer = ExecReducer(
            ReduceAggregateDesc(
                key_arity=1,
                aggregates=[AGGREGATES["sum"], AGGREGATES["avg"]],
                inputs_are_partials=True,
                partial_arities=[1, 2],
            ),
            [FileSinkDesc()],
        )
        # values: (tag, sum_partial, avg_sum, avg_count)
        reducer.reduce_group(("k",), [(0, 3, 3.0, 2), (0, 4, 5.0, 1)])
        rows = reducer.close().output_rows
        assert rows == [("k", 7, pytest.approx(8.0 / 3))]

    def test_aggregate_raw_values(self):
        reducer = ExecReducer(
            ReduceAggregateDesc(
                key_arity=1,
                aggregates=[AGGREGATES["count_distinct"]],
                inputs_are_partials=False,
            ),
            [FileSinkDesc()],
        )
        reducer.reduce_group(("k",), [(0, "x"), (0, "x"), (0, "y")])
        assert reducer.close().output_rows == [("k", 2)]

    def test_join_inner_and_left(self):
        for join_type, expect_unmatched in (("inner", False), ("left", True)):
            reducer = ExecReducer(
                ReduceJoinDesc(join_type=join_type, left_width=2, right_width=1),
                [FileSinkDesc()],
            )
            reducer.reduce_group((1,), [(0, 1, "L"), (1, "R")])
            reducer.reduce_group((2,), [(0, 2, "Lonely")])
            rows = reducer.close().output_rows
            assert (1, "L", "R") in rows
            assert ((2, "Lonely", None) in rows) == expect_unmatched

    def test_sort_identity(self):
        reducer = ExecReducer(ReduceSortDesc(), [FileSinkDesc()])
        reducer.reduce_group((1,), [(0, "a", 1), (0, "b", 2)])
        assert reducer.close().output_rows == [("a", 1), ("b", 2)]

    def test_distinct(self):
        reducer = ExecReducer(ReduceDistinctDesc(key_arity=2), [FileSinkDesc()])
        reducer.reduce_group(("a", 1), [(0,), (0,)])
        assert reducer.close().output_rows == [("a", 1)]


class TestSortHelpers:
    def test_sort_pairs_ascending_nulls_first(self):
        pairs = [KeyValue((k,), (0,)) for k in (3, None, 1)]
        ordered = [pair.key[0] for pair in sort_pairs(pairs)]
        assert ordered == [None, 1, 3]

    def test_sort_pairs_directions(self):
        pairs = [KeyValue((k,), (0,)) for k in (1, 3, 2)]
        ordered = [pair.key[0] for pair in sort_pairs(pairs, directions=[False])]
        assert ordered == [3, 2, 1]

    def test_multi_key_mixed_directions(self):
        pairs = [KeyValue((a, b), ()) for a, b in ((1, "x"), (1, "a"), (0, "z"))]
        ordered = [pair.key for pair in sort_pairs(pairs, directions=[True, False])]
        assert ordered == [(0, "z"), (1, "x"), (1, "a")]

    def test_group_sorted_pairs(self):
        pairs = sort_pairs(
            [KeyValue((k,), (k * 10,)) for k in (2, 1, 2, 1, 1)]
        )
        groups = list(group_sorted_pairs(pairs))
        assert [(key, len(values)) for key, values in groups] == [((1,), 3), ((2,), 2)]

    def test_merge_sorted_runs(self):
        run_a = sort_pairs([KeyValue((k,), ()) for k in (1, 3, 5)])
        run_b = sort_pairs([KeyValue((k,), ()) for k in (2, 4)])
        merged = [pair.key[0] for pair in merge_sorted_runs([run_a, run_b])]
        assert merged == [1, 2, 3, 4, 5]

    def test_key_comparator_length_tiebreak(self):
        compare = key_comparator()
        assert compare((1,), (1, 2)) < 0


class TestSortFastPathEquivalence:
    """The native tuple-sort fast path must order exactly like the Hive
    comparator (the ground truth), including the cases that force the
    fallback: NULLs, bools, and incomparable type mixes."""

    def _comparator_order(self, pairs, directions=None):
        compare = key_comparator(directions)
        return sorted(
            pairs,
            key=functools.cmp_to_key(lambda a, b: compare(a.key, b.key)),
        )

    def _assert_equivalent(self, keys, directions=None):
        pairs = [KeyValue(key, (i,)) for i, key in enumerate(keys)]
        fast = [p.key for p in sort_pairs(list(pairs), directions)]
        slow = [p.key for p in self._comparator_order(list(pairs), directions)]
        assert fast == slow, (keys, directions)

    def test_native_sortable_int_keys(self):
        self._assert_equivalent([(3,), (1,), (2,), (1,)])
        self._assert_equivalent([(3,), (1,), (2,)], directions=[False])

    def test_string_keys_both_directions(self):
        keys = [("b", 2), ("a", 9), ("b", 1), ("a", 9)]
        self._assert_equivalent(keys)
        self._assert_equivalent(keys, directions=[False, False])

    def test_null_keys_force_comparator(self):
        self._assert_equivalent([(None,), (2,), (None,), (1,)])
        self._assert_equivalent([(None,), (2,), (1,)], directions=[False])

    def test_bool_keys_force_comparator(self):
        self._assert_equivalent([(True,), (False,), (True,)])

    def test_ragged_arity_forces_comparator(self):
        # length tiebreak is NOT direction-flipped, so ragged keys must
        # skip the native reverse sort and use the comparator
        keys = [(1, 2), (1,), (0,), (1, 1)]
        self._assert_equivalent(keys)
        self._assert_equivalent(keys, directions=[False, False])

    def test_stability_preserved(self):
        pairs = [KeyValue((1,), (i,)) for i in range(5)]
        assert [p.value for p in sort_pairs(list(pairs))] == \
            [(i,) for i in range(5)]
