"""Tests for cluster topology and the dstat-style sampler."""

import pytest

from repro.common.units import MB
from repro.simulate import Cluster, ClusterSpec, MetricsSampler, Simulator


@pytest.fixture()
def cluster():
    sim = Simulator()
    return Cluster(sim, ClusterSpec())


class TestClusterSpec:
    def test_defaults_match_testbed(self):
        spec = ClusterSpec()
        assert spec.num_nodes == 8
        assert spec.num_workers == 7
        assert spec.slots_per_node == 4
        assert spec.total_slots == 28

    def test_too_small_rejected(self):
        from repro.common.errors import ExecutionError

        with pytest.raises(ExecutionError):
            ClusterSpec(num_nodes=1)


class TestCluster:
    def test_master_and_workers(self, cluster):
        assert cluster.master.node_id == 0
        assert len(cluster.workers) == 7
        assert cluster.workers[0].node_id == 1

    def test_network_transfer_cross_node(self, cluster):
        sim = cluster.sim
        a, b = cluster.workers[0], cluster.workers[1]
        done = []

        def proc():
            yield from cluster.network_transfer(a, b, 117 * MB)
            done.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert done[0] == pytest.approx(1.0, rel=1e-3)

    def test_same_node_transfer_free(self, cluster):
        sim = cluster.sim
        a = cluster.workers[0]
        done = []

        def proc():
            yield from cluster.network_transfer(a, a, 10 * MB)
            done.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert done == [0.0]

    def test_disk_read_charges_and_counts(self, cluster):
        sim = cluster.sim
        node = cluster.workers[0]

        def proc():
            yield from node.disk_read(200 * MB)

        sim.spawn(proc())
        sim.run()
        assert sim.now == pytest.approx(2.0, rel=1e-3)
        assert node.disk_bytes_read == pytest.approx(200 * MB)

    def test_compute_tracks_gauge(self, cluster):
        sim = cluster.sim
        node = cluster.workers[0]
        observed = []

        def proc():
            yield from node.compute(2.0)

        def watcher():
            yield sim.timeout(1.0)
            observed.append(node.computing)

        sim.spawn(proc())
        sim.spawn(watcher())
        sim.run()
        assert observed == [1]
        assert node.computing == 0


class TestMetricsSampler:
    def test_samples_collected_and_stop(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec())
        sampler = MetricsSampler(cluster, interval=1.0)
        sampler.start()
        node = cluster.workers[0]

        def proc():
            yield from node.compute(3.0)
            yield from node.disk_write(100 * MB)

        sim.spawn(proc())
        sim.run()
        sampler.stop()
        assert len(sampler.samples) >= 3
        # the first samples show a busy CPU (1 task / 28 slots)
        assert sampler.samples[0].cpu_utilization == pytest.approx(1 / 28)

    def test_disk_rate_appears(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec())
        sampler = MetricsSampler(cluster, interval=1.0)
        sampler.start()
        node = cluster.workers[0]

        def proc():
            yield from node.disk_write(300 * MB)  # 3 seconds at 100 MB/s

        sim.spawn(proc())
        sim.run()
        sampler.stop()
        total = sum(sample.disk_write_bps for sample in sampler.samples)
        assert total == pytest.approx(300 * MB, rel=0.35)

    def test_aggregates(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec())
        sampler = MetricsSampler(cluster, interval=1.0)
        sampler.start()
        node = cluster.workers[0]

        def proc():
            yield from node.compute(5.0)

        sim.spawn(proc())
        sim.run()
        sampler.stop()
        assert sampler.average("cpu_utilization") == pytest.approx(1 / 28, rel=0.01)
        assert sampler.peak("cpu_utilization") == pytest.approx(1 / 28)

    def test_no_samples_average_none(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec())
        sampler = MetricsSampler(cluster)
        assert sampler.average("cpu_utilization") is None
        assert sampler.peak("io_wait") is None
