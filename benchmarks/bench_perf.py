"""Wall-clock performance harness for the reproduction itself.

Every other benchmark in this directory reports *simulated* seconds —
the numbers compared against the paper.  This one times the host: how
fast the reproduction executes a TPC-H subset and the HiBench
AGGREGATE/JOIN queries in real wall-clock time, what that is in input
rows per second, and how much memory the process peaks at.  The output
lands in ``BENCH_perf.json`` at the repo root so the perf trajectory is
tracked alongside the figure CSVs.

Run standalone::

    python benchmarks/bench_perf.py            # full measurement
    python benchmarks/bench_perf.py --smoke    # small/fast CI variant
    python benchmarks/bench_perf.py --smoke --guard-seconds 120

``--guard-seconds`` turns the run into a regression gate: exit non-zero
when total wall-clock exceeds the bound.

Each workload executes its script twice on one driver session: the
second pass exercises the compiled-plan cache, and both passes must
produce byte-identical rows (checked via the result digest).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import connect  # noqa: E402
from repro.bench import perf_workloads  # noqa: E402
from repro.common.config import Configuration  # noqa: E402

OUTPUT_PATH = REPO_ROOT / "BENCH_perf.json"
RUNS_PER_WORKLOAD = 2  # second run hits the driver's plan cache


def _peak_rss_kb() -> int:
    """Process peak resident set size in KiB (monotone over the run)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _digest_rows(results) -> str:
    """Stable digest of every result row (byte-identity witness)."""
    hasher = hashlib.md5()
    for result in results:
        for row in result.rows:
            hasher.update(repr(row).encode("utf-8"))
    return hasher.hexdigest()


def _rows_read(results) -> int:
    total = 0
    for result in results:
        if result.execution is None:
            continue
        for job in result.execution.jobs:
            for task in job.tasks:
                total += task.rows_read
    return total


def _simulated_seconds(results) -> float:
    return sum(result.simulated_seconds for result in results)


def _run_workload(name: str, engine: str, warehouse, setup_sql: str,
                  script: str) -> dict:
    """Time *script* on *engine* over a freshly built warehouse.

    Dataset generation and DDL stay outside the timed region; the clock
    covers only query execution (the paths this harness exists to keep
    fast).
    """
    hdfs, metastore = warehouse
    driver = connect(
        engine=engine, hdfs=hdfs, metastore=metastore, conf=Configuration()
    )
    if setup_sql:
        driver.execute(setup_sql)

    digests = []
    rows_read = 0
    simulated = 0.0
    start = time.perf_counter()
    for _ in range(RUNS_PER_WORKLOAD):
        results = driver.execute(script)
        digests.append(_digest_rows(results))
        rows_read += _rows_read(results)
        simulated += _simulated_seconds(results)
    wall = time.perf_counter() - start

    if len(set(digests)) != 1:
        raise AssertionError(
            f"{name}: repeated runs produced different rows "
            f"(plan-cache correctness violation): {digests}"
        )
    return {
        "name": name,
        "engine": engine,
        "runs": RUNS_PER_WORKLOAD,
        "wall_seconds": round(wall, 4),
        "rows_read": rows_read,
        "rows_per_second": round(rows_read / wall, 1) if wall > 0 else 0.0,
        "simulated_seconds": round(simulated, 4),
        "result_digest": digests[0],
        "peak_rss_kb": _peak_rss_kb(),
    }


def run(smoke: bool = False) -> dict:
    workloads = []
    for spec in perf_workloads(smoke):
        warehouse = spec.build_warehouse()  # untimed: dataset generation
        workloads.append(
            _run_workload(spec.name, spec.engine, warehouse, spec.setup_sql,
                          spec.script)
        )
        print(
            f"{spec.name:>20} [{spec.engine:>7}]  "
            f"{workloads[-1]['wall_seconds']:8.3f}s wall  "
            f"{workloads[-1]['rows_per_second']:>12,.0f} rows/s  "
            f"{workloads[-1]['simulated_seconds']:10.2f}s simulated"
        )
    return {
        "schema_version": 1,
        "mode": "smoke" if smoke else "full",
        "runs_per_workload": RUNS_PER_WORKLOAD,
        "workloads": workloads,
        "total_wall_seconds": round(
            sum(w["wall_seconds"] for w in workloads), 4
        ),
        "peak_rss_kb": _peak_rss_kb(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small datasets, core workloads only (CI)",
    )
    parser.add_argument(
        "--guard-seconds", type=float, default=None, metavar="S",
        help="fail (exit 1) when total wall-clock exceeds S seconds",
    )
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH,
        help=f"where to write the JSON report (default: {OUTPUT_PATH})",
    )
    args = parser.parse_args(argv)

    report = run(smoke=args.smoke)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    total = report["total_wall_seconds"]
    print(f"\ntotal: {total:.2f}s wall, peak RSS {report['peak_rss_kb']} KiB")
    print(f"wrote {args.output}")

    if args.guard_seconds is not None and total > args.guard_seconds:
        print(
            f"PERF REGRESSION: total wall-clock {total:.2f}s exceeds "
            f"the {args.guard_seconds:.0f}s guard",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
