"""Cross-layer tracing: span trees, simulated-time discipline, metrics,
and the Chrome-trace / flat exporters."""

import json

import pytest

from repro import connect
from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    chrome_trace_events,
    flatten_spans,
    get_metrics,
    load_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_spans_csv,
    write_spans_json,
)
from repro.simulate.events import Simulator

QUERY = "SELECT dept, count(*), avg(salary) FROM emp GROUP BY dept"


def traced_query(warehouse, engine):
    hdfs, metastore = warehouse
    session = connect(engine=engine, hdfs=hdfs, metastore=metastore)
    return session.query(QUERY)


# ---------------------------------------------------------------------------
# Tracer / Span primitives
# ---------------------------------------------------------------------------


class TestTracerPrimitives:
    def test_explicit_parent_nesting(self):
        tracer = Tracer()
        root = tracer.start("query", start=0.0)
        child = tracer.start("job", parent=root, start=1.0, category="job")
        child.finish(4.0)
        root.finish(5.0)
        assert root.children == [child]
        assert tracer.roots == [root]
        assert child.duration == 3.0

    def test_contextmanager_stack(self):
        tracer = Tracer(clock=lambda: 7.0)
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner", kind="x") as inner:
                assert tracer.current is inner
        assert tracer.current is None
        assert outer.children == [inner]
        assert inner.attributes["kind"] == "x"

    def test_clock_drives_default_times(self):
        clock = {"t": 2.5}
        tracer = Tracer(clock=lambda: clock["t"])
        span = tracer.start("s")
        clock["t"] = 9.0
        tracer.finish(span)
        assert (span.start, span.end) == (2.5, 9.0)

    def test_shift_moves_whole_subtree(self):
        root = Span("job", start=0.0)
        task = root.start_child("task", start=1.0)
        task.add_event("spill", 1.5)
        task.finish(2.0)
        root.finish(3.0)
        root.shift(10.0)
        assert (root.start, root.end) == (10.0, 13.0)
        assert (task.start, task.end) == (11.0, 12.0)
        assert task.events[0].time == 11.5

    def test_find_and_walk(self):
        root = Span("query", start=0.0, category="query")
        job = root.start_child("j1", start=0.0, category="job")
        job.start_child("t1", start=0.0, category="task").finish(1.0)
        job.start_child("t2", start=1.0, category="task").finish(2.0)
        job.finish(2.0)
        root.finish(2.0)
        assert root.find("job") is job
        assert [s.name for s in root.find_all("task")] == ["t1", "t2"]
        depths = {span.name: depth for span, depth in root.walk()}
        assert depths == {"query": 0, "j1": 1, "t1": 2, "t2": 2}


# ---------------------------------------------------------------------------
# End-to-end query traces
# ---------------------------------------------------------------------------


class TestQueryTrace:
    @pytest.mark.parametrize("engine", ["datampi", "hadoop"])
    def test_trace_has_nested_layers(self, warehouse, engine):
        result = traced_query(warehouse, engine)
        trace = result.trace
        assert trace is not None and trace.category == "query"
        assert trace.attributes["engine"] == engine
        compile_span = trace.find("compile")
        jobs = trace.find_all("job")
        tasks = trace.find_all("task")
        assert compile_span is not None and compile_span.duration > 0
        assert jobs and tasks
        assert all(job.attributes["engine"] == engine for job in jobs)
        assert any(span.category == "shuffle" for span, _ in trace.walk())

    @pytest.mark.parametrize("engine", ["datampi", "hadoop"])
    def test_simulated_time_monotonic(self, warehouse, engine):
        trace = traced_query(warehouse, engine).trace
        for span, _depth in trace.walk():
            assert span.closed, f"unfinished span {span.name}"
            assert span.end >= span.start >= 0.0
            for child in span.children:
                assert child.start >= span.start - 1e-9
                assert child.end <= span.end + 1e-9

    def test_jobs_start_after_compile(self, warehouse):
        trace = traced_query(warehouse, "datampi").trace
        compile_span = trace.find("compile")
        for job in trace.find_all("job"):
            assert job.start >= compile_span.end - 1e-9

    def test_trace_duration_matches_query(self, warehouse):
        result = traced_query(warehouse, "datampi")
        assert result.trace.duration == pytest.approx(
            result.simulated_seconds, rel=1e-6
        )

    def test_phase_children_cover_job(self, warehouse):
        trace = traced_query(warehouse, "hadoop").trace
        job = trace.find("job")
        phases = [child for child in job.children if child.category == "phase"]
        names = [phase.name for phase in phases]
        assert "startup" in names and "map-shuffle" in names

    def test_local_engine_trace_shape(self, warehouse):
        result = traced_query(warehouse, "local")
        assert result.trace.find("compile") is not None
        assert result.trace.find("job") is not None


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_registry_primitives(self):
        registry = MetricsRegistry()
        registry.counter("c").add(3)
        registry.counter("c").add(2)
        registry.gauge("g").set(7)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("h").observe(value)
        snap = registry.snapshot()
        assert snap["c"] == 5
        assert snap["g"] == 7
        assert snap["h.count"] == 4
        assert snap["h.mean"] == pytest.approx(2.5)
        assert registry.histogram("h").percentile(100) == 4.0
        assert registry.histogram("h").percentile(0) == 1.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").add(-1)

    def test_query_populates_global_metrics(self, warehouse):
        registry = get_metrics()
        registry.reset()
        traced_query(warehouse, "datampi")
        snap = registry.snapshot()
        assert snap["datampi.jobs"] >= 1
        assert snap["datampi.shuffle.bytes"] > 0
        assert snap["cluster.cpu_seconds"] > 0
        assert snap["datampi.job.startup_seconds.count"] >= 1
        registry.reset()
        assert registry.snapshot() == {}


# ---------------------------------------------------------------------------
# Simulator process spans
# ---------------------------------------------------------------------------


class TestSimulatorSpans:
    def test_process_lifetimes_become_spans(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        tracer.set_clock(lambda: sim.now)

        def worker(sim):
            yield sim.timeout(2.0)

        sim.spawn(worker(sim), name="w1")
        sim.run()
        spans = [span for span in tracer.roots if span.category == "process"]
        assert [span.name for span in spans] == ["w1"]
        assert (spans[0].start, spans[0].end) == (0.0, 2.0)

    def test_interrupted_process_marked(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        tracer.set_clock(lambda: sim.now)

        def sleeper(sim):
            yield sim.timeout(100.0)

        def killer(sim, victim):
            yield sim.timeout(1.0)
            victim.interrupt("test")

        victim = sim.spawn(sleeper(sim), name="victim")
        sim.spawn(killer(sim, victim), name="killer")
        sim.run()
        span = next(s for s in tracer.roots if s.name == "victim")
        assert span.end == 1.0
        assert span.attributes.get("interrupted") is True


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExport:
    def test_chrome_trace_round_trip(self, warehouse, tmp_path):
        result = traced_query(warehouse, "datampi")
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), result.trace)
        loaded = load_chrome_trace(str(path))
        # independently parseable as plain JSON
        assert loaded == json.loads(path.read_text())
        events = loaded["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete, "no complete events"
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
        categories = {event["cat"] for event in complete}
        assert {"query", "compile", "job", "task"} <= categories
        assert loaded["otherData"]["clock"] == "simulated-seconds"

    def test_chrome_trace_times_in_microseconds(self):
        root = Span("query", start=0.0, category="query")
        root.start_child("job", start=0.5, category="job").finish(1.5)
        root.finish(2.0)
        events = chrome_trace_events([root])
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["job"]["ts"] == pytest.approx(500_000)
        assert by_name["job"]["dur"] == pytest.approx(1_000_000)

    def test_one_pid_per_engine(self, warehouse):
        roots = [
            traced_query(warehouse, "datampi").trace,
            traced_query(warehouse, "hadoop").trace,
        ]
        trace = to_chrome_trace(roots)
        metadata = {
            event["args"]["name"]: event["pid"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert set(metadata) == {"datampi", "hadoop"}
        assert len(set(metadata.values())) == 2

    def test_flatten_and_csv(self, warehouse, tmp_path):
        trace = traced_query(warehouse, "datampi").trace
        rows = flatten_spans([trace])
        assert rows[0]["name"] == "query" and rows[0]["depth"] == 0
        assert any(row["category"] == "task" for row in rows)
        json_path = tmp_path / "spans.json"
        csv_path = tmp_path / "spans.csv"
        write_spans_json(str(json_path), trace)
        write_spans_csv(str(csv_path), trace)
        assert len(json.loads(json_path.read_text())) == len(rows)
        # header + one line per span
        assert len(csv_path.read_text().strip().splitlines()) == len(rows) + 1
