"""Tests for the HiveQL lexer and parser."""

import pytest

from repro.common.errors import ParseError
from repro.sql import ast, parse_expression, parse_script, parse_statement
from repro.sql.lexer import Lexer, TokenType


class TestLexer:
    def tokens(self, text):
        return [t for t in Lexer(text).tokenize() if t.type is not TokenType.EOF]

    def test_keywords_case_insensitive(self):
        tokens = self.tokens("SELECT select SeLeCt")
        assert all(t.is_keyword("select") for t in tokens)

    def test_identifiers_keep_raw(self):
        token = self.tokens("MyTable")[0]
        assert token.type is TokenType.IDENT
        assert token.text == "mytable"
        assert token.raw == "MyTable"

    def test_numbers(self):
        values = [t.text for t in self.tokens("1 2.5 1e3 2.5E-2 .5")]
        assert values == ["1", "2.5", "1e3", "2.5E-2", ".5"]

    def test_strings_and_escapes(self):
        tokens = self.tokens(r"'hello' 'it''s' 'a\nb' " + '"dq"')
        assert [t.text for t in tokens] == ["hello", "it's", "a\nb", "dq"]

    def test_comments_skipped(self):
        tokens = self.tokens("SELECT -- a comment\n1 /* block\ncomment */ + 2")
        assert [t.text for t in tokens] == ["select", "1", "+", "2"]

    def test_operators(self):
        tokens = self.tokens("a <> b != c <= d >= e")
        ops = [t.text for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == ["<>", "!=", "<=", ">="]

    def test_backtick_identifier(self):
        token = self.tokens("`select`")[0]
        assert token.type is TokenType.IDENT
        assert token.text == "select"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            self.tokens("'oops")

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            self.tokens("a ? b")

    def test_error_carries_position(self):
        try:
            self.tokens("ok\n  ?")
        except ParseError as error:
            assert error.line == 2
        else:
            pytest.fail("expected ParseError")


class TestExpressionParsing:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_precedence_logical(self):
        expr = parse_expression("a = 1 or b = 2 and c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression("not a = 1 and b = 2")
        assert expr.op == "and"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_between(self):
        expr = parse_expression("x between 1 and 10")
        assert isinstance(expr, ast.Between)
        assert not expr.negated

    def test_not_between(self):
        expr = parse_expression("x not between 1 and 10")
        assert isinstance(expr, ast.Between) and expr.negated

    def test_in_list(self):
        expr = parse_expression("x in (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_like_and_not_like(self):
        assert isinstance(parse_expression("s like '%x%'"), ast.Like)
        negated = parse_expression("s not like 'a%'")
        assert isinstance(negated, ast.Like) and negated.negated

    def test_is_null(self):
        expr = parse_expression("x is not null")
        assert isinstance(expr, ast.IsNull) and expr.negated

    def test_case_when(self):
        expr = parse_expression("case when a > 1 then 'big' else 'small' end")
        assert isinstance(expr, ast.CaseWhen)
        assert len(expr.branches) == 1
        assert expr.else_value is not None

    def test_cast(self):
        expr = parse_expression("cast(x as double)")
        assert isinstance(expr, ast.Cast) and expr.type_name == "double"

    def test_function_call_distinct(self):
        expr = parse_expression("count(distinct x)")
        assert isinstance(expr, ast.FunctionCall) and expr.distinct

    def test_count_star(self):
        expr = parse_expression("count(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_qualified_column(self):
        expr = parse_expression("t.col")
        assert isinstance(expr, ast.ColumnRef)
        assert expr.table == "t" and expr.name == "col"

    def test_unary_minus(self):
        expr = parse_expression("-x + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_concat_pipes(self):
        expr = parse_expression("a || b")
        assert isinstance(expr, ast.FunctionCall) and expr.name == "concat"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra junk ,")


class TestStatementParsing:
    def test_select_all_clauses(self):
        stmt = parse_statement("""
            SELECT a, sum(b) total FROM t
            WHERE c > 0 GROUP BY a HAVING sum(b) > 10
            ORDER BY total DESC LIMIT 7
        """)
        assert isinstance(stmt, ast.Select)
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 7

    def test_select_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_join_chain(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.k = b.k LEFT OUTER JOIN c ON b.j = c.j"
        )
        join = stmt.source
        assert isinstance(join, ast.Join) and join.join_type == "left"
        assert isinstance(join.left, ast.Join) and join.left.join_type == "inner"

    def test_cross_join(self):
        stmt = parse_statement("SELECT * FROM a CROSS JOIN b")
        assert stmt.source.condition is None

    def test_comma_join(self):
        stmt = parse_statement("SELECT * FROM a, b")
        assert isinstance(stmt.source, ast.Join)

    def test_subquery_source(self):
        stmt = parse_statement("SELECT x FROM (SELECT y AS x FROM t) sub")
        assert isinstance(stmt.source, ast.SubquerySource)
        assert stmt.source.alias == "sub"

    def test_create_table(self):
        stmt = parse_statement("CREATE TABLE t (a int, b string) STORED AS orc")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.format_name == "orc"
        assert [c.name for c in stmt.columns] == ["a", "b"]

    def test_create_table_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a int)")
        assert stmt.if_not_exists

    def test_stored_as_aliases(self):
        stmt = parse_statement("CREATE TABLE t (a int) STORED AS ORCFILE")
        assert stmt.format_name == "orc"
        stmt = parse_statement("CREATE TABLE t (a int) STORED AS TEXTFILE")
        assert stmt.format_name == "text"

    def test_ctas(self):
        stmt = parse_statement("CREATE TABLE t2 AS SELECT a FROM t1")
        assert isinstance(stmt, ast.CreateTableAsSelect)

    def test_drop(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, ast.DropTable) and stmt.if_exists

    def test_insert_overwrite(self):
        stmt = parse_statement("INSERT OVERWRITE TABLE t SELECT * FROM s")
        assert isinstance(stmt, ast.InsertOverwrite) and stmt.table == "t"

    def test_set_option(self):
        stmt = parse_statement("SET hive.datampi.parallelism = enhanced")
        assert isinstance(stmt, ast.SetOption)
        assert stmt.key == "hive.datampi.parallelism"
        assert stmt.value == "enhanced"

    def test_script_multiple_statements(self):
        statements = parse_script("""
            DROP TABLE IF EXISTS a;
            CREATE TABLE a (x int);
            SELECT x FROM a;
        """)
        assert [type(s).__name__ for s in statements] == [
            "DropTable", "CreateTable", "Select",
        ]

    def test_empty_statement_tolerated(self):
        assert len(parse_script(";;SELECT 1 one FROM t;;")) == 1

    def test_garbage_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("EXPLODE TABLE t")
