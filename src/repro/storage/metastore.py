"""Hive Metastore: table name -> schema, warehouse location, format.

Hive tables are directories under ``/warehouse``; each part-file inside
belongs to the table.  ``CREATE TABLE``, ``DROP TABLE`` and ``INSERT
OVERWRITE`` in the driver manipulate this catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SemanticError
from repro.common.rows import Column, Schema
from repro.stats.model import TableStats, table_fingerprint
from repro.storage.hdfs import HDFS, FileSplit

WAREHOUSE_ROOT = "/warehouse"


@dataclass
class TableDescriptor:
    """Catalog entry for one Hive table.

    Partitioned tables (``PARTITIONED BY``) keep their partition columns
    separate from the data schema; each partition is a subdirectory
    ``col=value[/col=value...]`` under the table location (Hive's
    warehouse layout).  Part-files of a partition store full-width rows
    (data + partition values) so scans stay format-agnostic, while the
    partition registry enables directory-level pruning.
    """

    name: str
    schema: Schema
    location: str
    format_name: str = "text"
    partition_columns: List[Column] = field(default_factory=list)
    # partition value tuple -> directory
    partitions: Dict[Tuple[object, ...], str] = field(default_factory=dict)

    @property
    def is_partitioned(self) -> bool:
        return bool(self.partition_columns)

    @property
    def full_schema(self) -> Schema:
        """Data columns followed by partition columns (query-visible)."""
        if not self.partition_columns:
            return self.schema
        return Schema(list(self.schema.columns) + list(self.partition_columns))

    def partition_location(self, values: Tuple[object, ...]) -> str:
        pieces = [
            f"{column.name.lower()}={value}"
            for column, value in zip(self.partition_columns, values)
        ]
        return "/".join([self.location] + pieces)

    def add_partition(self, values: Tuple[object, ...]) -> str:
        if len(values) != len(self.partition_columns):
            raise SemanticError(
                f"table {self.name} has {len(self.partition_columns)} partition "
                f"column(s), got {len(values)} value(s)"
            )
        location = self.partition_location(values)
        self.partitions[tuple(values)] = location
        return location

    def splits(self, hdfs: HDFS) -> List[FileSplit]:
        return hdfs.dir_splits(self.location)

    def row_count(self, hdfs: HDFS) -> int:
        return sum(f.row_count for f in hdfs.list_dir(self.location))

    def logical_bytes(self, hdfs: HDFS) -> float:
        return hdfs.dir_logical_bytes(self.location)


class Metastore:
    """In-memory catalog mapping lowercase table names to descriptors."""

    def __init__(self, hdfs: HDFS):
        self.hdfs = hdfs
        self._tables: Dict[str, TableDescriptor] = {}
        # bumped on every catalog mutation; consumers (the driver's plan
        # cache) use it as a cheap staleness check
        self.version = 0
        # table statistics live beside the catalog, with their own epoch:
        # ANALYZE changes what the optimizer sees without changing any
        # table's data, so plan-cache keys must include stats_epoch too
        self._stats: Dict[str, TableStats] = {}
        self.stats_epoch = 0

    def create_table(
        self,
        name: str,
        schema: Schema,
        format_name: str = "text",
        location: Optional[str] = None,
        partition_columns: Optional[List[Column]] = None,
    ) -> TableDescriptor:
        key = name.lower()
        if key in self._tables:
            raise SemanticError(f"table already exists: {name}")
        partition_columns = list(partition_columns or [])
        for column in partition_columns:
            if schema.has(column.name):
                raise SemanticError(
                    f"partition column {column.name} duplicates a data column"
                )
        descriptor = TableDescriptor(
            name=key,
            schema=schema,
            location=location or f"{WAREHOUSE_ROOT}/{key}",
            format_name=format_name,
            partition_columns=partition_columns,
        )
        self._tables[key] = descriptor
        self.version += 1
        return descriptor

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise SemanticError(f"no such table: {name}")
        descriptor = self._tables.pop(key)
        self.version += 1
        self.drop_table_stats(key)
        self.hdfs.delete(descriptor.location)

    def truncate_table(self, name: str) -> None:
        """Remove a table's data files but keep the catalog entry
        (INSERT OVERWRITE semantics)."""
        descriptor = self.get_table(name)
        self.version += 1
        self.drop_table_stats(descriptor.name)
        self.hdfs.delete(descriptor.location)

    def get_table(self, name: str) -> TableDescriptor:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SemanticError(f"no such table: {name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # -- statistics ---------------------------------------------------------
    def put_table_stats(self, stats: TableStats) -> None:
        """Store *stats* and bump the stats epoch.

        Deliberately does NOT bump :attr:`version`: ANALYZE changes no
        table data, so previously returned rows stay correct — but
        compiled plans must be re-costed, which the driver enforces by
        including :attr:`stats_epoch` in its plan-cache keys.
        """
        self._stats[stats.table.lower()] = stats
        self.stats_epoch += 1

    def get_table_stats(self, name: str) -> Optional[TableStats]:
        """Stats for *name*, or ``None`` when absent or stale.

        Staleness is checked read-only against the live filesystem: if
        any part-file was added, removed or rewritten since collection,
        the fingerprint differs and the stats are withheld (the planner
        then falls back to raw table bytes, never to wrong estimates).
        """
        key = name.lower()
        stats = self._stats.get(key)
        if stats is None:
            return None
        descriptor = self._tables.get(key)
        if descriptor is None:
            return None
        if stats.fingerprint != table_fingerprint(self.hdfs, descriptor.location):
            return None
        return stats

    def drop_table_stats(self, name: str) -> None:
        if self._stats.pop(name.lower(), None) is not None:
            self.stats_epoch += 1

    def stats_tables(self) -> List[str]:
        """Names of tables with (possibly stale) recorded stats."""
        return sorted(self._stats)
