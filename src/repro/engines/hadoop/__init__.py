"""Simulated Hadoop 1.x MapReduce engine (the paper's baseline)."""

from repro.engines.hadoop.engine import HadoopEngine, HadoopCosts

__all__ = ["HadoopEngine", "HadoopCosts"]
