#!/usr/bin/env python
"""Partitioned tables and partition pruning.

Hive's metastore tracks table *partitions* (paper §IV-A mentions it
stores "metadata for Hive tables and partitions"); a query filtering on
the partition column never reads — or even schedules tasks for — the
other partitions.  This example builds a day-partitioned event log and
shows the pruning effect on the simulated cluster.

Run with:  python examples/partitioned_warehouse.py
"""

import random

from repro import HDFS, Metastore, connect
from repro.common.rows import Schema
from repro.common.units import GB


DAYS = ["2015-06-15", "2015-06-16", "2015-06-17", "2015-06-18"]


def main():
    hdfs = HDFS(num_workers=7)
    metastore = Metastore(hdfs)
    rng = random.Random(11)

    # a staging table holding raw events (one big unpartitioned dump)
    staging = Schema.parse("user string, action string, amount double, day string")
    table = metastore.create_table("staging", staging, format_name="text")
    rows = [
        (
            f"user{rng.randrange(500)}",
            rng.choice(["view", "click", "buy"]),
            round(rng.uniform(0, 40), 2),
            rng.choice(DAYS),
        )
        for _ in range(24000)
    ]
    from repro.storage.formats.base import get_format

    actual = get_format("text").build(staging, rows).total_bytes
    hdfs.write(f"{table.location}/part-0", staging, rows,
               format_name="text", scale=8 * GB / actual)

    session = connect(engine="datampi", hdfs=hdfs, metastore=metastore)
    session.execute(
        "CREATE TABLE events (user string, action string, amount double) "
        "PARTITIONED BY (day string) STORED AS orc"
    )
    print("loading one partition per day (ETL into the partitioned table)...")
    for day in DAYS:
        session.execute(
            f"INSERT OVERWRITE TABLE events PARTITION (day='{day}') "
            f"SELECT user, action, amount FROM staging WHERE day = '{day}'"
        )

    hadoop = connect(engine="hadoop", hdfs=hdfs, metastore=metastore)
    full = hadoop.query("SELECT count(*) FROM events")
    one_day = hadoop.query(
        "SELECT action, sum(amount) FROM events "
        f"WHERE day = '{DAYS[2]}' GROUP BY action ORDER BY action"
    )
    print(f"\nfull scan      : {full.execution.jobs[0].num_maps:3d} map tasks, "
          f"{full.execution.total_seconds:6.1f}s simulated")
    print(f"one-day query  : {one_day.execution.jobs[0].num_maps:3d} map tasks, "
          f"{one_day.execution.total_seconds:6.1f}s simulated  <- partition pruning")
    print("\nday's revenue by action:")
    for row in one_day.rows:
        print(f"  {row[0]:<6} {row[1]:10.2f}")


if __name__ == "__main__":
    main()
