"""Differential oracle: concurrent cluster execution vs the local engine.

All 22 TPC-H queries run solo on the reference (local) executor to
produce oracle rows, then are submitted *concurrently* in batches to a
shared simulated cluster — for each engine (hadoop, datampi, llap) in
both row-at-a-time and vectorized execution modes.  Every query's rows under
concurrency must match its solo oracle exactly: scheduling may reorder
work in time, never change answers.

The warehouse is tiny (SF-1, small lineitem sample) so the whole
16-configuration sweep stays in the tier-1 budget.
"""

import pytest

from repro import connect
from repro.bench import fresh_tpch
from repro.common.config import EXEC_VECTORIZED, SCHED_POLICY
from repro.engines.base import compare_result_rows
from repro.workloads.tpch import TPCH_QUERY_IDS, tpch_query

SF = 1
LINEITEM_SAMPLE = 800
BATCH_SIZE = 8
ENGINES = ("hadoop", "datampi", "llap")
MODES = (False, True)  # row-at-a-time, vectorized


def batches(items, size):
    for start in range(0, len(items), size):
        yield items[start:start + size]


def last_select_rows(results):
    return [r for r in results if r.statement == "select"][-1].rows


@pytest.fixture(scope="module")
def store():
    return fresh_tpch(SF, lineitem_sample=LINEITEM_SAMPLE)


@pytest.fixture(scope="module")
def oracle(store):
    """Query id -> reference rows from the local engine, run solo."""
    hdfs, metastore = store
    rows = {}
    with connect(engine="local", hdfs=hdfs, metastore=metastore) as session:
        for query in TPCH_QUERY_IDS:
            rows[query] = last_select_rows(session.execute(tpch_query(query, SF)))
    return rows


@pytest.mark.parametrize("vectorized", MODES, ids=["row", "vectorized"])
@pytest.mark.parametrize("engine", ENGINES)
def test_concurrent_tpch_matches_local_oracle(store, oracle, engine, vectorized):
    hdfs, metastore = store
    conf = {SCHED_POLICY: "fair", EXEC_VECTORIZED: vectorized}
    with connect(engine=engine, hdfs=hdfs, metastore=metastore,
                 conf=conf) as session:
        for batch in batches(list(TPCH_QUERY_IDS), BATCH_SIZE):
            handles = [
                (query, session.submit(tpch_query(query, SF)))
                for query in batch
            ]
            session.scheduler.drain()
            for query, handle in handles:
                rows = handle.result().rows
                assert compare_result_rows(oracle[query], rows, ordered=True), (
                    f"Q{query} on {engine}"
                    f"{'/vectorized' if vectorized else ''} diverged from "
                    "the local oracle under concurrent scheduling"
                )
        ledger = session.scheduler.runtime.leases.ledger
        assert ledger.oversubscribed_pools() == []
