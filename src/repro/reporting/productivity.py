"""Productivity analysis (paper Table III).

The paper's argument: supporting a whole data-warehouse system on
DataMPI needed only ~0.3K changed lines because the plug-in design
reuses Hive's compiler and operators.  The same structural split exists
in this reproduction, so we count it the same way:

* **compiler** — shared planning code (used verbatim by both engines);
* **execution engine, shared** — the functional task bodies
  (ExecMapper/ExecReducer, operators) inherited by both;
* **engine-specific** — the Hadoop engine vs. the DataMPI engine: the
  DataMPI-specific lines are this reproduction's analogue of the
  paper's "main changes".
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List

import repro


@dataclass
class CodeCount:
    files: int
    lines: int  # non-blank, non-comment source lines


def count_code_lines(relative_paths: List[str]) -> CodeCount:
    """Count source lines of the given paths (relative to the package)."""
    root = os.path.dirname(os.path.abspath(repro.__file__))
    files = 0
    lines = 0
    for rel in relative_paths:
        target = os.path.join(root, rel)
        if os.path.isdir(target):
            candidates = [
                os.path.join(base, name)
                for base, _dirs, names in os.walk(target)
                for name in names
                if name.endswith(".py")
            ]
        else:
            candidates = [target]
        for path in candidates:
            files += 1
            in_docstring = False
            with open(path, "r") as handle:
                for raw in handle:
                    stripped = raw.strip()
                    if not stripped:
                        continue
                    if in_docstring:
                        if '"""' in stripped:
                            in_docstring = False
                        continue
                    if stripped.startswith('"""'):
                        if stripped.count('"""') < 2:
                            in_docstring = True
                        continue
                    if stripped.startswith("#"):
                        continue
                    lines += 1
    return CodeCount(files=files, lines=lines)


def productivity_report() -> Dict[str, CodeCount]:
    """Line counts per component, mirroring Table III's rows."""
    return {
        "compiler (shared)": count_code_lines(["sql", "plan"]),
        "execution shared (operators, tasks)": count_code_lines(["exec", "engines/base.py", "engines/local.py"]),
        "engine for Hadoop": count_code_lines(["engines/hadoop"]),
        "engine for DataMPI (main changes)": count_code_lines(["engines/datampi"]),
        "driver plug-in (core)": count_code_lines(["core"]),
    }


def format_productivity_table(report: Dict[str, CodeCount]) -> str:
    header = f"{'component':<40} {'files':>6} {'lines':>8}"
    lines = ["== Productivity (Table III equivalent) ==", header, "-" * len(header)]
    for label, count in report.items():
        lines.append(f"{label:<40} {count.files:>6} {count.lines:>8}")
    shared = sum(
        count.lines for label, count in report.items() if "shared" in label or "compiler" in label
    )
    datampi = report["engine for DataMPI (main changes)"].lines
    lines.append("-" * len(header))
    lines.append(
        f"DataMPI-specific lines vs shared substrate: {datampi} vs {shared} "
        f"({100.0 * datampi / max(1, shared + datampi):.1f}% of the engine stack)"
    )
    return "\n".join(lines)
