"""Recursive-descent parser for the HiveQL subset.

Produces :mod:`repro.sql.ast` nodes.  Operator precedence (low to high):
``OR`` < ``AND`` < ``NOT`` < predicates (comparisons, BETWEEN, IN, LIKE,
IS NULL) < ``+ -`` < ``* / %`` < unary minus < primary.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Lexer, Token, TokenType

_COMPARISONS = ("=", "<>", "!=", "<", "<=", ">", ">=")


class Parser:
    def __init__(self, text: str):
        self.tokens = Lexer(text).tokenize()
        self.pos = 0

    # -- token helpers ----------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(f"{message} (found {token})", token.line, token.column)

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if token.is_keyword(*names):
            return self._advance()
        raise self._error(f"expected {'/'.join(names).upper()}")

    def _expect_punct(self, char: str) -> Token:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.text == char:
            return self._advance()
        raise self._error(f"expected {char!r}")

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._advance()
        return None

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.text == char:
            self._advance()
            return True
        return False

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return token.text
        # Non-reserved use of soft keywords as identifiers (e.g. a column
        # named "year") is not supported; workloads avoid it.
        raise self._error("expected identifier")

    # -- entry points ----------------------------------------------------------
    def parse_script(self) -> List[ast.Statement]:
        statements: List[ast.Statement] = []
        while self._peek().type is not TokenType.EOF:
            if self._accept_punct(";"):
                continue
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("explain"):
            self._advance()
            return ast.Explain(self.parse_statement())
        if token.is_keyword("select"):
            return self.parse_query()
        if token.is_keyword("create"):
            return self._parse_create()
        if token.is_keyword("drop"):
            return self._parse_drop()
        if token.is_keyword("insert"):
            return self._parse_insert()
        if token.is_keyword("set"):
            return self._parse_set()
        if token.is_keyword("analyze"):
            return self._parse_analyze()
        raise self._error("expected a statement")

    def parse_query(self):
        """SELECT possibly followed by UNION ALL branches."""
        first = self.parse_select()
        if not self._peek().is_keyword("union"):
            return first
        branches = [first]
        while self._accept_keyword("union"):
            self._expect_keyword("all")
            branches.append(self.parse_select())
        return ast.UnionAll(branches)

    # -- statements -------------------------------------------------------------
    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("create")
        self._expect_keyword("table")
        if_not_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("not")
            self._expect_keyword("exists")
            if_not_exists = True
        name = self._expect_ident()
        if self._peek().type is TokenType.PUNCT and self._peek().text == "(":
            columns = self._parse_column_defs()
            partition_columns: List[ast.ColumnDef] = []
            if self._accept_keyword("partitioned"):
                self._expect_keyword("by")
                partition_columns = self._parse_column_defs()
            format_name = self._parse_stored_as()
            return ast.CreateTable(
                name, columns, format_name, if_not_exists, partition_columns
            )
        format_name = self._parse_stored_as()
        self._expect_keyword("as")
        query = self.parse_query()
        return ast.CreateTableAsSelect(name, query, format_name)

    def _parse_column_defs(self) -> List[ast.ColumnDef]:
        self._expect_punct("(")
        columns: List[ast.ColumnDef] = []
        while True:
            column_name = self._expect_ident()
            type_name = self._expect_ident()
            columns.append(ast.ColumnDef(column_name, type_name))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return columns

    def _parse_stored_as(self) -> Optional[str]:
        if self._accept_keyword("stored"):
            self._expect_keyword("as")
            token = self._peek()
            if token.type in (TokenType.IDENT, TokenType.KEYWORD):
                self._advance()
                alias_map = {"textfile": "text", "sequencefile": "sequence", "orcfile": "orc"}
                return alias_map.get(token.text, token.text)
            raise self._error("expected format name after STORED AS")
        return None

    def _parse_drop(self) -> ast.DropTable:
        self._expect_keyword("drop")
        self._expect_keyword("table")
        if_exists = False
        if self._accept_keyword("if"):
            self._expect_keyword("exists")
            if_exists = True
        return ast.DropTable(self._expect_ident(), if_exists)

    def _parse_analyze(self) -> ast.AnalyzeTable:
        self._expect_keyword("analyze")
        self._expect_keyword("table")
        name = self._expect_ident()
        self._expect_keyword("compute")
        self._expect_keyword("statistics")
        with_columns = False
        # FOR COLUMNS — both words lex as identifiers (they stay usable
        # as column names elsewhere), so match on their text
        token = self._peek()
        if token.type is TokenType.IDENT and token.text == "for":
            self._advance()
            columns_token = self._peek()
            if not (
                columns_token.type is TokenType.IDENT
                and columns_token.text == "columns"
            ):
                raise self._error("expected COLUMNS after FOR")
            self._advance()
            with_columns = True
        return ast.AnalyzeTable(name, with_columns)

    def _parse_insert(self) -> ast.InsertOverwrite:
        self._expect_keyword("insert")
        if self._accept_keyword("overwrite"):
            overwrite = True
        else:
            self._expect_keyword("into")
            overwrite = False
        self._expect_keyword("table")
        name = self._expect_ident()
        partition: List[tuple] = []
        if self._accept_keyword("partition"):
            self._expect_punct("(")
            while True:
                column = self._expect_ident()
                token = self._peek()
                if not (token.type is TokenType.OPERATOR and token.text == "="):
                    raise self._error("expected '=' in PARTITION spec")
                self._advance()
                value = self._parse_primary()
                if not isinstance(value, ast.Literal):
                    raise self._error("PARTITION values must be literals")
                partition.append((column, value.value))
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        return ast.InsertOverwrite(name, self.parse_query(), overwrite, partition)

    def _parse_set(self) -> ast.SetOption:
        self._expect_keyword("set")
        pieces = [self._expect_ident()]
        while self._accept_punct("."):
            token = self._peek()
            if token.type in (TokenType.IDENT, TokenType.KEYWORD):
                self._advance()
                pieces.append(token.text)
            else:
                raise self._error("expected configuration key segment")
        key = ".".join(pieces)
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "=":
            self._advance()
        else:
            raise self._error("expected '=' in SET")
        value_parts: List[str] = []
        while self._peek().type is not TokenType.EOF and not (
            self._peek().type is TokenType.PUNCT and self._peek().text == ";"
        ):
            value_parts.append(self._advance().raw)
        return ast.SetOption(key, " ".join(value_parts))

    # -- SELECT -------------------------------------------------------------------
    def parse_select(self) -> ast.Select:
        self._expect_keyword("select")
        distinct = bool(self._accept_keyword("distinct"))
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())

        source: Optional[ast.Source] = None
        if self._accept_keyword("from"):
            source = self._parse_source()

        where = self.parse_expression() if self._accept_keyword("where") else None

        group_by: List[ast.Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.parse_expression())
            while self._accept_punct(","):
                group_by.append(self.parse_expression())

        having = self.parse_expression() if self._accept_keyword("having") else None

        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())

        limit: Optional[int] = None
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise self._error("expected number after LIMIT")
            self._advance()
            limit = int(token.text)

        return ast.Select(
            items=items,
            source=source,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "*":
            self._advance()
            return ast.SelectItem(ast.Star())
        expression = self.parse_expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return ast.SelectItem(expression, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self.parse_expression()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expression, ascending)

    # -- FROM ----------------------------------------------------------------------
    def _parse_source(self) -> ast.Source:
        source = self._parse_source_primary()
        while True:
            token = self._peek()
            if token.is_keyword("join", "inner"):
                self._accept_keyword("inner")
                self._expect_keyword("join")
                right = self._parse_source_primary()
                self._expect_keyword("on")
                condition = self.parse_expression()
                source = ast.Join(source, right, "inner", condition)
            elif token.is_keyword("left"):
                self._advance()
                self._accept_keyword("outer")
                self._expect_keyword("join")
                right = self._parse_source_primary()
                self._expect_keyword("on")
                condition = self.parse_expression()
                source = ast.Join(source, right, "left", condition)
            elif token.is_keyword("cross"):
                self._advance()
                self._expect_keyword("join")
                right = self._parse_source_primary()
                source = ast.Join(source, right, "inner", None)
            elif token.type is TokenType.PUNCT and token.text == ",":
                self._advance()
                right = self._parse_source_primary()
                source = ast.Join(source, right, "inner", None)
            else:
                return source

    def _parse_source_primary(self) -> ast.Source:
        if self._accept_punct("("):
            query = self.parse_query()
            self._expect_punct(")")
            self._accept_keyword("as")
            alias = self._expect_ident()
            return ast.SubquerySource(query, alias)
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return ast.TableRef(name, alias)

    # -- expressions ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = ast.BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = ast.BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("not"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()
        token = self._peek()

        if token.type is TokenType.OPERATOR and token.text in _COMPARISONS:
            op = self._advance().text
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._parse_additive())

        negated = False
        if token.is_keyword("not"):
            # NOT BETWEEN / NOT IN / NOT LIKE
            lookahead = self._peek(1)
            if lookahead.is_keyword("between", "in", "like"):
                self._advance()
                negated = True
                token = self._peek()

        if token.is_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)

        if token.is_keyword("in"):
            self._advance()
            self._expect_punct("(")
            if self._peek().is_keyword("select"):
                query = self.parse_query()
                self._expect_punct(")")
                return ast.InSubquery(left, query, negated)
            items = [self.parse_expression()]
            while self._accept_punct(","):
                items.append(self.parse_expression())
            self._expect_punct(")")
            return ast.InList(left, items, negated)

        if token.is_keyword("like"):
            self._advance()
            return ast.Like(left, self._parse_additive(), negated)

        if token.is_keyword("is"):
            self._advance()
            is_negated = bool(self._accept_keyword("not"))
            self._expect_keyword("null")
            return ast.IsNull(left, is_negated)

        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in ("+", "-", "||"):
                op = self._advance().text
                right = self._parse_multiplicative()
                if op == "||":
                    left = ast.FunctionCall("concat", [left, right])
                else:
                    left = ast.BinaryOp(op, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in ("*", "/", "%"):
                op = self._advance().text
                left = ast.BinaryOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "-":
            self._advance()
            return ast.UnaryOp("-", self._parse_unary())
        if token.type is TokenType.OPERATOR and token.text == "+":
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))

        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)

        if token.is_keyword("null"):
            self._advance()
            return ast.Literal(None)

        if token.is_keyword("true"):
            self._advance()
            return ast.Literal(True)

        if token.is_keyword("false"):
            self._advance()
            return ast.Literal(False)

        if token.is_keyword("case"):
            return self._parse_case()

        if token.is_keyword("cast"):
            self._advance()
            self._expect_punct("(")
            operand = self.parse_expression()
            self._expect_keyword("as")
            type_token = self._peek()
            if type_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise self._error("expected type name in CAST")
            self._advance()
            self._expect_punct(")")
            return ast.Cast(operand, type_token.text)

        if token.type is TokenType.PUNCT and token.text == "(":
            self._advance()
            inner = self.parse_expression()
            self._expect_punct(")")
            return inner

        if token.type is TokenType.IDENT or token.is_keyword("if"):
            name = self._advance().text
            if self._peek().type is TokenType.PUNCT and self._peek().text == "(":
                self._advance()
                distinct = bool(self._accept_keyword("distinct"))
                args: List[ast.Expression] = []
                if self._peek().type is TokenType.OPERATOR and self._peek().text == "*":
                    self._advance()
                    args.append(ast.Star())
                elif not (
                    self._peek().type is TokenType.PUNCT and self._peek().text == ")"
                ):
                    args.append(self.parse_expression())
                    while self._accept_punct(","):
                        args.append(self.parse_expression())
                self._expect_punct(")")
                return ast.FunctionCall(name.lower(), args, distinct)
            if self._accept_punct("."):
                follower = self._peek()
                if follower.type is TokenType.OPERATOR and follower.text == "*":
                    self._advance()
                    return ast.Star(table=name)
                column = self._expect_ident()
                return ast.ColumnRef(column, table=name)
            return ast.ColumnRef(name)

        raise self._error("expected an expression")

    def _parse_case(self) -> ast.Expression:
        self._expect_keyword("case")
        branches = []
        while self._accept_keyword("when"):
            condition = self.parse_expression()
            self._expect_keyword("then")
            value = self.parse_expression()
            branches.append((condition, value))
        if not branches:
            raise self._error("CASE requires at least one WHEN")
        else_value = None
        if self._accept_keyword("else"):
            else_value = self.parse_expression()
        self._expect_keyword("end")
        return ast.CaseWhen(branches, else_value)


# ---------------------------------------------------------------------------
# module-level helpers
# ---------------------------------------------------------------------------

def parse_script(text: str) -> List[ast.Statement]:
    """Parse a multi-statement (``;``-separated) HiveQL script."""
    return Parser(text).parse_script()


def parse_statement(text: str) -> ast.Statement:
    """Parse exactly one statement."""
    parser = Parser(text)
    statement = parser.parse_statement()
    parser._accept_punct(";")
    if parser._peek().type is not TokenType.EOF:
        raise parser._error("trailing input after statement")
    return statement


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (used in tests)."""
    parser = Parser(text)
    expression = parser.parse_expression()
    if parser._peek().type is not TokenType.EOF:
        raise parser._error("trailing input after expression")
    return expression
