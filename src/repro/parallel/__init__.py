"""Multi-core wall-clock execution for the simulated engines.

The DES stays single-threaded and owns simulated time; the *computation*
of independent map tasks (split scan + operator pipeline + ReduceSink
encoding — pure functions of their inputs) is dispatched to a persistent
pool of worker processes.  See :mod:`repro.parallel.pool` for the
orchestration and :mod:`repro.parallel.compute` for the pure compute
half and the record-replay protocol that keeps simulated seconds and
result digests byte-identical to inline execution.
"""

from repro.parallel.compute import (
    BLOB_FIELDS,
    MapComputeOutcome,
    MapComputeSpec,
    make_batches,
    run_map_compute,
    spec_for_split,
)
from repro.parallel.pool import (
    ComputeFuture,
    PoolError,
    RemoteComputeError,
    WorkerCrashError,
    WorkerPool,
    active_pool,
    get_pool,
    pool_from_conf,
    resolve_compute,
    resolve_workers,
    shutdown,
)

__all__ = [
    "BLOB_FIELDS",
    "MapComputeOutcome",
    "MapComputeSpec",
    "make_batches",
    "run_map_compute",
    "spec_for_split",
    "ComputeFuture",
    "PoolError",
    "RemoteComputeError",
    "WorkerCrashError",
    "WorkerPool",
    "active_pool",
    "get_pool",
    "pool_from_conf",
    "resolve_compute",
    "resolve_workers",
    "shutdown",
]
