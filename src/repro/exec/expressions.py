"""Bound expressions: index-resolved, NULL-aware, compiled to closures.

The analyzer turns parser AST (names) into these nodes (row positions);
``compile_expression`` then produces a plain ``row -> value`` closure so
the per-row hot path has no interpretive dispatch.

Semantics follow Hive:

* three-valued logic — comparisons with NULL yield NULL; ``AND``/``OR``
  propagate unknowns; filters keep a row only when the predicate is
  exactly TRUE;
* ``int / int`` is double division; ``%`` keeps integer semantics;
* ``LIKE`` supports ``%`` and ``_``.
"""

from __future__ import annotations

import operator
import re
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.common.errors import ExecutionError, SemanticError
from repro.common.kv import serialize_fields
from repro.common.rows import DataType
from repro.sql.functions import ScalarFunction

Row = Tuple[object, ...]
Evaluator = Callable[[Row], object]


class BoundExpression:
    """Base class; every node knows its result type."""

    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        raise NotImplementedError


@dataclass
class InputRef(BoundExpression):
    index: int
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        index = self.index
        return lambda row: row[index]


@dataclass
class Const(BoundExpression):
    value: object
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        value = self.value
        return lambda row: value


@dataclass
class Arithmetic(BoundExpression):
    op: str
    left: BoundExpression
    right: BoundExpression
    dtype: DataType = DataType.DOUBLE

    def compile(self) -> Evaluator:
        left, right = self.left.compile(), self.right.compile()
        op = self.op

        if op == "+":
            def evaluate(row):
                a, b = left(row), right(row)
                return None if a is None or b is None else a + b
        elif op == "-":
            def evaluate(row):
                a, b = left(row), right(row)
                return None if a is None or b is None else a - b
        elif op == "*":
            def evaluate(row):
                a, b = left(row), right(row)
                return None if a is None or b is None else a * b
        elif op == "/":
            def evaluate(row):
                a, b = left(row), right(row)
                if a is None or b is None or b == 0:
                    return None  # Hive yields NULL on division by zero
                return a / b
        elif op == "%":
            def evaluate(row):
                a, b = left(row), right(row)
                if a is None or b is None or b == 0:
                    return None
                return a % b
        else:
            raise ExecutionError(f"unknown arithmetic op {op!r}")
        return evaluate


@dataclass
class Comparison(BoundExpression):
    op: str  # '=', '<>', '<', '<=', '>', '>='
    left: BoundExpression
    right: BoundExpression
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        left, right = self.left.compile(), self.right.compile()
        op = self.op
        if op == "=":
            compare = lambda a, b: a == b
        elif op == "<>":
            compare = lambda a, b: a != b
        elif op == "<":
            compare = lambda a, b: a < b
        elif op == "<=":
            compare = lambda a, b: a <= b
        elif op == ">":
            compare = lambda a, b: a > b
        elif op == ">=":
            compare = lambda a, b: a >= b
        else:
            raise ExecutionError(f"unknown comparison {op!r}")

        def evaluate(row):
            a, b = left(row), right(row)
            if a is None or b is None:
                return None
            return compare(a, b)

        return evaluate


@dataclass
class LogicalAnd(BoundExpression):
    operands: List[BoundExpression] = field(default_factory=list)
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        compiled = [operand.compile() for operand in self.operands]

        def evaluate(row):
            saw_null = False
            for evaluator in compiled:
                value = evaluator(row)
                if value is None:
                    saw_null = True
                elif not value:
                    return False
            return None if saw_null else True

        return evaluate


@dataclass
class LogicalOr(BoundExpression):
    operands: List[BoundExpression] = field(default_factory=list)
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        compiled = [operand.compile() for operand in self.operands]

        def evaluate(row):
            saw_null = False
            for evaluator in compiled:
                value = evaluator(row)
                if value is None:
                    saw_null = True
                elif value:
                    return True
            return None if saw_null else False

        return evaluate


@dataclass
class LogicalNot(BoundExpression):
    operand: BoundExpression = None
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        inner = self.operand.compile()

        def evaluate(row):
            value = inner(row)
            return None if value is None else not value

        return evaluate


@dataclass
class ScalarCall(BoundExpression):
    function: ScalarFunction = None
    args: List[BoundExpression] = field(default_factory=list)
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        impl = self.function.impl
        compiled = [arg.compile() for arg in self.args]
        if len(compiled) == 1:
            only = compiled[0]
            return lambda row: impl(only(row))
        if len(compiled) == 2:
            first, second = compiled
            return lambda row: impl(first(row), second(row))
        return lambda row: impl(*[evaluator(row) for evaluator in compiled])


@dataclass
class CaseExpr(BoundExpression):
    branches: List[Tuple[BoundExpression, BoundExpression]] = field(default_factory=list)
    else_value: Optional[BoundExpression] = None
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        compiled = [(cond.compile(), value.compile()) for cond, value in self.branches]
        otherwise = self.else_value.compile() if self.else_value else (lambda row: None)

        def evaluate(row):
            for condition, value in compiled:
                if condition(row):
                    return value(row)
            return otherwise(row)

        return evaluate


@dataclass
class LikeExpr(BoundExpression):
    operand: BoundExpression = None
    pattern: str = ""
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        regex = re.compile(_like_to_regex(self.pattern), re.DOTALL)
        inner = self.operand.compile()
        negated = self.negated

        def evaluate(row):
            value = inner(row)
            if value is None:
                return None
            matched = regex.fullmatch(str(value)) is not None
            return not matched if negated else matched

        return evaluate


@dataclass
class InSet(BoundExpression):
    """Membership test against a literal set (the common TPC-H shape)."""

    operand: BoundExpression = None
    values: frozenset = frozenset()
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        inner = self.operand.compile()
        values = self.values
        negated = self.negated

        def evaluate(row):
            value = inner(row)
            if value is None:
                return None
            contained = value in values
            return not contained if negated else contained

        return evaluate


@dataclass
class IsNullExpr(BoundExpression):
    operand: BoundExpression = None
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        inner = self.operand.compile()
        negated = self.negated
        if negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None


@dataclass
class CastExpr(BoundExpression):
    operand: BoundExpression = None
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        inner = self.operand.compile()
        target = self.dtype

        def evaluate(row):
            value = inner(row)
            if value is None:
                return None
            try:
                if target in (DataType.INT, DataType.BIGINT):
                    return int(float(value))
                if target is DataType.DOUBLE:
                    return float(value)
                if target is DataType.BOOLEAN:
                    return bool(value)
                return str(value)
            except (TypeError, ValueError):
                return None  # Hive casts malformed values to NULL

        return evaluate


def _like_to_regex(pattern: str) -> str:
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return "".join(out)


class _CodegenUnsupported(Exception):
    """Raised while emitting source for a node codegen can't express."""


_ARITH_TEMPLATES = {
    "+": "{n} = None if {a} is None or {b} is None else {a} + {b}",
    "-": "{n} = None if {a} is None or {b} is None else {a} - {b}",
    "*": "{n} = None if {a} is None or {b} is None else {a} * {b}",
    "/": "{n} = None if {a} is None or {b} is None or {b} == 0 else {a} / {b}",
    "%": "{n} = None if {a} is None or {b} is None or {b} == 0 else {a} % {b}",
}

_COMPARE_OPS = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _emit(expression: BoundExpression, lines: List[str], env: dict,
          counter: List[int], indent: str = "    ") -> str:
    """Append statements evaluating *expression*; returns a cheap atom
    (a temp name, ``row[i]`` or a bound constant) holding its value."""
    kind = type(expression)
    if kind is InputRef:
        return f"row[{expression.index}]"
    if kind is Const:
        name = f"c{len(env)}"
        env[name] = expression.value
        return name
    if kind is Arithmetic:
        template = _ARITH_TEMPLATES.get(expression.op)
        if template is None:
            raise _CodegenUnsupported
        a = _emit(expression.left, lines, env, counter, indent)
        b = _emit(expression.right, lines, env, counter, indent)
        name = f"v{counter[0]}"
        counter[0] += 1
        lines.append(indent + template.format(n=name, a=a, b=b))
        return name
    if kind is Comparison:
        pyop = _COMPARE_OPS.get(expression.op)
        if pyop is None:
            raise _CodegenUnsupported
        a = _emit(expression.left, lines, env, counter, indent)
        b = _emit(expression.right, lines, env, counter, indent)
        name = f"v{counter[0]}"
        counter[0] += 1
        lines.append(
            f"{indent}{name} = None if {a} is None or {b} is None "
            f"else {a} {pyop} {b}"
        )
        return name
    if kind is ScalarCall:
        args = [_emit(arg, lines, env, counter, indent) for arg in expression.args]
        impl_name = f"f{len(env)}"
        env[impl_name] = expression.function.impl
        name = f"v{counter[0]}"
        counter[0] += 1
        lines.append(f"{indent}{name} = {impl_name}({', '.join(args)})")
        return name
    if kind is IsNullExpr:
        atom = _emit(expression.operand, lines, env, counter, indent)
        name = f"v{counter[0]}"
        counter[0] += 1
        test = "is not None" if expression.negated else "is None"
        lines.append(f"{indent}{name} = {atom} {test}")
        return name
    if kind is InSet:
        atom = _emit(expression.operand, lines, env, counter, indent)
        set_name = f"c{len(env)}"
        env[set_name] = expression.values
        name = f"v{counter[0]}"
        counter[0] += 1
        membership = "not in" if expression.negated else "in"
        lines.append(
            f"{indent}{name} = None if {atom} is None "
            f"else {atom} {membership} {set_name}"
        )
        return name
    if kind is LogicalNot:
        atom = _emit(expression.operand, lines, env, counter, indent)
        name = f"v{counter[0]}"
        counter[0] += 1
        lines.append(f"{indent}{name} = None if {atom} is None else not {atom}")
        return name
    if kind is LogicalAnd or kind is LogicalOr:
        return _emit_logical(
            expression.operands, kind is LogicalAnd, lines, env, counter, indent
        )
    raise _CodegenUnsupported


def _emit_logical(operands: List[BoundExpression], is_and: bool,
                  lines: List[str], env: dict, counter: List[int],
                  indent: str) -> str:
    """Three-valued AND/OR with the closure compiler's exact short-circuit:
    stop at the first definitive operand (falsy for AND, truthy for OR),
    otherwise remember NULLs and keep going.  Later operands nest inside
    the continue-branch so they are only evaluated when reached."""
    if not operands:
        raise _CodegenUnsupported
    result = f"v{counter[0]}"
    saw_null = f"v{counter[0] + 1}"
    counter[0] += 2
    lines.append(f"{indent}{saw_null} = False")
    definitive = "False" if is_and else "True"
    exhausted = "True" if is_and else "False"

    def emit_rest(rest: List[BoundExpression], level: str) -> None:
        if not rest:
            lines.append(
                f"{level}{result} = None if {saw_null} else {exhausted}"
            )
            return
        atom = _emit(rest[0], lines, env, counter, level)
        lines.append(f"{level}if {atom} is None:")
        lines.append(f"{level}    {saw_null} = True")
        # continue past NULLs and non-definitive values
        if is_and:
            lines.append(f"{level}if {atom} is None or {atom}:")
        else:
            lines.append(f"{level}if {atom} is None or not {atom}:")
        emit_rest(rest[1:], level + "    ")
        lines.append(f"{level}else:")
        lines.append(f"{level}    {result} = {definitive}")

    emit_rest(list(operands), indent)
    return result


def _codegen_many(expressions: List[BoundExpression]) -> Optional[Callable[[Row], Row]]:
    """Fuse a projection list into ONE generated function.

    The closure tree built by :meth:`BoundExpression.compile` pays a
    Python call per node per row; for the arithmetic-heavy projections
    of aggregation queries that dominates the profile.  Emitting the
    whole list as straight-line source collapses it to a single frame.
    Returns None when any node falls outside the supported subset (the
    caller keeps the closure path as ground truth and fallback).
    """
    lines: List[str] = []
    env: dict = {}
    counter = [0]
    try:
        atoms = [_emit(expression, lines, env, counter) for expression in expressions]
    except _CodegenUnsupported:
        return None
    tuple_src = ", ".join(atoms) + ("," if len(atoms) == 1 else "")
    source = "def _projection(row):\n" + "\n".join(lines) + \
        f"\n    return ({tuple_src})"
    exec(compile(source, "<repro-exec-codegen>", "exec"), env)
    return env["_projection"]


def codegen_group_update(
    aggregates: List[Tuple[object, Optional[BoundExpression]]],
) -> Optional[Tuple[Callable[[Row, list], None], list]]:
    """Fuse a GROUP BY's per-row work into one ``(row, acc) -> None`` call.

    For count/sum/avg — whose accumulators are plain value tuples and
    whose ``partial()`` is the accumulator itself — the per-aggregate
    ``update`` dispatch can be generated inline over a flat, mutable slot
    list: no tuple reallocation per row, one Python frame for the whole
    aggregate set.  Returns ``(update, initial_slots)`` where
    ``initial_slots`` is the concatenation of every aggregate's
    ``create()`` tuple (so ``tuple(acc)`` is exactly the concatenated
    partials at flush time), or None when any aggregate or argument
    falls outside the fusable subset.
    """
    from repro.sql.functions import AvgAggregate, CountAggregate, SumAggregate

    if not aggregates:
        return None
    lines: List[str] = []
    env: dict = {}
    counter = [0]
    initial: list = []
    try:
        for aggregate, arg in aggregates:
            kind = type(aggregate)
            atom = _emit(
                arg if arg is not None else Const(True), lines, env, counter
            )
            slot = len(initial)
            if kind is CountAggregate:
                initial.append(0)
                lines.append(f"    if {atom} is not None:")
                lines.append(f"        acc[{slot}] += 1")
            elif kind is SumAggregate:
                initial.append(None)
                lines.append(f"    if {atom} is not None:")
                lines.append(f"        s{slot} = acc[{slot}]")
                lines.append(
                    f"        acc[{slot}] = {atom} if s{slot} is None "
                    f"else s{slot} + {atom}"
                )
            elif kind is AvgAggregate:
                initial.extend([0.0, 0])
                lines.append(f"    if {atom} is not None:")
                lines.append(f"        acc[{slot}] += {atom}")
                lines.append(f"        acc[{slot + 1}] += 1")
            else:
                raise _CodegenUnsupported
    except _CodegenUnsupported:
        return None
    source = "def _update_group(row, acc):\n" + "\n".join(lines)
    exec(compile(source, "<repro-exec-codegen>", "exec"), env)
    return env["_update_group"], initial


def compile_expression(expression: BoundExpression) -> Evaluator:
    """Compile one expression, preferring generated straight-line code.

    Filter predicates evaluate once per input row; when the expression is
    inside the codegen subset this avoids a Python call per tree node.
    Falls back to the closure compiler for everything else.
    """
    lines: List[str] = []
    env: dict = {}
    counter = [0]
    try:
        atom = _emit(expression, lines, env, counter)
    except _CodegenUnsupported:
        return expression.compile()
    source = "def _evaluate(row):\n" + "\n".join(lines) + f"\n    return {atom}"
    exec(compile(source, "<repro-exec-codegen>", "exec"), env)
    return env["_evaluate"]


def compile_many(expressions: List[BoundExpression]) -> Callable[[Row], Row]:
    """Compile a projection list into a ``row -> tuple`` closure.

    Projection lists sit on the innermost loop of every operator, so the
    common shapes get dedicated fast paths: an all-column-reference list
    becomes a single ``itemgetter``, the arithmetic/comparison subset is
    code-generated into one function (see :func:`_codegen_many`), and
    small arities unroll the tuple construction instead of paying a
    generator per row.
    """
    if not expressions:
        return lambda row: ()
    if all(type(expression) is InputRef for expression in expressions):
        indices = [expression.index for expression in expressions]
        if len(indices) == 1:
            index = indices[0]
            return lambda row: (row[index],)
        return operator.itemgetter(*indices)
    generated = _codegen_many(expressions)
    if generated is not None:
        return generated
    compiled = [expression.compile() for expression in expressions]
    if len(compiled) == 1:
        only = compiled[0]
        return lambda row: (only(row),)
    if len(compiled) == 2:
        first, second = compiled
        return lambda row: (first(row), second(row))
    if len(compiled) == 3:
        first, second, third = compiled
        return lambda row: (first(row), second(row), third(row))
    if len(compiled) == 4:
        first, second, third, fourth = compiled
        return lambda row: (first(row), second(row), third(row), fourth(row))
    return lambda row: tuple(evaluator(row) for evaluator in compiled)


def stable_hash(fields: Tuple[object, ...]) -> int:
    """Deterministic cross-process hash of a key tuple (CRC32 of the wire
    encoding) — Python's builtin ``hash`` is salted per process, which
    would make the two engines partition differently."""
    return zlib.crc32(serialize_fields(fields)) & 0x7FFFFFFF


def require_boolean(expression: BoundExpression, context: str) -> BoundExpression:
    if expression.dtype is not DataType.BOOLEAN:
        raise SemanticError(f"{context} must be boolean, got {expression.dtype}")
    return expression
