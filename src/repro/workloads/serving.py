"""Open-loop serving workload: traffic-at-scale against the scheduler.

The paper benchmarks one query at a time; a production warehouse serves
*traffic* — queries arrive on their own clock whether or not the cluster
has caught up (an **open loop**: arrivals never wait for completions, so
backlogs are visible instead of self-throttled away).  This module
generates that traffic deterministically and reports SLO metrics:

* **arrival process** — seeded Poisson (exponential inter-arrivals at a
  mean rate) or bursty (a duty cycle alternating a high-rate burst phase
  and a low-rate lull, same long-run mean rate);
* **popularity** — Zipf-skewed choice over a query catalog (the TPC-H /
  HiBench mix by default), so a handful of hot queries dominate exactly
  the way dashboard traffic does — and the way result caches get their
  hit rates;
* **sessions** — thousands of logical client sessions, each pinned to a
  scheduler pool by seeded weighted choice; every arrival is some
  session's ``Session.submit``.

:func:`run_serving` drives the arrivals through one shared-cluster
scheduler inside the simulation and distills a :class:`ServingReport`:
p50/p95/p99 submit-to-finish latency, queue depth over time, rejection
and deadline-miss rates — per admission policy, via
``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import AdmissionRejectedError, ConfigError
from repro.common.rng import derive_rng
from repro.workloads.hibench import ZipfSampler

#: Default catalog: read-only HiBench-style aggregates/joins over the
#: hivebench tables (see :func:`load_serving_warehouse`).  SELECT forms
#: only — concurrent INSERTs into one output table are not a serving
#: workload, they are a write conflict.
SERVING_CATALOG: Tuple[str, ...] = (
    "SELECT sourceip, SUM(adrevenue) FROM uservisits GROUP BY sourceip",
    "SELECT countrycode, count(*), sum(adrevenue) FROM uservisits "
    "GROUP BY countrycode",
    "SELECT searchword, avg(duration) FROM uservisits GROUP BY searchword",
    "SELECT count(*) FROM uservisits WHERE visitdate >= '1999-07-01'",
    "SELECT languagecode, count(*) FROM uservisits GROUP BY languagecode",
    "SELECT avg(pagerank) FROM rankings WHERE pagerank > 500",
    "SELECT count(*) FROM rankings",
    "SELECT r.pageurl, r.pagerank FROM rankings r ORDER BY r.pagerank DESC "
    "LIMIT 10",
)


def load_serving_warehouse(hdfs, metastore, nominal_gb: float = 2.0,
                           sample_uservisits: int = 4000) -> None:
    """Populate the tables :data:`SERVING_CATALOG` queries (a small
    HiBench hivebench warehouse — serving stresses *scheduling*, so the
    per-query work is kept modest on purpose)."""
    from repro.workloads.hibench import load_hibench

    load_hibench(hdfs, metastore, nominal_gb=nominal_gb,
                 sample_uservisits=sample_uservisits)


@dataclass(frozen=True)
class ServingConfig:
    """Deterministic description of one serving run's traffic.

    ``rate`` is the long-run mean arrival rate in queries per simulated
    second for both processes.  Bursty traffic alternates, every
    ``burst_cycle`` seconds, a burst phase (``burst_fraction`` of the
    cycle at ``burst_factor`` times the mean rate) and a lull at the
    complementary rate, so the long-run mean still equals ``rate``.

    ``pool_weights`` spreads the ``num_sessions`` logical sessions over
    scheduler pools by seeded weighted choice; every arrival inherits
    its session's pool.  ``deadline_fraction`` of queries (seeded) carry
    ``deadline`` simulated seconds of submit-to-finish budget.
    """

    num_queries: int = 1000
    num_sessions: int = 200
    process: str = "poisson"  # "poisson" | "bursty"
    rate: float = 8.0
    burst_factor: float = 3.0
    burst_fraction: float = 0.25
    burst_cycle: float = 60.0
    zipf_s: float = 1.1
    pool_weights: Mapping[str, float] = field(
        default_factory=lambda: {"default": 1.0}
    )
    deadline: Optional[float] = None
    deadline_fraction: float = 0.0
    seed: int = 0
    catalog: Sequence[str] = SERVING_CATALOG

    def __post_init__(self):
        if self.num_queries < 1:
            raise ConfigError("serving needs at least one query")
        if self.num_sessions < 1:
            raise ConfigError("serving needs at least one session")
        if self.process not in ("poisson", "bursty"):
            raise ConfigError(
                f"unknown arrival process {self.process!r} "
                "(expected poisson or bursty)"
            )
        if self.rate <= 0:
            raise ConfigError(f"arrival rate must be positive: {self.rate}")
        if not self.catalog:
            raise ConfigError("serving needs a non-empty query catalog")
        if not self.pool_weights:
            raise ConfigError("serving needs at least one pool weight")
        if any(weight <= 0 for weight in self.pool_weights.values()):
            raise ConfigError("pool weights must be positive")
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise ConfigError(
                f"deadline fraction must be in [0, 1]: {self.deadline_fraction}"
            )
        if self.deadline_fraction > 0 and (
            self.deadline is None or self.deadline <= 0
        ):
            raise ConfigError("deadline fraction needs a positive deadline")
        if self.process == "bursty":
            if not 0.0 < self.burst_fraction < 1.0:
                raise ConfigError(
                    f"burst fraction must be in (0, 1): {self.burst_fraction}"
                )
            if self.burst_factor <= 1.0:
                raise ConfigError(
                    f"burst factor must exceed 1: {self.burst_factor}"
                )
            if self.burst_cycle <= 0:
                raise ConfigError(
                    f"burst cycle must be positive: {self.burst_cycle}"
                )
            if self.burst_factor * self.burst_fraction >= 1.0:
                raise ConfigError(
                    "burst factor x fraction must stay below 1 so the lull "
                    f"rate is positive (got {self.burst_factor} x "
                    f"{self.burst_fraction})"
                )

    @property
    def lull_rate(self) -> float:
        """Lull-phase rate making the bursty long-run mean equal ``rate``."""
        return (self.rate * (1.0 - self.burst_factor * self.burst_fraction)
                / (1.0 - self.burst_fraction))


@dataclass(frozen=True)
class Arrival:
    """One query arrival: a session submits one catalog query."""

    when: float
    session: int
    pool: str
    query_index: int
    sql: str
    deadline: Optional[float]


def generate_arrivals(config: ServingConfig) -> List[Arrival]:
    """The full arrival schedule, sorted by time — pure and seeded, so
    the same config always produces the identical traffic (the serving
    benches and the soak test replay on this)."""
    rng_time = derive_rng("serving.arrivals", config.seed, config.process)
    rng_query = derive_rng("serving.popularity", config.seed)
    rng_session = derive_rng("serving.sessions", config.seed)
    rng_deadline = derive_rng("serving.deadlines", config.seed)

    pools = list(config.pool_weights)
    weights = [config.pool_weights[name] for name in pools]
    session_pools = rng_session.choices(pools, weights=weights,
                                        k=config.num_sessions)
    zipf = ZipfSampler(len(config.catalog), config.zipf_s, rng_query)

    arrivals: List[Arrival] = []
    now = 0.0
    for _ in range(config.num_queries):
        now += rng_time.expovariate(self_rate(config, now))
        session = rng_session.randrange(config.num_sessions)
        query_index = zipf.sample()
        deadline = None
        if config.deadline_fraction > 0 and (
            rng_deadline.random() < config.deadline_fraction
        ):
            deadline = config.deadline
        arrivals.append(Arrival(
            when=now,
            session=session,
            pool=session_pools[session],
            query_index=query_index,
            sql=config.catalog[query_index],
            deadline=deadline,
        ))
    return arrivals


def self_rate(config: ServingConfig, now: float) -> float:
    """Instantaneous arrival rate at simulated time *now*."""
    if config.process == "poisson":
        return config.rate
    phase = now % config.burst_cycle
    if phase < config.burst_fraction * config.burst_cycle:
        return config.rate * config.burst_factor
    return config.lull_rate


def _nearest_rank(ordered: Sequence[float], q: float) -> Optional[float]:
    if not ordered:
        return None
    rank = min(len(ordered) - 1,
               max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def _decimate(samples: List[Tuple[float, int]],
              limit: int) -> List[Tuple[float, int]]:
    if len(samples) <= limit:
        return list(samples)
    stride = (len(samples) + limit - 1) // limit
    kept = samples[::stride]
    if kept[-1] != samples[-1]:
        kept.append(samples[-1])
    return kept


@dataclass
class ServingReport:
    """SLO metrics for one serving run under one admission policy."""

    engine: str
    policy: str
    offered: int                      # arrivals generated
    submitted: int                    # accepted by admission control
    rejected: int
    succeeded: int
    failed: int
    cancelled: int
    deadline_misses: int
    makespan: float                   # simulated seconds, last finish
    latency_p50: Optional[float]      # submit-to-finish, succeeded queries
    latency_p95: Optional[float]
    latency_p99: Optional[float]
    latency_mean: Optional[float]
    latency_max: Optional[float]
    queue_depth_peak: int
    queue_depth_mean: float
    queue_depth_series: List[Tuple[float, int]]  # decimated (time, depth)
    per_pool_submitted: Dict[str, int]
    sessions: int

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        return self.deadline_misses / self.offered if self.offered else 0.0

    @property
    def throughput(self) -> float:
        """Completed queries per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return self.succeeded / self.makespan

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "policy": self.policy,
            "offered": self.offered,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "rejection_rate": round(self.rejection_rate, 6),
            "succeeded": self.succeeded,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": round(self.deadline_miss_rate, 6),
            "makespan_simulated_seconds": round(self.makespan, 3),
            "throughput_qps": round(self.throughput, 3),
            "latency_p50": _round(self.latency_p50),
            "latency_p95": _round(self.latency_p95),
            "latency_p99": _round(self.latency_p99),
            "latency_mean": _round(self.latency_mean),
            "latency_max": _round(self.latency_max),
            "queue_depth_peak": self.queue_depth_peak,
            "queue_depth_mean": round(self.queue_depth_mean, 3),
            "queue_depth_series": [
                [round(when, 3), depth]
                for when, depth in self.queue_depth_series
            ],
            "per_pool_submitted": dict(sorted(self.per_pool_submitted.items())),
            "sessions": self.sessions,
        }


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 4)


def run_serving(session, arrivals: Sequence[Arrival],
                max_queue_samples: int = 256) -> ServingReport:
    """Drive *arrivals* through *session*'s scheduler; report SLOs.

    The dispatcher is one simulated process sleeping between arrivals
    and calling ``Session.submit`` at each — open loop: it never waits
    for a completion, so when service falls behind, the admission queue
    (and the rejection counter, for bounded pools) shows it.  Queue
    depth is sampled at every arrival.
    """
    scheduler = session.scheduler
    sim = scheduler.runtime.sim
    state = {"rejected": 0}
    handles = []
    depth_samples: List[Tuple[float, int]] = []
    per_pool: Dict[str, int] = {}

    def dispatcher():
        for arrival in arrivals:
            delay = arrival.when - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            try:
                handles.append(session.submit(
                    arrival.sql, pool=arrival.pool, deadline=arrival.deadline
                ))
                per_pool[arrival.pool] = per_pool.get(arrival.pool, 0) + 1
            except AdmissionRejectedError:
                state["rejected"] += 1
            depth_samples.append((sim.now, scheduler.queue_depth))

    sim.spawn(dispatcher(), "serving-dispatcher")
    scheduler.drain()

    summary = scheduler.summary()
    latencies = sorted(
        handle.latency for handle in handles
        if handle.latency is not None and handle.status() == "succeeded"
    )
    depths = [depth for _when, depth in depth_samples]
    return ServingReport(
        engine=session.engine_name,
        policy=scheduler.policy,
        offered=len(arrivals),
        submitted=len(handles),
        rejected=state["rejected"],
        succeeded=summary["succeeded"],
        failed=summary["failed"],
        cancelled=summary["cancelled"],
        deadline_misses=summary["deadline_misses"],
        makespan=summary["makespan"],
        latency_p50=_nearest_rank(latencies, 50),
        latency_p95=_nearest_rank(latencies, 95),
        latency_p99=_nearest_rank(latencies, 99),
        latency_mean=(sum(latencies) / len(latencies)) if latencies else None,
        latency_max=latencies[-1] if latencies else None,
        queue_depth_peak=max(depths, default=0),
        queue_depth_mean=(sum(depths) / len(depths)) if depths else 0.0,
        queue_depth_series=_decimate(depth_samples, max_queue_samples),
        per_pool_submitted=per_pool,
        sessions=len({arrival.session for arrival in arrivals}),
    )
