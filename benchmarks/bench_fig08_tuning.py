"""Fig 8 — tuning cache-memory percent and send-queue size.

Paper (§IV-D): over 20 GB HiBench, both workloads peak around
``hive.datampi.memusedpercent = 0.4`` — near 0 the intermediate data
spills to disk, near 1 the application starves and GC hurts — and
performance stabilizes once ``hive.datampi.sendqueue`` exceeds ~6.
"""

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_hibench, run_hibench_query
from repro.reporting.figures import format_series_table, write_csv

MEM_PERCENTS = [0.05, 0.2, 0.4, 0.6, 0.8, 0.95]
QUEUE_SIZES = [1, 2, 4, 6, 8, 12]


def _experiment():
    hdfs, metastore = fresh_hibench(20, sample_uservisits=16000)
    memory_series = {"aggregate": [], "join": []}
    for percent in MEM_PERCENTS:
        for which in ("aggregate", "join"):
            run = run_hibench_query(
                "datampi", hdfs, metastore, which,
                conf={"hive.datampi.memusedpercent": percent},
            )
            memory_series[which].append(run.breakdown.total)
    queue_series = {"aggregate": [], "join": []}
    for size in QUEUE_SIZES:
        for which in ("aggregate", "join"):
            run = run_hibench_query(
                "datampi", hdfs, metastore, which,
                conf={"hive.datampi.sendqueue": size},
            )
            queue_series[which].append(run.breakdown.total)
    return memory_series, queue_series


def test_fig08_memory_and_sendqueue_tuning(benchmark):
    memory_series, queue_series = run_once(benchmark, _experiment)

    emit(format_series_table(
        "Fig 8(a) cache-memory percent", "memusedpercent", MEM_PERCENTS, memory_series
    ))
    emit(format_series_table(
        "Fig 8(b) send queue size", "sendqueue", QUEUE_SIZES, queue_series
    ))
    write_csv(
        results_path("fig08_tuning.csv"),
        ["knob", "value", "workload", "seconds"],
        [["memusedpercent", p, w, round(memory_series[w][i], 2)]
         for i, p in enumerate(MEM_PERCENTS) for w in memory_series]
        + [["sendqueue", q, w, round(queue_series[w][i], 2)]
           for i, q in enumerate(QUEUE_SIZES) for w in queue_series],
    )

    for which, series in memory_series.items():
        best = MEM_PERCENTS[series.index(min(series))]
        emit(f"{which}: best memusedpercent = {best} (paper: 0.4)")
        # U-shape: both extremes are worse than the sweet spot
        assert series[0] > min(series), f"{which}: low percent should spill"
        assert series[-1] > min(series), f"{which}: high percent should GC-thrash"
        assert best in (0.2, 0.4, 0.6)

    for which, series in queue_series.items():
        stable = series[QUEUE_SIZES.index(6):]
        drift = (max(stable) - min(stable)) / min(stable)
        emit(f"{which}: queue-size drift beyond 6: {100 * drift:.1f}%")
        assert drift < 0.25, "performance should be stable for sendqueue >= 6"
