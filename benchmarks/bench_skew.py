"""Skew-join benchmark: SharesSkew-style split vs plain shuffle.

A Zipf-distributed fact table joins a uniform dim table after ANALYZE
has populated the heavy-hitter sketches, with the map-join threshold
forced down so the plan is a shuffle join.  For each engine and skew
factor the join runs twice — splitting disabled (one reducer owns each
hot key) and enabled (hot keys round-robin across reducers, the dim
side replicated) — and reports:

* **max reducer share** — the hot reducer's fraction of shuffled bytes
  (the tail that sets shuffle-stage latency);
* **simulated seconds** — end-to-end query time under the cost model.

Every run cross-checks correctness: rows with and without splitting
must be byte-identical to each other and to the local reference
executor.

Standalone (the check.sh gate runs it with ``CHECK_SKEW_FULL=1``)::

    python benchmarks/bench_skew.py [--smoke] [--output OUT.json]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))  # benchhelpers
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # runnable without an installed package
    sys.path.insert(0, _SRC)

from benchhelpers import results_path  # noqa: E402

from repro import HDFS, Metastore, connect  # noqa: E402
from repro.common.config import (  # noqa: E402
    HIVE_MAPJOIN_SMALLTABLE_BYTES,
    SKEWJOIN_THRESHOLD,
)
from repro.common.rows import Schema  # noqa: E402

ENGINES = ("hadoop", "datampi", "llap")
NUM_KEYS = 50
SQL = (
    "SELECT f.k, f.v, d.label FROM fact f JOIN dim d ON f.k = d.k "
    "ORDER BY f.k, f.v, d.label"
)
JOIN_CONF = {
    HIVE_MAPJOIN_SMALLTABLE_BYTES: 1,            # force a shuffle join
    "hive.exec.reducers.bytes.per.reducer": 600,  # force many reducers
}
SPLIT_THRESHOLD = 0.1  # split any key holding >= 10% of the fact rows


def config(smoke: bool):
    if smoke:
        return {"rows": 2000, "alphas": (1.6,)}
    return {"rows": 8000, "alphas": (0.8, 1.2, 1.6)}


def zipf_keys(alpha: float, count: int, seed: int = 17):
    weights = [1.0 / math.pow(rank + 1, alpha) for rank in range(NUM_KEYS)]
    total = sum(weights)
    cumulative, acc = [], 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    rng = random.Random(seed)
    return [
        next(i for i, edge in enumerate(cumulative) if rng_value <= edge)
        for rng_value in (rng.random() for _ in range(count))
    ]


def build_warehouse(alpha: float, rows: int):
    hdfs = HDFS(num_workers=7)
    metastore = Metastore(hdfs)
    dim_schema = Schema.parse("k int, label string")
    fact_schema = Schema.parse("k int, v int")
    dim = metastore.create_table("dim", dim_schema, format_name="sequence")
    fact = metastore.create_table("fact", fact_schema, format_name="sequence")
    hdfs.write(f"{dim.location}/part-0", dim_schema,
               [(i, f"L{i}") for i in range(NUM_KEYS)], format_name="sequence")
    keys = zipf_keys(alpha, rows)
    chunk = max(1, rows // 4)
    for part in range(0, rows, chunk):
        hdfs.write(f"{fact.location}/part-{part // chunk}", fact_schema,
                   [(k, part + i) for i, k in enumerate(keys[part:part + chunk])],
                   format_name="sequence")
    return hdfs, metastore


def reference_rows(alpha: float, rows: int):
    hdfs, metastore = build_warehouse(alpha, rows)
    with connect(engine="local", hdfs=hdfs, metastore=metastore,
                 conf=dict(JOIN_CONF)) as session:
        return session.query(SQL).rows


def reducer_shares(result):
    """Per-reducer share of shuffled bytes for the join job."""
    for job in result.execution.jobs:
        tasks = [t for t in job.tasks if t.kind in ("reduce", "a")]
        if job.num_reducers and job.num_reducers > 1 and tasks:
            total = sum(t.kv_bytes for t in tasks)
            if total:
                return [t.kv_bytes / total for t in tasks]
    raise AssertionError("no multi-reducer shuffle job in result")


def run_variant(engine: str, alpha: float, rows: int, threshold: float):
    hdfs, metastore = build_warehouse(alpha, rows)
    conf = dict(JOIN_CONF, **{SKEWJOIN_THRESHOLD: threshold})
    with connect(engine=engine, hdfs=hdfs, metastore=metastore,
                 conf=conf) as session:
        for table in ("fact", "dim"):
            session.execute(
                f"ANALYZE TABLE {table} COMPUTE STATISTICS FOR COLUMNS"
            )
        result = session.query(SQL)
        shares = reducer_shares(result)
    return {
        "rows": result.rows,
        "max_share": max(shares),
        "reducers": len(shares),
        "seconds": result.simulated_seconds,
    }


def run(cfg):
    report = {"config": {"rows": cfg["rows"], "alphas": list(cfg["alphas"]),
                         "split_threshold": SPLIT_THRESHOLD}}
    for alpha in cfg["alphas"]:
        oracle = reference_rows(alpha, cfg["rows"])
        for engine in ENGINES:
            off = run_variant(engine, alpha, cfg["rows"], threshold=0.0)
            on = run_variant(engine, alpha, cfg["rows"], SPLIT_THRESHOLD)
            if off["rows"] != oracle or on["rows"] != oracle:
                raise AssertionError(
                    f"{engine} alpha={alpha}: rows diverged from local oracle"
                )
            report[f"{engine}-a{alpha:g}"] = {
                "plain_max_share": round(off["max_share"], 4),
                "split_max_share": round(on["max_share"], 4),
                "tail_reduction": round(off["max_share"] / on["max_share"], 2),
                "plain_seconds": round(off["seconds"], 3),
                "split_seconds": round(on["seconds"], 3),
                "reducers": on["reducers"],
                "result_rows": len(oracle),
            }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small dataset + one skew factor (CI gate)")
    parser.add_argument("--output", default=results_path("BENCH_skew.json"),
                        help="where to write the JSON report")
    parser.add_argument("--guard-seconds", type=float, default=0.0,
                        metavar="S",
                        help="fail if the whole run takes longer than S "
                             "wall-clock seconds (0 = no guard)")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    cfg = config(args.smoke)
    report = run(cfg)
    elapsed = time.perf_counter() - started
    report["wall_clock_seconds"] = round(elapsed, 3)

    print(f"{'variant':>16} {'plain max':>10} {'split max':>10} "
          f"{'tail x':>7} {'plain s':>9} {'split s':>9}")
    for alpha in cfg["alphas"]:
        for engine in ENGINES:
            cell = report[f"{engine}-a{alpha:g}"]
            print(f"{engine + '-a' + format(alpha, 'g'):>16} "
                  f"{cell['plain_max_share']:>10.3f} "
                  f"{cell['split_max_share']:>10.3f} "
                  f"{cell['tail_reduction']:>7.2f} "
                  f"{cell['plain_seconds']:>9.1f} "
                  f"{cell['split_seconds']:>9.1f}")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")

    # acceptance: on the most skewed workload at least two engines must
    # collapse the hot-reducer byte share by >= 2x (rows already proven
    # byte-identical above)
    hottest = max(cfg["alphas"])
    improved = [
        engine for engine in ENGINES
        if report[f"{engine}-a{hottest:g}"]["tail_reduction"] >= 2.0
    ]
    ok = len(improved) >= 2
    if not ok:
        print(f"FAIL: only {improved} reached a 2x hot-reducer reduction "
              f"at alpha={hottest}")
    if args.guard_seconds and elapsed > args.guard_seconds:
        print(f"FAIL: wall clock {elapsed:.1f}s exceeded guard "
              f"{args.guard_seconds:.1f}s")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
