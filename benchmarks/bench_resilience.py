"""Resilience — the cost of recovery: DataMPI gang restart vs MapReduce
task re-execution under identical seeded fault plans.

The paper's speedups come from replacing the MapReduce runtime with an
MPI-style communication world, but that world is also a shared failure
domain: Hadoop re-runs only the attempt that died, while DataMPI must
abort the gang and resubmit the job.  This benchmark injects the same
fault plan into both engines and reports the fraction of job time lost
to recovery — correctness is identical (byte-identical rows), the
difference is purely time.
"""

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_hibench, run_script
from repro.common.config import FAULT_SPEC, RETRY_BACKOFF, RETRY_MAX
from repro.reporting.figures import write_csv

QUERY = "SELECT sourceip, SUM(adrevenue) FROM uservisits GROUP BY sourceip"
RATES = [0.0, 0.05, 0.15, 0.30]
ENGINES = ["hadoop", "datampi"]


def _run(engine, hdfs, metastore, rate):
    conf = {RETRY_MAX: 10, RETRY_BACKOFF: 0.5}
    if rate:
        conf[FAULT_SPEC] = f"seed:11; fail:{rate}"
    return run_script(
        engine, hdfs, metastore, QUERY, label=f"{engine}-f{rate:g}", conf=conf
    )


def _experiment():
    hdfs, metastore = fresh_hibench(20, sample_uservisits=16000)
    table = {}
    for engine in ENGINES:
        clean_rows = None
        for rate in RATES:
            run = _run(engine, hdfs, metastore, rate)
            result = run.results[-1]
            rows = sorted(result.rows)
            if clean_rows is None:
                clean_rows = rows
            assert rows == clean_rows, (engine, rate, "rows diverged under faults")
            execution = result.execution
            table[(engine, rate)] = {
                "seconds": run.simulated_seconds,
                "attempts": result.attempts,
                "failed": sum(job.failed_attempts for job in execution.jobs),
                "restarts": result.restarts,
            }
    return table


def test_resilience_under_identical_faults(benchmark):
    table = run_once(benchmark, _experiment)

    rows = []
    overhead = {}
    for engine in ENGINES:
        base = table[(engine, 0.0)]["seconds"]
        for rate in RATES:
            cell = table[(engine, rate)]
            lost = (cell["seconds"] - base) / base
            overhead[(engine, rate)] = lost
            rows.append(
                [engine, rate, round(cell["seconds"], 2), round(100 * lost, 1),
                 cell["attempts"], cell["failed"], cell["restarts"]]
            )
    write_csv(results_path("resilience.csv"),
              ["engine", "fail_rate", "seconds", "time_lost_pct",
               "attempts", "failed_attempts", "restarts"], rows)

    emit(f"{'engine':>8} {'rate':>5} {'seconds':>9} {'lost%':>6} "
         f"{'attempts':>8} {'failed':>6} {'restarts':>8}")
    for engine, rate, seconds, lost, attempts, failed, restarts in rows:
        emit(f"{engine:>8} {rate:>5.2f} {seconds:>9.2f} {lost:>6.1f} "
             f"{attempts:>8} {failed:>6} {restarts:>8}")

    # shape assertions: both engines pay for faults, and the gang-scheduled
    # engine loses a larger fraction of job time than task-level retry does
    for rate in RATES[1:]:
        assert table[("hadoop", rate)]["failed"] > 0, ("no faults fired", rate)
        assert table[("datampi", rate)]["restarts"] > 0, ("no gang restart", rate)
    moderate = RATES[-1]
    assert overhead[("datampi", moderate)] > overhead[("hadoop", moderate)]
    assert overhead[("hadoop", moderate)] > 0
