"""Property-based cross-engine fuzzing.

Hypothesis generates random (but valid) HiveQL queries over a fixed
schema; every query must produce identical rows on the reference
executor and both simulated engines.  This is the strongest correctness
guarantee in the suite: any divergence in partitioning, sorting,
aggregation or join handling between the engines fails here.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import HDFS, Metastore, connect
from repro.common.rows import Schema
from repro.engines.base import compare_result_rows

SCHEMA = Schema.parse("k int, grp string, val double, flag boolean")
DIM_SCHEMA = Schema.parse("grp string, weight int")


def _build_store():
    rng = random.Random(4242)
    rows = [
        (
            i,
            f"g{rng.randrange(8)}",
            round(rng.uniform(-50, 50), 2) if rng.random() > 0.05 else None,
            rng.random() > 0.5,
        )
        for i in range(600)
    ]
    dims = [(f"g{i}", i * 10) for i in range(6)]  # g6, g7 unmatched
    hdfs = HDFS(num_workers=7)
    metastore = Metastore(hdfs)
    table = metastore.create_table("f", SCHEMA)
    hdfs.write(f"{table.location}/p0", SCHEMA, rows[:300], scale=5e4)
    hdfs.write(f"{table.location}/p1", SCHEMA, rows[300:], scale=5e4)
    dim = metastore.create_table("d", DIM_SCHEMA)
    hdfs.write(f"{dim.location}/p0", DIM_SCHEMA, dims, scale=10.0)
    return hdfs, metastore


_STORE = _build_store()

_columns = st.sampled_from(["k", "grp", "val", "flag"])
_aggs = st.sampled_from(
    ["count(*)", "sum(val)", "avg(val)", "min(k)", "max(val)", "count(val)"]
)
_filters = st.sampled_from([
    "k < 300",
    "val > 0",
    "grp IN ('g1', 'g3', 'g5')",
    "grp LIKE 'g%'",
    "val IS NOT NULL",
    "flag",
    "k BETWEEN 100 AND 400",
    "NOT (grp = 'g0')",
    "val > 0 AND k % 2 = 0",
    "grp IN (SELECT grp FROM d WHERE weight >= 20)",
])


@st.composite
def queries(draw):
    kind = draw(st.sampled_from(["project", "aggregate", "join", "union"]))
    where = f" WHERE {draw(_filters)}" if draw(st.booleans()) else ""
    if kind == "project":
        cols = draw(st.lists(_columns, min_size=1, max_size=3, unique=True))
        order = ", ".join(cols)
        limit = draw(st.integers(min_value=1, max_value=50))
        return (
            f"SELECT {', '.join(cols)} FROM f{where} "
            f"ORDER BY {order} DESC, k LIMIT {limit}"
        )
    if kind == "aggregate":
        agg = draw(_aggs)
        return (
            f"SELECT grp, {agg} AS m FROM f{where} "
            "GROUP BY grp ORDER BY grp"
        )
    if kind == "join":
        agg = draw(_aggs)
        join_type = draw(st.sampled_from(["JOIN", "LEFT JOIN"]))
        join_filter = draw(st.sampled_from([
            "", "k < 300", "val > 0", "f.grp IN ('g1', 'g3', 'g5')",
            "val IS NOT NULL", "flag", "k BETWEEN 100 AND 400",
        ]))
        join_where = f" WHERE {join_filter}" if join_filter else ""
        return (
            f"SELECT weight, {agg} AS m FROM f {join_type} d ON f.grp = d.grp"
            f"{join_where} GROUP BY weight ORDER BY weight"
        )
    return (
        f"SELECT grp, count(*) c FROM ("
        f"  SELECT grp FROM f{where} UNION ALL SELECT grp FROM d"
        f") u GROUP BY grp ORDER BY grp"
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(sql=queries())
def test_fuzz_engines_agree(sql):
    hdfs, metastore = _STORE
    reference = connect(engine="local", hdfs=hdfs, metastore=metastore)
    expected = reference.query(sql).rows
    for engine in ("hadoop", "datampi"):
        session = connect(engine=engine, hdfs=hdfs, metastore=metastore)
        actual = session.query(sql).rows
        assert compare_result_rows(expected, actual, ordered=True), (
            f"{engine} disagrees on: {sql}\nexpected {expected[:5]}... "
            f"got {actual[:5]}..."
        )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sql=queries())
def test_fuzz_queries_are_deterministic(sql):
    hdfs, metastore = _STORE
    session = connect(engine="local", hdfs=hdfs, metastore=metastore)
    assert session.query(sql).rows == session.query(sql).rows
