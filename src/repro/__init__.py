"""repro — Hive on DataMPI, reproduced.

A from-scratch Python reproduction of *"Accelerating Apache Hive with
MPI for Data Warehouse Systems"* (ICDCS 2015): a HiveQL compiler, a
simulated HDFS with Text/Sequence/ORC formats, a Hadoop-MapReduce
execution engine and the paper's DataMPI engine, all running real
relational workloads (Intel HiBench, TPC-H) on a discrete-event cluster
simulator calibrated to the paper's 8-node GigE testbed.

Quick start::

    from repro import hive_session
    session = hive_session(engine="datampi")
    session.execute("CREATE TABLE t (k int, v string)")
    ...

See README.md for the full tour and DESIGN.md for the architecture.
"""

from repro.common.config import Configuration
from repro.core.driver import Driver, QueryResult
from repro.engines.datampi import DataMPIEngine
from repro.engines.hadoop import HadoopEngine
from repro.engines.local import LocalEngine
from repro.simulate.cluster import ClusterSpec
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore

__version__ = "1.0.0"


def hive_session(
    engine: str = "datampi",
    num_workers: int = 7,
    conf: Configuration = None,
    spec: ClusterSpec = None,
    hdfs: HDFS = None,
    metastore: Metastore = None,
) -> Driver:
    """Create a ready-to-use Hive session.

    *engine* is ``"datampi"``, ``"hadoop"`` (a.k.a. ``"mr"``) or
    ``"local"`` (functional reference executor, no simulation).  Pass an
    existing *hdfs*/*metastore* pair to share a warehouse between
    sessions (e.g. to run the same tables on both engines).
    """
    if hdfs is None:
        hdfs = HDFS(num_workers=num_workers)
    if metastore is None:
        metastore = Metastore(hdfs)
    spec = spec or ClusterSpec(num_nodes=num_workers + 1)
    name = engine.lower()
    if name in ("datampi", "dm"):
        engine_obj = DataMPIEngine(hdfs, spec=spec)
    elif name in ("hadoop", "mr"):
        engine_obj = HadoopEngine(hdfs, spec=spec)
    elif name == "local":
        engine_obj = LocalEngine(hdfs)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return Driver(hdfs, metastore, engine_obj, conf=conf)


__all__ = [
    "hive_session",
    "Driver",
    "QueryResult",
    "Configuration",
    "HDFS",
    "Metastore",
    "ClusterSpec",
    "HadoopEngine",
    "DataMPIEngine",
    "LocalEngine",
    "__version__",
]
