"""File formats: Text (delimited), Sequence (binary KV) and ORCFile."""

from repro.storage.formats.base import FileFormat, StoredFile, ScanResult, get_format

__all__ = ["FileFormat", "StoredFile", "ScanResult", "get_format"]
