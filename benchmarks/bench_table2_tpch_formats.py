"""Table II — TPC-H with 40 GB data sets: Text vs ORCFile x Hadoop vs
DataMPI (all 22 queries).

Paper: ORCFile is ~22 % faster than Text for both engines; DataMPI
improves on Hadoop by ~20 % (Text) and ~32 % (ORC) on average.
"""

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_tpch, improvement_percent, run_script
from repro.reporting.figures import write_csv
from repro.workloads.tpch import TPCH_QUERY_IDS, tpch_query

SF = 40
SAMPLE = 5000


def _experiment():
    table = {"HAD-TEXT": [], "HAD-ORC": [], "DM-TEXT": [], "DM-ORC": []}
    for format_name, suffix in (("text", "TEXT"), ("orc", "ORC")):
        hdfs, metastore = fresh_tpch(SF, lineitem_sample=SAMPLE, format_name=format_name)
        for query in TPCH_QUERY_IDS:
            script = tpch_query(query, SF)
            for engine, prefix in (("hadoop", "HAD"), ("datampi", "DM")):
                run = run_script(engine, hdfs, metastore, script, label=f"q{query}")
                table[f"{prefix}-{suffix}"].append(run.breakdown.total)
    return table


def test_table2_tpch_text_vs_orc(benchmark):
    table = run_once(benchmark, _experiment)

    header = "case    " + "".join(f"{'Q%d' % q:>9}" for q in TPCH_QUERY_IDS)
    lines = ["== Table II: TPC-H 40 GB (seconds) ==", header, "-" * len(header)]
    for label, values in table.items():
        lines.append(f"{label:<8}" + "".join(f"{value:>9.1f}" for value in values))
    emit("\n".join(lines))
    write_csv(results_path("table2_tpch_formats.csv"),
              ["case"] + [f"q{q}" for q in TPCH_QUERY_IDS],
              [[label] + [round(v, 2) for v in values] for label, values in table.items()])

    text_improvements = [
        improvement_percent(h, d)
        for h, d in zip(table["HAD-TEXT"], table["DM-TEXT"])
    ]
    orc_improvements = [
        improvement_percent(h, d)
        for h, d in zip(table["HAD-ORC"], table["DM-ORC"])
    ]
    orc_gain_hadoop = [
        improvement_percent(t, o)
        for t, o in zip(table["HAD-TEXT"], table["HAD-ORC"])
    ]
    avg = lambda xs: sum(xs) / len(xs)
    emit(f"DataMPI over Hadoop: text {avg(text_improvements):.1f}% (paper ~20%), "
         f"ORC {avg(orc_improvements):.1f}% (paper ~32%)")
    emit(f"ORC over Text on Hadoop: {avg(orc_gain_hadoop):.1f}% (paper ~22%)")

    # shape assertions: who wins and in roughly what band
    assert 10.0 < avg(text_improvements) < 40.0
    assert 15.0 < avg(orc_improvements) < 45.0
    assert avg(orc_gain_hadoop) > 5.0, "ORC must beat Text on average"
    assert all(d < h for h, d in zip(table["HAD-ORC"], table["DM-ORC"])), \
        "DataMPI wins every ORC query"
