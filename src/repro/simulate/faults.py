"""Declarative, seeded fault injection for the cluster simulation.

The paper's central trade-off (§I, §VI) is that Hive-on-MapReduce
tolerates faults at task granularity while the MPI substrate buys speed
with gang-failure semantics.  This module makes that trade-off
mechanical instead of modeled: a :class:`FaultPlan` declares *what goes
wrong and when*, and a :class:`FaultInjector` delivers it through the
event kernel — crashing nodes interrupt every registered task process
mid-flight (via :meth:`repro.simulate.events.Process.interrupt`),
degradation windows change link rates, stragglers slow a node's CPU —
so recovery is something the engines actually have to *do* (release
slots, free memory, discard partial output, re-execute), not a sleep
penalty.

Fault-plan grammar (also accepted via ``repro.faults`` / CLI
``--faults``), clauses separated by ``;``::

    seed:7                     # seed for every probabilistic draw
    fail:0.05                  # per-attempt task failure probability
    crash:w2@40                # worker 2 dies at t=40s, stays dead
    crash:w2@40-90             # ... and recovers at t=90s
    slow:w3x4@10-200           # worker 3 CPU runs 4x slower in [10,200)
    slow:w3x4@10               # ... from t=10s onward
    disk:w1x0.25@5-60          # worker 1 disk at 25% rate in [5,60)
    nic:w4x0.5@0-100           # worker 4 NIC (both directions) at 50%

Worker indices are 0-based positions in ``cluster.workers`` (the paper's
testbed: workers 0..6 behind master node0).  Every draw derives its RNG
from ``(seed, job, task, attempt)`` via :mod:`repro.common.rng`, so runs
are deterministic and independent of event ordering.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.config import FAILURE_RATE, FAULT_SEED, FAULT_SPEC
from repro.common.errors import ConfigError
from repro.common.rng import derive_rng
from repro.simulate.cluster import Cluster
from repro.simulate.events import Process, Simulator


@dataclass(frozen=True)
class NodeCrash:
    """Worker *worker* dies at *at*; optionally rejoins at *recover_at*."""

    worker: int
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self):
        if self.at < 0:
            raise ConfigError(f"crash time must be >= 0: {self.at}")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ConfigError(
                f"recovery ({self.recover_at}) must follow the crash ({self.at})"
            )


@dataclass(frozen=True)
class Degradation:
    """Worker *worker*'s *resource* ("disk" or "nic") runs at
    ``factor`` x nominal rate during [start, end)."""

    worker: int
    resource: str
    factor: float
    start: float
    end: Optional[float] = None

    def __post_init__(self):
        if self.resource not in ("disk", "nic"):
            raise ConfigError(f"unknown degraded resource: {self.resource!r}")
        if not 0 < self.factor <= 1:
            raise ConfigError(f"degradation factor must be in (0,1]: {self.factor}")
        if self.end is not None and self.end <= self.start:
            raise ConfigError("degradation window must have end > start")


@dataclass(frozen=True)
class Straggler:
    """Worker *worker*'s CPU runs *factor* x slower during [start, end)."""

    worker: int
    factor: float
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self):
        if self.factor < 1:
            raise ConfigError(f"straggler factor must be >= 1: {self.factor}")
        if self.end is not None and self.end <= self.start:
            raise ConfigError("straggler window must have end > start")


_CLAUSE = re.compile(
    r"""^(?P<kind>crash|slow|disk|nic)
         :w(?P<worker>\d+)
         (?:x(?P<factor>[0-9.]+))?
         @(?P<start>[0-9.]+)
         (?:-(?P<end>[0-9.]+))?$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run, declared up front."""

    seed: int = 0
    task_failure_rate: float = 0.0
    node_crashes: Tuple[NodeCrash, ...] = ()
    degradations: Tuple[Degradation, ...] = ()
    stragglers: Tuple[Straggler, ...] = ()

    def __post_init__(self):
        if not 0 <= self.task_failure_rate < 1:
            raise ConfigError(
                f"task failure rate must be in [0,1): {self.task_failure_rate}"
            )

    @property
    def empty(self) -> bool:
        return (
            self.task_failure_rate == 0.0
            and not self.node_crashes
            and not self.degradations
            and not self.stragglers
        )

    # -- construction ---------------------------------------------------------
    @staticmethod
    def parse(spec: str, seed: int = 0, task_failure_rate: float = 0.0) -> "FaultPlan":
        """Parse the clause grammar documented at module top."""
        crashes: List[NodeCrash] = []
        degradations: List[Degradation] = []
        stragglers: List[Straggler] = []
        for raw in re.split(r"[;\n]", spec or ""):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed:"):
                seed = int(clause[len("seed:"):])
                continue
            if clause.startswith("fail:"):
                task_failure_rate = float(clause[len("fail:"):])
                continue
            match = _CLAUSE.match(clause)
            if match is None:
                raise ConfigError(f"unparseable fault clause: {clause!r}")
            kind = match.group("kind")
            worker = int(match.group("worker"))
            factor = match.group("factor")
            start = float(match.group("start"))
            end = float(match.group("end")) if match.group("end") else None
            if kind == "crash":
                if factor is not None:
                    raise ConfigError(f"crash takes no factor: {clause!r}")
                crashes.append(NodeCrash(worker, start, recover_at=end))
            elif kind == "slow":
                if factor is None:
                    raise ConfigError(f"slow needs a factor: {clause!r}")
                stragglers.append(Straggler(worker, float(factor), start, end))
            else:  # disk | nic
                if factor is None:
                    raise ConfigError(f"{kind} needs a factor: {clause!r}")
                degradations.append(
                    Degradation(worker, kind, float(factor), start, end)
                )
        return FaultPlan(
            seed=seed,
            task_failure_rate=task_failure_rate,
            node_crashes=tuple(crashes),
            degradations=tuple(degradations),
            stragglers=tuple(stragglers),
        )

    @staticmethod
    def from_conf(conf) -> "FaultPlan":
        """Build the plan a session asked for: the declarative
        ``repro.faults`` spec folded together with the legacy scalar
        ``repro.failure.rate``."""
        return FaultPlan.parse(
            conf.get(FAULT_SPEC, "") or "",
            seed=conf.get_int(FAULT_SEED, 0),
            task_failure_rate=conf.get_float(FAILURE_RATE, 0.0),
        )


@dataclass
class FaultEvent:
    """One fault the injector actually delivered (for ``QueryResult``)."""

    time: float
    kind: str
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out = {"time": self.time, "kind": self.kind}
        out.update(self.detail)
        return out


class FaultInjector:
    """Delivers a :class:`FaultPlan` into a live simulation.

    The engines cooperate through a small contract:

    * every task attempt **registers** its :class:`Process` under the
      worker index it runs on (and unregisters on exit) so a crash can
      interrupt exactly the work that was on the dead machine;
    * scheduling consults :meth:`node_alive` and skips dead nodes;
    * probabilistic per-attempt failures come from :meth:`attempt_doom`,
      whose draws are seeded per (job, task, attempt) and therefore
      identical across runs and engines;
    * engines may :meth:`subscribe_crash` to learn about node loss even
      when nothing of theirs was running there (the Hadoop job tracker
      uses this to invalidate completed map output on the dead node).

    All agenda entries are daemon callbacks: an injector never keeps the
    simulation alive on its own.
    """

    def __init__(self, sim: Simulator, cluster: Cluster, plan: FaultPlan,
                 tracer=None, metrics=None):
        self.sim = sim
        self.cluster = cluster
        self.plan = plan
        self.tracer = tracer
        self.metrics = metrics
        self.events: List[FaultEvent] = []
        self.span = None
        self._registered: Dict[int, Set[Process]] = {}
        self._crash_subscribers: List[Callable[[int], None]] = []
        self._started = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Schedule every planned fault on the simulator agenda."""
        if self._started:
            return
        self._started = True
        if self.plan.empty:
            return
        if self.tracer is not None:
            self.span = self.tracer.start(
                "faults", start=self.sim.now, category="faults"
            )
        for crash in self.plan.node_crashes:
            self.sim.call_at(crash.at, self._crash, crash.worker, daemon=True)
            if crash.recover_at is not None:
                self.sim.call_at(
                    crash.recover_at, self._recover, crash.worker, daemon=True
                )
        for window in self.plan.degradations:
            self.sim.call_at(
                window.start, self._degrade, window, True, daemon=True
            )
            if window.end is not None:
                self.sim.call_at(
                    window.end, self._degrade, window, False, daemon=True
                )
        for straggler in self.plan.stragglers:
            self.sim.call_at(
                straggler.start, self._slowdown, straggler.worker,
                straggler.factor, daemon=True,
            )
            if straggler.end is not None:
                self.sim.call_at(
                    straggler.end, self._slowdown, straggler.worker, 1.0,
                    daemon=True,
                )
        self._refresh_alive_gauge()

    def close(self) -> None:
        if self.span is not None and not self.span.closed:
            self.span.finish(self.sim.now, faults=len(self.events))

    # -- engine contract ------------------------------------------------------
    def node_alive(self, worker_index: int) -> bool:
        return self.cluster.workers[worker_index % len(self.cluster.workers)].alive

    def live_worker_indices(self) -> List[int]:
        return [
            index for index, node in enumerate(self.cluster.workers) if node.alive
        ]

    def register(self, worker_index: int, process: Process) -> None:
        self._registered.setdefault(worker_index, set()).add(process)

    def unregister(self, worker_index: int, process: Process) -> None:
        self._registered.get(worker_index, set()).discard(process)

    def subscribe_crash(self, callback: Callable[[int], None]) -> None:
        self._crash_subscribers.append(callback)

    def unsubscribe_crash(self, callback: Callable[[int], None]) -> None:
        if callback in self._crash_subscribers:
            self._crash_subscribers.remove(callback)

    def attempt_doom(self, job_id: str, task_id: str, attempt: int) -> Optional[float]:
        """Decide whether this attempt fails part-way through.

        Returns the fraction of the attempt's work after which it dies,
        or ``None`` for a clean run.  Seeded per (job, task, attempt):
        the same plan always dooms the same attempts at the same points,
        independent of scheduling order.  Callers must not consult this
        for a task's final permitted attempt — recovery has to converge.
        """
        rate = self.plan.task_failure_rate
        if rate <= 0:
            return None
        rng = derive_rng(self.plan.seed, "attempt-doom", job_id, task_id, attempt)
        if rng.random() >= rate:
            return None
        return 0.05 + 0.90 * rng.random()

    # -- fault delivery -------------------------------------------------------
    def _record(self, kind: str, **detail) -> None:
        event = FaultEvent(self.sim.now, kind, dict(detail))
        self.events.append(event)
        if self.span is not None:
            self.span.add_event(kind, self.sim.now, **detail)
        if self.metrics is not None:
            self.metrics.counter("cluster.faults.injected").add(1)

    def _refresh_alive_gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("cluster.nodes.alive").set(
                len(self.live_worker_indices())
            )

    def _crash(self, worker_index: int) -> None:
        node = self.cluster.workers[worker_index % len(self.cluster.workers)]
        if not node.alive:
            return
        node.alive = False
        self._record("node-crash", worker=worker_index, node=node.name)
        if self.metrics is not None:
            self.metrics.counter("cluster.node.crashes").add(1)
        self._refresh_alive_gauge()
        # interrupt everything running there — the attempt bodies own the
        # cleanup (slots, memory, partial output)
        doomed = list(self._registered.get(worker_index, ()))
        self._registered[worker_index] = set()
        for process in doomed:
            process.interrupt(cause=("node-crash", worker_index))
        for callback in list(self._crash_subscribers):
            callback(worker_index)

    def _recover(self, worker_index: int) -> None:
        node = self.cluster.workers[worker_index % len(self.cluster.workers)]
        if node.alive:
            return
        node.alive = True
        self._record("node-recover", worker=worker_index, node=node.name)
        self._refresh_alive_gauge()

    def _degrade(self, window: Degradation, begin: bool) -> None:
        node = self.cluster.workers[window.worker % len(self.cluster.workers)]
        factor = window.factor if begin else 1.0
        if window.resource == "disk":
            node.disk.set_rate(self.cluster.spec.disk_bandwidth * factor)
        else:
            node.nic_tx.set_rate(self.cluster.spec.nic_bandwidth * factor)
            node.nic_rx.set_rate(self.cluster.spec.nic_bandwidth * factor)
        self._record(
            "degrade-start" if begin else "degrade-end",
            worker=window.worker, resource=window.resource, factor=factor,
        )

    def _slowdown(self, worker_index: int, factor: float) -> None:
        node = self.cluster.workers[worker_index % len(self.cluster.workers)]
        node.slowdown = factor
        self._record(
            "straggle-start" if factor > 1.0 else "straggle-end",
            worker=worker_index, factor=factor,
        )
