"""Hive driver layer: the plug-in point of the paper.

:class:`~repro.core.driver.Driver` plays Hive's Driver role: it compiles
HiveQL statements through the shared analyzer/physical compiler and then
hands the *same* physical plan to whichever execution engine the session
is configured with (``hive.execution.engine`` = ``mr`` or ``datampi``) —
mirroring the paper's plug-in design where only the execution engine is
swapped (§IV-A/B, Table III).
"""

from repro.core.driver import Driver, QueryResult, make_warehouse

__all__ = ["Driver", "QueryResult", "make_warehouse"]
