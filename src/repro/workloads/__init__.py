"""Workloads: Intel HiBench (hivebench), TPC-H, TeraSort.

Each workload module knows how to (a) generate its tables into a
simulated HDFS at *sampled* scale with the paper's logical sizes
(Table I), and (b) produce the HiveQL scripts the paper ran.
"""

from repro.workloads.hibench import (
    load_hibench,
    HIBENCH_AGGREGATE,
    HIBENCH_JOIN,
    hibench_ddl,
)
from repro.workloads.serving import (
    Arrival,
    SERVING_CATALOG,
    ServingConfig,
    ServingReport,
    generate_arrivals,
    load_serving_warehouse,
    run_serving,
)
from repro.workloads.terasort import load_teragen, terasort_job

__all__ = [
    "load_hibench",
    "HIBENCH_AGGREGATE",
    "HIBENCH_JOIN",
    "hibench_ddl",
    "load_teragen",
    "terasort_job",
    "Arrival",
    "SERVING_CATALOG",
    "ServingConfig",
    "ServingReport",
    "generate_arrivals",
    "load_serving_warehouse",
    "run_serving",
]
