"""Reference executor: runs a physical plan functionally, no simulation.

Used as the correctness oracle — integration tests assert that the
Hadoop and DataMPI engines produce exactly the rows this engine produces
— and by unit tests that only care about query semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import Configuration, EXEC_VECTORIZED
from repro.common.kv import KeyValue
from repro.engines.base import (
    Engine,
    EngineCapabilities,
    JobTiming,
    PlanResult,
    decide_num_reducers,
    expand_job_splits,
    final_sorted_rows,
    job_input_scale,
    load_broadcast_tables,
    run_reducer_functionally,
    scan_split,
    scan_split_batch,
    write_task_output,
)
from repro.exec.mapper import ExecMapper
from repro.exec.operators import Collector
from repro.obs import Tracer
from repro.plan.physical import PhysicalPlan
from repro.storage.hdfs import HDFS


class _PartitionedCollector(Collector):
    def __init__(self, num_partitions: int):
        self.partitions: List[List[KeyValue]] = [[] for _ in range(num_partitions)]

    def collect(self, partition: int, pair: KeyValue) -> None:
        self.partitions[partition].append(pair)

    def collect_batch(self, partitions, pairs) -> None:
        partition_lists = self.partitions
        for partition, pair in zip(partitions, pairs):
            partition_lists[partition].append(pair)


class LocalEngine(Engine):
    """Single-process, zero-latency execution of a physical plan."""

    name = "local"
    capabilities = EngineCapabilities(vectorized=True)

    def __init__(self, hdfs: HDFS, max_slots: int = 28):
        self.hdfs = hdfs
        self.max_slots = max_slots

    def run_plan(
        self,
        plan: PhysicalPlan,
        conf: Optional[Configuration] = None,
        with_metrics: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> PlanResult:
        conf = conf or Configuration()
        tracer = tracer or Tracer()
        timings: List[JobTiming] = []
        for index, job in enumerate(plan.jobs):
            is_last = index == len(plan.jobs) - 1
            timing = self._run_job(job, conf, is_last)
            # zero-duration spans: the reference executor has no clock,
            # but QueryResult.trace keeps a uniform shape across engines
            timing.span = tracer.start(
                job.job_id, start=0.0, category="job",
                engine=self.name, job_id=job.job_id,
                num_maps=timing.num_maps, num_reducers=timing.num_reducers,
            ).finish(0.0)
            timings.append(timing)
        rows = final_sorted_rows(plan, self.hdfs)
        return PlanResult(
            rows=rows,
            schema=plan.output_schema,
            jobs=timings,
            engine=self.name,
            spans=[timing.span for timing in timings if timing.span is not None],
        )

    def _run_job(self, job, conf: Configuration, is_last: bool) -> JobTiming:
        hdfs = self.hdfs
        splits = expand_job_splits(job, hdfs)
        small_tables: Dict[str, list] = load_broadcast_tables(job, hdfs)
        scale = job_input_scale(job, hdfs)
        total_bytes = sum(split.logical_bytes for split in splits)
        num_reducers = decide_num_reducers(
            job, len(splits), total_bytes, conf, is_last, self.max_slots
        )
        timing = JobTiming(job_id=job.job_id, num_maps=len(splits), num_reducers=num_reducers)
        vectorized = conf.get_bool(EXEC_VECTORIZED, True)

        if job.is_map_only:
            for task_index, tagged in enumerate(splits):
                scan = scan_split_batch if vectorized else scan_split
                rows, _bytes = scan(tagged)
                mapper = ExecMapper(
                    tagged.operators, collector=None, num_partitions=1,
                    small_tables=small_tables, vectorized=vectorized,
                )
                mapper.process_batch(rows)
                result = mapper.close()
                write_task_output(job, hdfs, task_index, result.output_rows, scale)
            if not splits:
                write_task_output(job, hdfs, 0, [], scale)
            return timing

        collector = _PartitionedCollector(num_reducers)
        for tagged in splits:
            scan = scan_split_batch if vectorized else scan_split
            rows, _bytes = scan(tagged)
            mapper = ExecMapper(
                tagged.operators,
                collector=collector,
                num_partitions=num_reducers,
                small_tables=small_tables,
                vectorized=vectorized,
            )
            mapper.process_batch(rows)
            mapper.close()

        for partition in range(num_reducers):
            output_rows = run_reducer_functionally(
                job, collector.partitions[partition], small_tables
            )
            write_task_output(job, hdfs, partition, output_rows, scale)
        return timing
