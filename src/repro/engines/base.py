"""Engine interface + machinery shared by all engines.

The functional side of running an :class:`~repro.plan.physical.MRJob`
(expanding splits, loading broadcast tables, partition/sort/group, output
writing) is identical across engines; what differs is *when* things
happen and *what they cost*.  This module holds the shared functional
pieces and the timing record model the benchmarks consume.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import (
    Configuration,
    HEARTBEAT_ENABLED,
    HEARTBEAT_INTERVAL,
    HEARTBEAT_SUSPECT,
    HEARTBEAT_TIMEOUT,
    HIVE_DATAMPI_PARALLELISM,
    LEASE_AUDIT,
)
from repro.common.errors import ExecutionError
from repro.common.kv import KeyValue
from repro.common.rows import Schema
from repro.common.units import GB
from repro.exec.mapper import ExecMapper, ExecReducer
from repro.exec.operators import Collector, FileSinkDesc, ListCollector
from repro.exec.reduce import group_sorted_pairs, key_comparator, sort_pairs
from repro.obs import MetricsRegistry, Span, Tracer, get_metrics
from repro.plan.physical import MapInput, MRJob, PhysicalPlan
from repro.simulate import (
    Cluster,
    ClusterSpec,
    FaultInjector,
    FaultPlan,
    LeaseManager,
    LeaseOwner,
    MetricsSampler,
    Simulator,
    SlotPool,
)
from repro.storage.hdfs import HDFS, FileSplit

Row = Tuple[object, ...]

BYTES_PER_REDUCER_DEFAULT = 1 * GB  # hive.exec.reducers.bytes.per.reducer


@dataclass(frozen=True)
class EngineCapabilities:
    """Declared behaviours of an engine, used by the driver and workload
    scheduler to branch on *what an engine can do* rather than on its
    name or concrete class.

    ``shared_runtime`` marks engines whose :meth:`Engine.plan_process`
    can execute inside a caller-owned :class:`EngineRuntime` (required
    for concurrent scheduling).  ``persistent`` marks engines that keep
    daemon state (and caches) alive across queries; ``result_cache``
    opts the engine into the driver-level result cache.
    """

    vectorized: bool = False
    speculative: bool = False
    gang_scheduling: bool = False
    persistent: bool = False
    result_cache: bool = False
    shared_runtime: bool = False

    def as_dict(self) -> Dict[str, bool]:
        return {
            "vectorized": self.vectorized,
            "speculative": self.speculative,
            "gang_scheduling": self.gang_scheduling,
            "persistent": self.persistent,
            "result_cache": self.result_cache,
            "shared_runtime": self.shared_runtime,
        }

    def enabled(self) -> List[str]:
        """Sorted names of the capabilities that are on."""
        return sorted(name for name, on in self.as_dict().items() if on)


# ---------------------------------------------------------------------------
# timing records (what the paper's breakdowns are made of)
# ---------------------------------------------------------------------------

@dataclass
class TaskTiming:
    """One task's lifecycle; times are simulated seconds from query start."""

    task_id: str
    kind: str  # 'map' | 'reduce' | 'o' | 'a'
    node: int = -1
    scheduled: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    rows_read: int = 0
    kv_pairs: int = 0
    kv_bytes: float = 0.0  # logical (scaled) shuffle bytes produced/consumed
    attempts: int = 1  # executions it took (failures + the success)
    speculative: bool = False  # won by a speculative backup attempt
    # instrumentation for Figs 2 and 6
    collect_samples: List[Tuple[float, int]] = field(default_factory=list)
    send_events: List[float] = field(default_factory=list)
    span: Optional[Span] = None  # this task's trace span (child of the job's)


@dataclass
class JobTiming:
    """Per-job phase breakdown matching the paper's methodology (§V-B):

    * ``startup`` — job submitted until the first map/O task is invoked;
    * ``map_shuffle`` — first map start until shuffle data is fully
      available on the reduce side (covers Hadoop's copy phase and
      DataMPI's O phase);
    * ``others`` — the rest (merge/reduce/output/synchronization).
    """

    job_id: str
    submitted: float = 0.0
    first_task_started: float = 0.0
    shuffle_done: float = 0.0
    finished: float = 0.0
    num_maps: int = 0
    num_reducers: int = 0
    shuffle_logical_bytes: float = 0.0
    tasks: List[TaskTiming] = field(default_factory=list)
    restarts: int = 0  # whole-job resubmissions (DataMPI gang recovery)
    failed_attempts: int = 0  # task attempts that died (both engines)
    span: Optional[Span] = None  # this job's trace span (engine-relative time)

    @property
    def total(self) -> float:
        return self.finished - self.submitted

    @property
    def startup(self) -> float:
        return self.first_task_started - self.submitted

    @property
    def map_shuffle(self) -> float:
        return max(0.0, self.shuffle_done - self.first_task_started)

    @property
    def others(self) -> float:
        return max(0.0, self.total - self.startup - self.map_shuffle)


@dataclass
class PlanResult:
    """Outcome of executing a physical plan on one engine."""

    rows: List[Row]
    schema: Schema
    jobs: List[JobTiming] = field(default_factory=list)
    compile_seconds: float = 0.0
    total_seconds: float = 0.0
    engine: str = "local"
    metrics: List[object] = field(default_factory=list)  # ResourceSamples
    spans: List[Span] = field(default_factory=list)  # one job span per job
    fault_events: List[object] = field(default_factory=list)  # FaultEvents delivered
    fallback_from: Optional[str] = None  # engine that degraded onto this one

    @property
    def total_attempts(self) -> int:
        return sum(task.attempts for job in self.jobs for task in job.tasks)

    @property
    def job_seconds(self) -> float:
        return sum(job.total for job in self.jobs)


# ---------------------------------------------------------------------------
# tracing/metrics glue shared by the engines
# ---------------------------------------------------------------------------

def open_job_span(tracer: Tracer, engine_name: str, job: MRJob,
                  start: float,
                  owner: Optional[LeaseOwner] = None) -> Span:
    """Open the per-job root span (engine-relative simulated time).

    Under the workload scheduler, *owner* attributes the span to the
    submitting query and its scheduling pool so concurrent queries'
    jobs stay distinguishable on the shared timeline."""
    attributes = {"engine": engine_name, "job_id": job.job_id}
    if owner is not None:
        attributes["query"] = owner.query_id
        attributes["pool"] = owner.pool
    return tracer.start(job.job_id, start=start, category="job", **attributes)


def close_job_span(timing: JobTiming) -> None:
    """Finish a job span from its timing record, attaching the paper's
    phase sections (startup / map-shuffle / others) as child spans."""
    span = timing.span
    if span is None:
        return
    span.finish(
        timing.finished,
        num_maps=timing.num_maps,
        num_reducers=timing.num_reducers,
        shuffle_bytes=timing.shuffle_logical_bytes,
    )
    for name, start, end in (
        ("startup", timing.submitted, timing.first_task_started),
        ("map-shuffle", timing.first_task_started, timing.shuffle_done),
        ("others", timing.shuffle_done, timing.finished),
    ):
        if end > start:
            span.start_child(name, start, category="phase").finish(end)


def open_task_span(timing: JobTiming, task: TaskTiming) -> Optional[Span]:
    """Open a task span under the job span and remember it on the task."""
    if timing.span is None:
        return None
    task.span = timing.span.start_child(
        task.task_id, task.scheduled, category="task",
        kind=task.kind, node=task.node,
    )
    return task.span


def close_task_span(task: TaskTiming) -> None:
    if task.span is None:
        return
    task.span.finish(
        task.finished,
        rows_read=task.rows_read,
        kv_pairs=task.kv_pairs,
        kv_bytes=task.kv_bytes,
    )


def record_job_metrics(engine_name: str, timing: JobTiming, total_slots: int,
                       registry: Optional[MetricsRegistry] = None) -> None:
    """Fold a finished job's timing into the process-wide registry."""
    metrics = registry or get_metrics()
    metrics.counter(f"{engine_name}.jobs").add(1)
    metrics.counter(f"{engine_name}.shuffle.bytes").add(
        max(0.0, timing.shuffle_logical_bytes)
    )
    metrics.histogram(f"{engine_name}.job.startup_seconds").observe(timing.startup)
    metrics.histogram(f"{engine_name}.job.total_seconds").observe(timing.total)
    if total_slots > 0 and timing.num_maps > 0:
        waves = -(-timing.num_maps // total_slots)  # ceil division
        metrics.histogram(f"{engine_name}.slot.waves").observe(waves)


# ---------------------------------------------------------------------------
# reducer-count policy (paper §IV-D)
# ---------------------------------------------------------------------------

def decide_num_reducers(
    job: MRJob,
    num_maps: int,
    total_input_bytes: float,
    conf: Configuration,
    is_last_job: bool,
    max_slots: int,
) -> int:
    """Hive's reducer heuristic, plus the paper's *enhanced* mode.

    default  : ceil(input bytes / bytes-per-reducer), clamped to the slot
               count — Hive's ``hive.exec.reducers.bytes.per.reducer``;
    enhanced : #A = #O, and 1 for the query's last stage (paper §IV-D).
    Explicit plan hints (ORDER BY's single reducer, cross joins) win.
    """
    if job.is_map_only:
        return 0
    if job.num_reducers_hint is not None:
        return job.num_reducers_hint
    mode = (conf.get(HIVE_DATAMPI_PARALLELISM, "default") or "default").lower()
    if mode == "enhanced":
        if is_last_job:
            return 1
        return max(1, min(num_maps, max_slots))
    bytes_per_reducer = conf.get_float(
        "hive.exec.reducers.bytes.per.reducer", BYTES_PER_REDUCER_DEFAULT
    )
    estimate = int(total_input_bytes / bytes_per_reducer) + 1
    return max(1, min(estimate, max_slots))


# ---------------------------------------------------------------------------
# functional job pieces
# ---------------------------------------------------------------------------

@dataclass
class TaggedSplit:
    """A file split plus the map chain that will consume it."""

    split: FileSplit
    tag: int
    operators: List[object]
    map_input: MapInput

    @property
    def logical_bytes(self) -> float:
        return self.split.logical_bytes


def _partition_pruned(split: FileSplit, conjuncts) -> bool:
    """True if the file's Hive partition values contradict a pushed-down
    conjunct — the whole partition directory is skipped (no task, no I/O)."""
    if not split.partition_values or not conjuncts:
        return False
    for column, op, literal in conjuncts:
        if column not in split.partition_values:
            continue
        value = split.partition_values[column]
        if value is None or literal is None:
            continue
        try:
            satisfied = {
                "=": value == literal,
                "<": value < literal,
                "<=": value <= literal,
                ">": value > literal,
                ">=": value >= literal,
            }.get(op, True)
        except TypeError:
            satisfied = True
        if not satisfied:
            return True
    return False


def expand_job_splits(job: MRJob, hdfs: HDFS) -> List[TaggedSplit]:
    """All input splits of a job, each carrying its operator chain.

    Splits from partitions whose values contradict the input's pushed-down
    conjuncts are pruned here (Hive's partition pruning).
    """
    tagged: List[TaggedSplit] = []
    for map_input in job.inputs:
        conjuncts = map_input.hints.stats_conjuncts
        for split in hdfs.dir_splits(map_input.location):
            if _partition_pruned(split, conjuncts):
                continue
            tagged.append(
                TaggedSplit(
                    split=split,
                    tag=map_input.tag,
                    operators=map_input.operators,
                    map_input=map_input,
                )
            )
    return tagged


def scan_split(tagged: TaggedSplit) -> Tuple[List[Row], float]:
    """Read a split's rows, honoring ORC pruning hints.

    Returns (rows, logical bytes actually read).
    """
    hints = tagged.map_input.hints
    result = tagged.split.stored.scan(
        tagged.split.row_start,
        tagged.split.row_count,
        columns=hints.columns,
        stats_conjuncts=hints.stats_conjuncts or None,
    )
    return result.rows, result.bytes_read * tagged.split.scale


def scan_split_batch(tagged: TaggedSplit):
    """Columnar twin of :func:`scan_split` for the vectorized mode.

    Returns (:class:`~repro.common.rows.ColumnBatch`, logical bytes) —
    the batch holds the same rows in the same order and the byte charge
    is identical, so simulated seconds cannot differ between modes.
    """
    hints = tagged.map_input.hints
    result = tagged.split.stored.scan_batch(
        tagged.split.row_start,
        tagged.split.row_count,
        columns=hints.columns,
        stats_conjuncts=hints.stats_conjuncts or None,
    )
    return result.batch, result.bytes_read * tagged.split.scale


class MapOutputCollector(Collector):
    """Per-map collector bucketing pairs by reduce partition.

    Shared by every cluster engine that materializes map output for a
    shuffle (Hadoop spills it to local disk; LLAP keeps it in daemon
    memory) — the bucketing and byte accounting are identical.
    """

    def __init__(self, num_partitions: int):
        self.partitions: List[List[KeyValue]] = [[] for _ in range(num_partitions)]
        self.partition_bytes: List[int] = [0] * num_partitions

    def collect(self, partition: int, pair: KeyValue) -> None:
        self.partitions[partition].append(pair)
        self.partition_bytes[partition] += pair.serialized_size()

    def collect_batch(self, partitions, pairs) -> None:
        # the vectorized sink pre-seeds every pair's _size memo
        partition_lists = self.partitions
        partition_bytes = self.partition_bytes
        for partition, pair in zip(partitions, pairs):
            partition_lists[partition].append(pair)
            partition_bytes[partition] += pair._size

    @property
    def total_bytes(self) -> int:
        # summed on demand (per batch / at close) instead of maintaining
        # a third counter on the per-pair path
        return sum(self.partition_bytes)


def load_broadcast_tables(job: MRJob, hdfs: HDFS) -> Dict[str, List[Row]]:
    """Load + preprocess every broadcast (map-join) table of a job."""
    small: Dict[str, List[Row]] = {}
    for spec in job.broadcasts:
        rows = hdfs.dir_rows(spec.location)
        if spec.operators:
            mapper = ExecMapper(
                list(spec.operators) + [FileSinkDesc()], collector=None, num_partitions=1
            )
            mapper.process_batch(rows)
            rows = mapper.close().output_rows
        small[spec.location] = rows
    return small


def job_input_scale(job: MRJob, hdfs: HDFS) -> float:
    """Bytes-weighted average scale of a job's inputs (used to scale the
    job's outputs so downstream cost accounting stays consistent)."""
    total_actual = 0.0
    total_logical = 0.0
    for map_input in job.inputs:
        for data_file in hdfs.list_dir(map_input.location):
            total_actual += data_file.stored.total_bytes
            total_logical += data_file.logical_bytes
    if total_actual <= 0:
        return 1.0
    return total_logical / total_actual


def run_reducer_functionally(
    job: MRJob,
    partition_pairs: List[KeyValue],
    small_tables: Optional[Dict[str, List[Row]]] = None,
) -> List[Row]:
    """Sort, group and reduce one partition's pairs; returns output rows."""
    from repro.exec.reduce import ReduceAggregateDesc

    ordered = sort_pairs(partition_pairs, job.sort_directions)
    reducer = ExecReducer(
        job.reduce_logic,
        job.reduce_operators,
        small_tables=small_tables,
    )
    saw_group = False
    for key, values in group_sorted_pairs(ordered):
        saw_group = True
        reducer.reduce_group(key, values)
    if (
        not saw_group
        and isinstance(job.reduce_logic, ReduceAggregateDesc)
        and job.reduce_logic.key_arity == 0
    ):
        # SQL: a global aggregate over zero rows still yields one row
        # (COUNT(*) = 0, SUM = NULL)
        reducer.reduce_group((), [])
    return reducer.close().output_rows


def write_task_output(
    job: MRJob,
    hdfs: HDFS,
    task_index: int,
    rows: Sequence[Row],
    scale: float,
    writer_node: Optional[int] = None,
):
    """Write one task's output part-file under the job's output dir.

    The job id participates in the file name so INSERT INTO (append)
    never collides with files from earlier jobs in the same directory.
    """
    path = f"{job.output_location}/{job.job_id}-part-{task_index:05d}"
    return hdfs.write(
        path,
        job.output_schema,
        rows,
        format_name=job.output_format,
        scale=scale,
        writer_node=writer_node,
        partition_values=job.output_partition_values,
    )


def final_sorted_rows(plan: PhysicalPlan, hdfs: HDFS) -> List[Row]:
    """Assemble the query's final row set from the plan's output dir.

    When the last job was a total ORDER BY, its single part-file is
    already ordered; otherwise part-file order is used (Hive semantics:
    unordered).  ``final_limit`` is applied exactly here.
    """
    rows: List[Row] = []
    for data_file in hdfs.list_dir(plan.output_location):
        rows.extend(data_file.rows)
    last_job = plan.jobs[-1]
    if last_job.sort_directions is not None and last_job.num_reducers_hint == 1:
        pass  # already globally sorted by the single reducer
    if plan.final_limit is not None:
        rows = rows[: plan.final_limit]
    return rows


def hdfs_write_pipeline(cluster, node, data_file):
    """Coroutine charging a replicated HDFS write of *data_file* from
    *node*: the full file hits the local disk; each remote replica gets
    its blocks over the network plus a remote disk write."""
    total = data_file.logical_bytes
    if total <= 0:
        return
    num_workers = len(cluster.workers)
    local_index = node.node_id - 1
    remote_bytes = {}
    for block in data_file.blocks:
        for location in block.locations[1:]:
            replica = location % num_workers
            if replica != local_index:
                remote_bytes[replica] = remote_bytes.get(replica, 0.0) + block.logical_bytes
    yield from node.disk_write(total)
    for replica_index, nbytes in sorted(remote_bytes.items()):
        replica = cluster.workers[replica_index]
        yield from cluster.network_transfer(node, replica, nbytes)
        yield from replica.disk_write(nbytes)


def pick_read_source(cluster, tagged: TaggedSplit, node_index: int) -> Optional[int]:
    """Which worker streams a split to *node_index*: ``None`` for a local
    read, otherwise the first *live* replica host (replica failover when
    a datanode died).  Falls back to the first replica if every replica
    host is down — degenerate, but it keeps the simulation progressing."""
    num_workers = len(cluster.workers)
    hosts = [h % num_workers for h in tagged.split.hosts]
    if node_index in hosts:
        return None
    for host in hosts:
        if cluster.workers[host].alive:
            return host
    return hosts[0] if hosts else None


def assign_splits_locality(splits: Sequence[TaggedSplit], num_workers: int) -> List[int]:
    """Greedy locality-aware task placement shared by both engines: each
    split goes to its least-loaded replica host unless that host is far
    behind the global minimum (then go remote for balance)."""
    load = [0] * num_workers
    assignment: List[int] = []
    for tagged in splits:
        hosts = [h % num_workers for h in tagged.split.hosts] or list(range(num_workers))
        chosen = min(hosts, key=lambda h: (load[h], h))
        if load[chosen] > min(load) + 2:
            chosen = min(range(num_workers), key=lambda h: (load[h], h))
        load[chosen] += 1
        assignment.append(chosen)
    return assignment


class EngineRuntime:
    """One shared simulated cluster any number of plan executions run in.

    Solo mode builds a fresh runtime per ``run_plan`` (exactly the
    simulator/cluster/injector/sampler setup the engines used to own
    privately, in the same construction order, so agenda ordering — and
    therefore every simulated second — is unchanged).  The workload
    scheduler builds one runtime per session and drives many queries'
    :meth:`Engine.plan_process` coroutines through it concurrently; the
    engine-agnostic shape also lets a DataMPI query degrade onto the
    Hadoop engine *inside the same simulation*.

    Slot access goes through :attr:`leases`; engine-private per-node
    pools (Hadoop reduce slots, DataMPI A slots) come from
    :meth:`aux_slots` so concurrent queries on the same engine contend
    for them too instead of conjuring private copies.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        conf: Optional[Configuration] = None,
        with_metrics: bool = False,
        tracer: Optional[Tracer] = None,
        lease_policy: str = "fifo",
    ):
        conf = conf or Configuration()
        self.spec = spec
        self.sim = Simulator()
        self.tracer = tracer or Tracer()
        self.tracer.set_clock(lambda: self.sim.now)
        self.cluster = Cluster(self.sim, spec, metrics=get_metrics())
        self.injector = FaultInjector(
            self.sim, self.cluster, FaultPlan.from_conf(conf),
            tracer=self.tracer, metrics=get_metrics(),
            heartbeat_enabled=(conf.get(HEARTBEAT_ENABLED, "auto") or "auto"),
            heartbeat_interval=conf.get_float(HEARTBEAT_INTERVAL, 1.0),
            heartbeat_suspect=conf.get_float(HEARTBEAT_SUSPECT, 3.0),
            heartbeat_timeout=conf.get_float(HEARTBEAT_TIMEOUT, 10.0),
        )
        self.injector.start()
        # elastic scale-up: engines hold references to the per-worker aux
        # pool lists, so growth must append in place before any placement
        # can index the new worker
        self.cluster.on_join(self._grow_aux_slots)
        self.leases = LeaseManager(
            self.sim, policy=lease_policy,
            audit=conf.get_bool(LEASE_AUDIT, False),
        )
        self.sampler = MetricsSampler(self.cluster) if with_metrics else None
        if self.sampler is not None:
            self.sampler.start()
        self._aux_slots: Dict[str, List[SlotPool]] = {}
        self._closed = False

    def aux_slots(self, key: str, capacity: int, suffix: str) -> List[SlotPool]:
        """Per-worker auxiliary slot pools, shared by every plan that asks
        for the same *key* (lazy so unused engines cost nothing)."""
        pools = self._aux_slots.get(key)
        if pools is None:
            pools = [
                SlotPool(self.sim, capacity, f"{node.name}.{suffix}")
                for node in self.cluster.workers
            ]
            self._aux_slots[key] = pools
        return pools

    def _grow_aux_slots(self, node, worker_index: int) -> None:
        for key, pools in self._aux_slots.items():
            capacity = pools[0].capacity if pools else self.spec.slots_per_node
            suffix = pools[0].name.split(".", 1)[1] if pools else key
            pools.append(SlotPool(self.sim, capacity, f"{node.name}.{suffix}"))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.sampler is not None:
            self.sampler.stop()
        self.injector.close()


def collect_plan_result(
    engine: "Engine",
    runtime: EngineRuntime,
    plan: PhysicalPlan,
    timings: List[JobTiming],
    started_at: float = 0.0,
    include_injector_span: bool = True,
) -> PlanResult:
    """Assemble a :class:`PlanResult` for a plan that ran in *runtime*.

    With *started_at* (scheduler mode: the plan began mid-simulation),
    ``total_seconds`` is the plan's own duration and the fault events are
    restricted to its execution window; the injector span stays out of
    per-query results there because it belongs to the whole shared run.
    """
    sim = runtime.sim
    rows = final_sorted_rows(plan, engine.hdfs)
    spans = [timing.span for timing in timings if timing.span is not None]
    if include_injector_span and runtime.injector.span is not None:
        spans.append(runtime.injector.span)
    if started_at > 0.0:
        fault_events = [
            event for event in runtime.injector.events
            if started_at <= event.time <= sim.now
        ]
    else:
        fault_events = list(runtime.injector.events)
    return PlanResult(
        rows=rows,
        schema=plan.output_schema,
        jobs=timings,
        total_seconds=sim.now - started_at,
        engine=engine.name,
        metrics=runtime.sampler.samples if runtime.sampler else [],
        spans=spans,
        fault_events=fault_events,
    )


class Engine:
    """Interface every engine implements.

    ``run_plan`` executes a compiled physical plan and returns a
    :class:`PlanResult`.  *with_metrics* turns on the 1 Hz dstat-style
    resource sampler; *tracer* (a :class:`repro.obs.Tracer`) receives
    the engine's job/task span tree — engines always build spans (cheap
    bookkeeping, no simulated cost), a caller-supplied tracer merely
    shares the root list.

    ``plan_process`` is the re-entrant form the workload scheduler
    drives: a coroutine executing one plan inside a caller-owned
    :class:`EngineRuntime`, so several plans (and engines) share one
    simulated cluster.  Engines that cannot run inside a shared
    simulation (the local engine) simply don't implement it.
    """

    name = "abstract"
    capabilities = EngineCapabilities()

    def cache_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-node cache statistics for persistent engines.

        Engines without node-local caches return an empty mapping; the
        llap engine overrides this with per-daemon columnar-cache
        counters (see ``Session.caches()``).
        """
        return {}

    def run_plan(
        self,
        plan: PhysicalPlan,
        conf: Optional[Configuration] = None,
        with_metrics: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> PlanResult:
        raise NotImplementedError

    def plan_process(
        self,
        runtime: EngineRuntime,
        plan: PhysicalPlan,
        conf: Optional[Configuration] = None,
        owner: Optional[LeaseOwner] = None,
    ):
        """Generator executing *plan* in *runtime*; returns its job
        timings.  *owner* attributes every slot lease and job span to the
        submitting query."""
        raise NotImplementedError(
            f"engine {self.name!r} does not support shared-runtime execution"
        )


def compare_result_rows(left: List[Row], right: List[Row], ordered: bool) -> bool:
    """Row-set equality check used by cross-engine integration tests."""
    if ordered:
        return _normalize_rows(left) == _normalize_rows(right)
    key = functools.cmp_to_key(key_comparator())
    return sorted(_normalize_rows(left), key=key) == sorted(
        _normalize_rows(right), key=key
    )


def _normalize_rows(rows: List[Row]) -> List[Row]:
    """Round floats so accumulation-order differences don't fail equality."""
    normalized = []
    for row in rows:
        normalized.append(
            tuple(
                round(value, 6) if isinstance(value, float) else value for value in row
            )
        )
    return normalized
