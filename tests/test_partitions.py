"""Tests for partitioned tables and partition pruning."""

import pytest

from repro import connect
from repro.common.errors import SemanticError
from repro.common.rows import Schema
from repro.sql import ast, parse_statement


@pytest.fixture()
def part_session(warehouse):
    hdfs, metastore = warehouse
    session = connect(engine="local", hdfs=hdfs, metastore=metastore)
    session.execute(
        "CREATE TABLE emp_p (name string, salary double) PARTITIONED BY (dept string)"
    )
    session.execute(
        "INSERT OVERWRITE TABLE emp_p PARTITION (dept='eng') "
        "SELECT name, salary FROM emp WHERE dept='eng'"
    )
    session.execute(
        "INSERT OVERWRITE TABLE emp_p PARTITION (dept='ops') "
        "SELECT name, salary FROM emp WHERE dept='ops'"
    )
    return session


class TestParsing:
    def test_partitioned_by(self):
        stmt = parse_statement(
            "CREATE TABLE t (a int) PARTITIONED BY (day string, hour int)"
        )
        assert [c.name for c in stmt.partition_columns] == ["day", "hour"]

    def test_insert_partition_spec(self):
        stmt = parse_statement(
            "INSERT OVERWRITE TABLE t PARTITION (day='2015-01-01', hour=3) SELECT a FROM s"
        )
        assert stmt.partition == [("day", "2015-01-01"), ("hour", 3)]

    def test_partition_value_must_be_literal(self):
        from repro.common.errors import ParseError

        with pytest.raises(ParseError):
            parse_statement("INSERT OVERWRITE TABLE t PARTITION (day=x) SELECT a FROM s")


class TestMetastore:
    def test_full_schema_appends_partition_columns(self, warehouse):
        _hdfs, metastore = warehouse
        table = metastore.create_table(
            "p1", Schema.parse("a int"),
            partition_columns=list(Schema.parse("day string").columns),
        )
        assert table.full_schema.names == ["a", "day"]
        assert table.is_partitioned

    def test_partition_location_layout(self, warehouse):
        _hdfs, metastore = warehouse
        table = metastore.create_table(
            "p2", Schema.parse("a int"),
            partition_columns=list(Schema.parse("day string, hour int").columns),
        )
        location = table.add_partition(("2015-01-01", 3))
        assert location == "/warehouse/p2/day=2015-01-01/hour=3"
        assert ("2015-01-01", 3) in table.partitions

    def test_partition_column_clash_rejected(self, warehouse):
        _hdfs, metastore = warehouse
        with pytest.raises(SemanticError):
            metastore.create_table(
                "p3", Schema.parse("a int"),
                partition_columns=list(Schema.parse("a string").columns),
            )


class TestQueries:
    def test_partition_column_queryable(self, part_session):
        rows = part_session.query(
            "SELECT name, dept FROM emp_p ORDER BY name"
        ).rows
        assert ("ann", "eng") in rows and ("cat", "ops") in rows

    def test_filter_on_partition_column(self, part_session):
        rows = part_session.query(
            "SELECT name FROM emp_p WHERE dept = 'ops' ORDER BY name"
        ).rows
        assert rows == [("cat",), ("dan",)]

    def test_aggregate_over_partitions(self, part_session):
        rows = part_session.query(
            "SELECT dept, count(*) FROM emp_p GROUP BY dept ORDER BY dept"
        ).rows
        assert rows == [("eng", 3), ("ops", 2)]

    def test_pruning_drops_map_tasks(self, part_session):
        hdfs = part_session.hdfs
        metastore = part_session.metastore
        hadoop = connect(engine="hadoop", hdfs=hdfs, metastore=metastore)
        full = hadoop.query("SELECT count(*) FROM emp_p")
        pruned = hadoop.query("SELECT count(*) FROM emp_p WHERE dept = 'eng'")
        assert pruned.execution.jobs[0].num_maps < full.execution.jobs[0].num_maps
        assert pruned.rows == [(3,)]

    def test_pruning_preserves_results_on_engines(self, part_session):
        hdfs = part_session.hdfs
        metastore = part_session.metastore
        for engine in ("hadoop", "datampi"):
            session = connect(engine=engine, hdfs=hdfs, metastore=metastore)
            rows = session.query(
                "SELECT name FROM emp_p WHERE dept = 'eng' ORDER BY name"
            ).rows
            assert rows == [("ann",), ("bob",), ("gus",)]

    def test_range_pruning(self, part_session):
        # non-equality conjuncts prune too
        rows = part_session.query(
            "SELECT count(*) FROM emp_p WHERE dept > 'nnn'"
        ).rows
        assert rows == [(2,)]  # only ops


class TestInsertSemantics:
    def test_overwrite_scoped_to_partition(self, part_session):
        part_session.execute(
            "INSERT OVERWRITE TABLE emp_p PARTITION (dept='eng') "
            "SELECT name, salary FROM emp WHERE name = 'ann'"
        )
        rows = part_session.query("SELECT name, dept FROM emp_p ORDER BY name").rows
        assert rows == [("ann", "eng"), ("cat", "ops"), ("dan", "ops")]

    def test_append_into_partition(self, part_session):
        part_session.execute(
            "INSERT INTO TABLE emp_p PARTITION (dept='ops') "
            "SELECT name, salary FROM emp WHERE name = 'eve'"
        )
        rows = part_session.query(
            "SELECT count(*) FROM emp_p WHERE dept = 'ops'"
        ).rows
        assert rows == [(3,)]

    def test_missing_partition_spec_rejected(self, part_session):
        with pytest.raises(SemanticError):
            part_session.execute(
                "INSERT OVERWRITE TABLE emp_p SELECT name, salary FROM emp"
            )

    def test_partition_spec_on_plain_table_rejected(self, local_session):
        local_session.execute("CREATE TABLE plain (a string)")
        with pytest.raises(SemanticError):
            local_session.execute(
                "INSERT OVERWRITE TABLE plain PARTITION (day='x') SELECT name FROM emp"
            )

    def test_wrong_partition_columns_rejected(self, part_session):
        with pytest.raises(SemanticError):
            part_session.execute(
                "INSERT OVERWRITE TABLE emp_p PARTITION (region='x') "
                "SELECT name, salary FROM emp"
            )
