"""DataMPI buffer manager (paper §IV-C, Fig 7).

Three cooperating pieces:

* :class:`SendPartitionList` — per-O-task partition buffers.  Each
  partition accumulates key-value pairs for one A task; a full partition
  becomes a :class:`SendBuffer` and is pushed toward the shuffle engine.
* :class:`SendQueue` — the bounded queue between the computing thread
  and the communication thread(s).  Its capacity is the
  ``hive.datampi.sendqueue`` knob (Fig 8 right): a full queue blocks the
  O task (computation waits for communication).
* :class:`ReceiveManager` — A-side: delivered buffers are cached in
  memory up to the ``hive.datampi.memusedpercent`` budget and spilled to
  local disk beyond it (Fig 8 left).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import ExecutionError
from repro.common.kv import KeyValue
from repro.simulate.cluster import Node
from repro.simulate.events import Event, Simulator

_EPSILON_BYTES = 1e-6


@dataclass
class SendBuffer:
    """One full send partition: the unit the shuffle engine transmits."""

    partition: int
    pairs: List[KeyValue] = field(default_factory=list)
    actual_bytes: int = 0
    scale: float = 1.0  # stamped by the O task when the buffer is emitted
    sender: int = -1  # emitting O task index, stamped with scale
    seq: int = -1  # per-sender emission sequence, stamped with scale

    @property
    def logical_bytes(self) -> float:
        return self.actual_bytes * self.scale


class SendPartitionList:
    """Partition-indexed accumulation buffers (the SPL of Fig 7)."""

    def __init__(self, num_partitions: int, partition_capacity_bytes: float):
        if num_partitions < 1:
            raise ExecutionError("SPL needs at least one partition")
        self.num_partitions = num_partitions
        self.capacity = partition_capacity_bytes
        self._buffers: List[SendBuffer] = [
            SendBuffer(partition=i) for i in range(num_partitions)
        ]
        self.pairs_added = 0
        self.bytes_added = 0

    def add(self, partition: int, pair: KeyValue) -> Optional[SendBuffer]:
        """Append a pair; returns the filled buffer when the partition
        crosses its capacity (caller pushes it to the send queue)."""
        buffer = self._buffers[partition]
        try:
            # the ReduceSink seeds the size memo; read it without a frame
            size = pair._size
        except AttributeError:
            size = pair.serialized_size()
        buffer.pairs.append(pair)
        buffer.actual_bytes += size
        self.pairs_added += 1
        self.bytes_added += size
        if buffer.actual_bytes >= self.capacity:
            self._buffers[partition] = SendBuffer(partition=partition)
            return buffer
        return None

    def add_many(self, partitions, pairs, on_full) -> None:
        """Bulk :meth:`add`: the vectorized sink's whole batch in one
        frame.  Every pair arrives with its ``_size`` memo pre-seeded;
        filled buffers go to *on_full* in the exact order per-pair
        ``add`` would have produced them."""
        buffers = self._buffers
        capacity = self.capacity
        nbytes = 0
        for partition, pair in zip(partitions, pairs):
            buffer = buffers[partition]
            size = pair._size
            buffer.pairs.append(pair)
            buffer.actual_bytes += size
            nbytes += size
            if buffer.actual_bytes >= capacity:
                buffers[partition] = SendBuffer(partition=partition)
                on_full(buffer)
        self.pairs_added += len(pairs)
        self.bytes_added += nbytes

    def drain(self) -> List[SendBuffer]:
        """Remaining non-empty partial buffers (task close)."""
        out = [buffer for buffer in self._buffers if buffer.pairs]
        self._buffers = [SendBuffer(partition=i) for i in range(self.num_partitions)]
        return out

    @property
    def buffered_bytes(self) -> int:
        return sum(buffer.actual_bytes for buffer in self._buffers)


class SendQueue:
    """Bounded FIFO between computation and communication threads.

    ``put`` returns an event that triggers once the buffer is admitted;
    a slot frees when the shuffle engine reports the transfer finished.
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise ExecutionError("send queue capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[SendBuffer] = deque()
        self.handed = 0  # popped by the sender, transfer not yet started
        self.in_flight = 0
        self._put_waiters: Deque[Tuple[Event, SendBuffer]] = deque()
        self._get_waiters: Deque[Event] = deque()
        self.total_put_wait = 0.0  # accumulated producer blocking time

    def put(self, buffer: SendBuffer) -> Event:
        event = Event(self.sim)
        if self.backlog < self.capacity:
            self._admit(buffer)
            event.trigger(None)
        else:
            self._put_waiters.append((event, buffer))
        return event

    def get(self) -> Event:
        """Event that yields the next buffer (for the sender thread)."""
        event = Event(self.sim)
        if self.items:
            self.handed += 1
            event.trigger(self.items.popleft())
        else:
            self._get_waiters.append(event)
        return event

    def transfer_started(self) -> None:
        """The sender began transmitting a buffer it previously got."""
        if self.handed <= 0:
            raise ExecutionError("transfer_started without a pending get")
        self.handed -= 1
        self.in_flight += 1

    def transfer_finished(self) -> None:
        """A buffer left the pipeline; admit a blocked producer if any."""
        if self.in_flight <= 0:
            raise ExecutionError("transfer_finished without transfer_started")
        self.in_flight -= 1
        if self._put_waiters:
            event, buffer = self._put_waiters.popleft()
            self._admit(buffer)
            event.trigger(None)

    def _admit(self, buffer: SendBuffer) -> None:
        if self._get_waiters:
            self.handed += 1
            self._get_waiters.popleft().trigger(buffer)
        else:
            self.items.append(buffer)

    @property
    def backlog(self) -> int:
        """Buffers occupying queue capacity: queued, handed to the sender
        but not yet transmitting, and in flight.  A buffer only stops
        counting when ``transfer_finished`` releases its slot — before
        this fix the window between ``get()`` and ``transfer_started()``
        was invisible, letting producers over-admit past the
        ``hive.datampi.sendqueue`` knob."""
        return len(self.items) + self.handed + self.in_flight


class ReceiveManager:
    """A-side buffer cache with memory accounting and disk spill.

    One instance per job.  Buffers delivered for partition *p* land on
    the node hosting A task *p*; received bytes beyond the node's cache
    budget are spilled (the A task later reads them back).
    """

    def __init__(
        self,
        sim: Simulator,
        partition_nodes: List[Node],
        cache_budget_per_node: float,
    ):
        self.sim = sim
        self.partition_nodes = partition_nodes
        self.cache_budget = cache_budget_per_node
        self._arrivals: List[List[Tuple[int, int, List[KeyValue]]]] = [
            [] for _ in partition_nodes
        ]
        self.cached_bytes: Dict[Node, float] = {}
        self.cached_partition_bytes: List[float] = [0.0] * len(partition_nodes)
        self.spilled_bytes: List[float] = [0.0] * len(partition_nodes)
        self.received_bytes: List[float] = [0.0] * len(partition_nodes)

    def node_for(self, partition: int) -> Node:
        return self.partition_nodes[partition]

    def partition_pairs(self, partition: int) -> List[KeyValue]:
        """The partition's pairs in canonical (sender, emission-seq)
        order, regardless of network arrival interleaving.

        Buffers race each other on shared links, and on a cluster shared
        with other queries the winner can change run to run; sorting by
        provenance keeps the reduce input — and hence float-aggregation
        order — byte-stable, mirroring the Hadoop engine's fixed
        map-index merge order.
        """
        chunks = sorted(self._arrivals[partition],
                        key=lambda entry: (entry[0], entry[1]))
        out: List[KeyValue] = []
        for _sender, _seq, pairs in chunks:
            out.extend(pairs)
        return out

    @property
    def pairs(self) -> List[List[KeyValue]]:
        """Canonically ordered pairs for every partition (see
        :meth:`partition_pairs`)."""
        return [self.partition_pairs(p)
                for p in range(len(self.partition_nodes))]

    def deliver(self, partition: int, buffer: SendBuffer):
        """Coroutine: account a delivered buffer; spill when over budget.

        The network transfer has already happened (shuffle engine); this
        charges only the A-side memory/disk consequences.  A buffer that
        straddles the budget boundary is split: the part that fits stays
        cached, only the overflow goes to disk.
        """
        node = self.partition_nodes[partition]
        logical = buffer.logical_bytes
        self._arrivals[partition].append((buffer.sender, buffer.seq, buffer.pairs))
        self.received_bytes[partition] += logical
        used = self.cached_bytes.get(node, 0.0)
        fit = min(logical, max(0.0, self.cache_budget - used))
        if fit > 0:
            self.cached_bytes[node] = used + fit
            self.cached_partition_bytes[partition] += fit
        overflow = logical - fit
        if overflow > _EPSILON_BYTES:
            self.spilled_bytes[partition] += overflow
            yield from node.disk_write(overflow)

    def release_partition(self, partition: int) -> None:
        """A task consumed its data: free the cached buffer space.

        Uses the exact per-partition cached amount (not the derived
        ``received - spilled``), so releasing the same partition twice —
        or any other over-free on a node shared by several partitions —
        is an accounting error, not something a clamp silently absorbs.
        """
        node = self.partition_nodes[partition]
        cached = self.cached_partition_bytes[partition]
        if cached <= 0:
            return
        self.cached_partition_bytes[partition] = 0.0
        held = self.cached_bytes.get(node, 0.0)
        # tolerance: absolute epsilon plus a float-summation allowance
        # proportional to the magnitudes involved
        tolerance = _EPSILON_BYTES + 1e-9 * max(cached, held)
        if cached > held + tolerance:
            raise ExecutionError(
                f"receive cache over-free: partition {partition} releases "
                f"{cached} bytes but node holds {held}"
            )
        self.cached_bytes[node] = max(0.0, held - cached)
