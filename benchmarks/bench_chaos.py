"""Chaos benchmark: availability and recovery under randomized faults.

Runs the seeded chaos harness (:mod:`repro.simulate.chaos`) across many
distinct fault + membership schedules on the three cluster engines and
reports, per engine:

* **schedules** — how many seeded schedules ran (every one must pass
  all four chaos invariants: oracle-identical rows, balanced lease
  ledger, coherent caches, no stuck query);
* **queries completed / deadline misses** — availability under chaos;
* **mean recovery seconds per fault class** — time from each crash /
  drain / scale-up event to the next query completion;
* **replay** — one schedule per engine is run twice and the reports
  must be identical (determinism).

Standalone (the check.sh gate runs it with ``CHECK_CHAOS_FULL=1``)::

    python benchmarks/bench_chaos.py [--smoke] [--output OUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))  # benchhelpers
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # runnable without an installed package
    sys.path.insert(0, _SRC)

from benchhelpers import results_path  # noqa: E402

from repro.simulate.chaos import (  # noqa: E402
    CHAOS_QUERIES,
    oracle_rows,
    run_chaos,
    verify_replay,
)

ENGINES = ("hadoop", "datampi", "llap")


def config(smoke: bool):
    if smoke:
        return {"seeds": 2, "deadline_seed": 0, "replay": False}
    return {"seeds": 9, "deadline_seed": 4, "replay": True}


def run_engine(engine: str, cfg):
    oracle = oracle_rows(engine, CHAOS_QUERIES)
    schedules = []
    completed = 0
    deadline_misses = 0
    recovery = {}
    for seed in range(cfg["seeds"]):
        # one seed per engine also carries a tight per-query deadline so
        # the bench exercises the timeout path, not just clean recovery
        deadline = 150.0 if seed == cfg["deadline_seed"] else None
        report = run_chaos(engine, seed=seed, deadline=deadline, oracle=oracle)
        completed += report.succeeded
        deadline_misses += report.deadline_misses
        for kind, seconds in report.recovery_seconds.items():
            recovery.setdefault(kind, []).append(seconds)
        schedules.append(report.to_dict())
    replayed = False
    if cfg["replay"]:
        verify_replay(engine, seed=1, oracle=oracle)
        replayed = True
    return {
        "schedules": len(schedules),
        "queries_completed": completed,
        "queries_total": cfg["seeds"] * len(CHAOS_QUERIES),
        "deadline_misses": deadline_misses,
        "mean_recovery_seconds": {
            kind: round(sum(values) / len(values), 3)
            for kind, values in sorted(recovery.items())
        },
        "replay_verified": replayed,
        "runs": schedules,
    }


def run(cfg):
    report = {"config": dict(cfg), "workload": list(CHAOS_QUERIES)}
    for engine in ENGINES:
        report[engine] = run_engine(engine, cfg)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer seeds, no replay pass (CI gate)")
    parser.add_argument("--output", default=results_path("BENCH_chaos.json"),
                        help="where to write the JSON report")
    parser.add_argument("--guard-seconds", type=float, default=0.0,
                        metavar="S",
                        help="fail if the whole run takes longer than S "
                             "wall-clock seconds (0 = no guard)")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = run(config(args.smoke))
    elapsed = time.perf_counter() - started
    report["wall_clock_seconds"] = round(elapsed, 3)

    header = (f"{'engine':>9} {'schedules':>10} {'completed':>10} "
              f"{'deadline miss':>14} {'recovery (crash/drain/join)':>28}")
    print(header)
    for engine in ENGINES:
        cell = report[engine]
        rec = cell["mean_recovery_seconds"]
        rec_text = "/".join(
            f"{rec.get(kind, 0.0):.0f}s" for kind in ("crash", "drain", "scale-up"))
        print(f"{engine:>9} {cell['schedules']:>10} "
              f"{cell['queries_completed']:>6}/{cell['queries_total']:<3} "
              f"{cell['deadline_misses']:>14} {rec_text:>28}")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")

    # shape checks: the acceptance properties of the chaos harness
    ok = True
    total_schedules = sum(report[e]["schedules"] for e in ENGINES)
    floor = 6 if args.smoke else 25
    if total_schedules < floor:
        print(f"FAIL: only {total_schedules} schedules ran (need >={floor})",
              file=sys.stderr)
        ok = False
    for engine in ENGINES:
        cell = report[engine]
        runnable = cell["queries_total"] - cell["deadline_misses"]
        if cell["queries_completed"] < runnable:
            print(f"FAIL: {engine} completed {cell['queries_completed']} of "
                  f"{runnable} non-deadline queries", file=sys.stderr)
            ok = False
        if not args.smoke and not cell["replay_verified"]:
            print(f"FAIL: {engine} replay pass did not run", file=sys.stderr)
            ok = False
    if args.guard_seconds and elapsed > args.guard_seconds:
        print(f"FAIL: run took {elapsed:.1f}s wall-clock "
              f"(guard {args.guard_seconds:.0f}s)", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
