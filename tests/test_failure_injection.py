"""Tests for the fault model: plans, injection, and engine recovery.

MapReduce retries failed task attempts; an MPI job aborts the gang and
re-runs — the classic fault-tolerance trade-off the paper's §I alludes
to (Hive on MapReduce "can scale out easily and tolerate faults").
Every fault here is declarative and seeded, so recovery paths are
exercised deterministically and results must stay byte-identical to the
fault-free run.
"""

import pytest

from repro import connect
from repro.common.config import (
    FAULT_SEED,
    FAULT_SPEC,
    RETRY_BACKOFF,
    RETRY_FALLBACK,
    RETRY_MAX,
    SPECULATIVE_EXECUTION,
    Configuration,
)
from repro.common.errors import ConfigError, RetryExhaustedError
from repro.engines.base import compare_result_rows
from repro.simulate import FaultInjector, FaultPlan, Simulator
from repro.simulate.cluster import Cluster, ClusterSpec

SQL = "SELECT grp, sum(val) FROM facts GROUP BY grp ORDER BY grp"


class TestFaultPlanParsing:
    def test_empty_spec(self):
        plan = FaultPlan.parse("")
        assert plan.empty

    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "seed:7; fail:0.1; crash:w2@30-90; slow:w1x4@10-20; "
            "disk:w3x0.5@5-15\nnic:w0x0.25@1-2"
        )
        assert plan.seed == 7
        assert plan.task_failure_rate == pytest.approx(0.1)
        crash = plan.node_crashes[0]
        assert (crash.worker, crash.at, crash.recover_at) == (2, 30.0, 90.0)
        straggler = plan.stragglers[0]
        assert (straggler.worker, straggler.factor) == (1, 4.0)
        resources = {window.resource for window in plan.degradations}
        assert resources == {"disk", "nic"}

    def test_crash_without_recovery(self):
        plan = FaultPlan.parse("crash:w5@12")
        assert plan.node_crashes[0].recover_at is None

    @pytest.mark.parametrize("spec", [
        "explode:w1@3",      # unknown kind
        "crash:w1x2@3",      # crash takes no factor
        "slow:w1@3",         # slow needs a factor
        "fail:1.5",          # rate out of range
        "crash:w1",          # missing @time
    ])
    def test_bad_clause_rejected(self, spec):
        with pytest.raises(ConfigError):
            FaultPlan.parse(spec)

    def test_from_conf_folds_legacy_rate_and_seed(self):
        conf = Configuration({
            FAULT_SPEC: "crash:w1@5",
            FAULT_SEED: "42",
            "repro.failure.rate": "0.2",
        })
        plan = FaultPlan.from_conf(conf)
        assert plan.seed == 42
        assert plan.task_failure_rate == pytest.approx(0.2)
        assert len(plan.node_crashes) == 1

    def test_spec_seed_overrides_conf_seed(self):
        conf = Configuration({FAULT_SPEC: "seed:9", FAULT_SEED: "42"})
        assert FaultPlan.from_conf(conf).seed == 9


def _injector(rate, seed=0):
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec())
    plan = FaultPlan(seed=seed, task_failure_rate=rate)
    return FaultInjector(sim, cluster, plan)


class TestAttemptDoom:
    def test_zero_rate_never_dooms(self):
        injector = _injector(0.0)
        assert injector.attempt_doom("job", "m0", 1) is None

    def test_deterministic_per_attempt(self):
        first = _injector(0.5, seed=3)
        second = _injector(0.5, seed=3)
        draws = [("j1", "m0", 1), ("j1", "m0", 2), ("j1", "r0", 1), ("j2", "m0", 1)]
        for key in draws:
            assert first.attempt_doom(*key) == second.attempt_doom(*key)

    def test_doom_fraction_bounded(self):
        injector = _injector(0.999, seed=1)
        fractions = [injector.attempt_doom("j", f"m{i}", 1) for i in range(200)]
        fired = [f for f in fractions if f is not None]
        assert fired, "at 0.999 almost every attempt must be doomed"
        assert all(0.05 <= f <= 0.95 for f in fired)

    def test_rate_scales_frequency(self):
        low = _injector(0.05, seed=1)
        high = _injector(0.5, seed=1)
        keys = [("j", f"m{i}", 1) for i in range(300)]
        low_hits = sum(low.attempt_doom(*k) is not None for k in keys)
        high_hits = sum(high.attempt_doom(*k) is not None for k in keys)
        assert high_hits > low_hits


def _run(engine, hdfs, metastore, conf=None):
    session = connect(engine=engine, hdfs=hdfs, metastore=metastore, conf=conf)
    return session.query(SQL)


def _faulty_conf(rate, seed=1, **extra):
    conf = {FAULT_SPEC: f"seed:{seed}; fail:{rate}",
            RETRY_MAX: "10", RETRY_BACKOFF: "0.5"}
    conf.update(extra)
    return conf


class TestTaskFailures:
    @pytest.mark.parametrize("engine", ["hadoop", "datampi"])
    def test_results_survive_failures(self, big_warehouse, engine):
        hdfs, metastore = big_warehouse
        clean = _run(engine, hdfs, metastore)
        faulty = _run(engine, hdfs, metastore, _faulty_conf(0.3))
        assert compare_result_rows(clean.rows, faulty.rows, ordered=True)
        assert faulty.attempts > clean.attempts

    @pytest.mark.parametrize("engine", ["hadoop", "datampi"])
    def test_failures_cost_time(self, big_warehouse, engine):
        hdfs, metastore = big_warehouse
        clean = _run(engine, hdfs, metastore).execution.total_seconds
        faulty = _run(engine, hdfs, metastore, _faulty_conf(0.4))
        assert faulty.execution.total_seconds > clean

    def test_reduce_attempts_are_covered(self, big_warehouse):
        """Failure injection must reach reduce tasks, not only maps."""
        hdfs, metastore = big_warehouse
        result = _run("hadoop", hdfs, metastore, _faulty_conf(0.5))
        reduce_attempts = [
            task.attempts for job in result.execution.jobs
            for task in job.tasks if task.kind == "reduce"
        ]
        assert any(attempts > 1 for attempts in reduce_attempts)

    def test_gang_restart_counted(self, big_warehouse):
        hdfs, metastore = big_warehouse
        result = _run("datampi", hdfs, metastore, _faulty_conf(0.3))
        assert result.restarts > 0
        assert any(job.restarts for job in result.execution.jobs)

    @pytest.mark.parametrize("engine", ["hadoop", "datampi"])
    def test_deterministic_across_repeats(self, big_warehouse_factory, engine):
        """Same warehouse + same seeded fault plan -> bit-equal outcome
        (HDFS block placement shifts with prior query outputs, so each
        run gets a pristine warehouse)."""
        runs = []
        for _ in range(2):
            hdfs, metastore = big_warehouse_factory()
            runs.append(_run(engine, hdfs, metastore, _faulty_conf(0.3)))
        first, second = runs
        assert first.rows == second.rows
        assert first.execution.total_seconds == second.execution.total_seconds
        assert first.attempts == second.attempts

    def test_mpi_restart_coarser_than_mapreduce_retry(self, big_warehouse):
        """At the same failure rate, MapReduce's per-task retry loses a
        smaller *fraction* of the job than DataMPI's whole-job restart."""
        hdfs, metastore = big_warehouse
        overheads = {}
        for engine in ("hadoop", "datampi"):
            clean = _run(engine, hdfs, metastore).execution.total_seconds
            faulty = _run(engine, hdfs, metastore,
                          _faulty_conf(0.1)).execution.total_seconds
            overheads[engine] = (faulty - clean) / clean
        assert overheads["datampi"] > overheads["hadoop"]


class TestNodeCrash:
    @pytest.mark.parametrize("engine", ["hadoop", "datampi"])
    def test_crash_with_recovery(self, big_warehouse, engine):
        hdfs, metastore = big_warehouse
        clean = _run(engine, hdfs, metastore)
        crashed = _run(engine, hdfs, metastore,
                       {FAULT_SPEC: "crash:w1@6-60",
                        RETRY_MAX: "10", RETRY_BACKOFF: "0.5"})
        assert compare_result_rows(clean.rows, crashed.rows, ordered=True)
        kinds = {event.kind for event in crashed.fault_events}
        assert "node-crash" in kinds
        assert "node-recover" in kinds

    def test_crash_restarts_datampi_gang(self, big_warehouse):
        hdfs, metastore = big_warehouse
        crashed = _run("datampi", hdfs, metastore,
                       {FAULT_SPEC: "crash:w1@6-60",
                        RETRY_MAX: "10", RETRY_BACKOFF: "0.5"})
        assert crashed.restarts >= 1


class TestStragglers:
    @pytest.mark.parametrize("engine", ["hadoop", "datampi"])
    def test_straggler_costs_time(self, big_warehouse, engine):
        hdfs, metastore = big_warehouse
        clean = _run(engine, hdfs, metastore).execution.total_seconds
        slowed = _run(engine, hdfs, metastore,
                      {FAULT_SPEC: "slow:w1x6@0"}).execution.total_seconds
        assert slowed > clean

    def test_speculative_execution_beats_straggler(self, big_warehouse):
        hdfs, metastore = big_warehouse
        conf = {FAULT_SPEC: "slow:w0x8@0"}
        slowed = _run("hadoop", hdfs, metastore, conf)
        speculative = _run("hadoop", hdfs, metastore,
                           dict(conf, **{SPECULATIVE_EXECUTION: "true"}))
        assert (speculative.execution.total_seconds
                < slowed.execution.total_seconds)
        winners = [task.task_id for job in speculative.execution.jobs
                   for task in job.tasks if task.speculative]
        assert winners, "some task must be won by a speculative attempt"
        assert compare_result_rows(slowed.rows, speculative.rows, ordered=True)


# four staggered crash/recover windows: every submission of the first
# job meets a freshly dying node, so a small retry budget exhausts
_ROLLING_CRASHES = "crash:w1@5-7; crash:w2@12-14; crash:w3@18-20; crash:w4@24-26"


class TestRetryExhaustionAndFallback:
    def test_exhaustion_raises_without_fallback(self, big_warehouse):
        hdfs, metastore = big_warehouse
        session = connect(engine="datampi", hdfs=hdfs, metastore=metastore,
                          conf={FAULT_SPEC: _ROLLING_CRASHES,
                                RETRY_MAX: "1", RETRY_BACKOFF: "0.5"})
        with pytest.raises(RetryExhaustedError):
            session.query(SQL)

    def test_graceful_degradation_to_mapreduce(self, big_warehouse):
        hdfs, metastore = big_warehouse
        clean = _run("datampi", hdfs, metastore)
        degraded = _run("datampi", hdfs, metastore,
                        {FAULT_SPEC: _ROLLING_CRASHES,
                         RETRY_MAX: "1", RETRY_BACKOFF: "0.5",
                         RETRY_FALLBACK: "mr"})
        assert degraded.fallback_engine == "hadoop"
        assert compare_result_rows(clean.rows, degraded.rows, ordered=True)

    def test_no_fallback_marker_on_clean_run(self, big_warehouse):
        hdfs, metastore = big_warehouse
        assert _run("datampi", hdfs, metastore).fallback_engine is None


COUNT_SQL = "SELECT count(*) FROM facts"


class TestConcurrentFailureIsolation:
    """Faults striking one query in a shared cluster fell only that
    query: it alone retries or falls back, while concurrently running
    bystanders keep their engine, timeline and rows."""

    def test_crash_fells_only_the_struck_query(self, big_warehouse):
        hdfs, metastore = big_warehouse
        solo = {sql: connect(engine="datampi", hdfs=hdfs,
                             metastore=metastore).query(sql).rows
                for sql in (SQL, COUNT_SQL)}
        conf = {FAULT_SPEC: "crash:w1@5-7; crash:w2@9-11",
                RETRY_MAX: "1", RETRY_BACKOFF: "0.5", RETRY_FALLBACK: "mr"}
        with connect(engine="datampi", hdfs=hdfs, metastore=metastore,
                     conf=conf) as session:
            struck = session.submit(SQL)
            # let both crash windows land while only the struck query
            # runs; it exhausts its retry budget and degrades to hadoop
            session.scheduler.runtime.sim.run(until=15.0)
            bystanders = [session.submit(SQL), session.submit(COUNT_SQL)]
            session.scheduler.drain()

            struck_result = struck.result()
            assert struck_result.fallback_engine == "hadoop"
            assert compare_result_rows(solo[SQL], struck_result.rows,
                                       ordered=True)
            # the bystanders overlapped the struck query's fallback run
            # on the shared cluster, yet stayed on datampi untouched
            assert struck.finished_at > bystanders[0].admitted_at
            for handle, sql in zip(bystanders, (SQL, COUNT_SQL)):
                result = handle.result()
                assert result.fallback_engine is None
                assert result.execution.total_attempts == sum(
                    len(job.tasks) for job in result.execution.jobs
                ), "bystander tasks must succeed on their first attempt"
                assert compare_result_rows(solo[sql], result.rows,
                                           ordered=True)

    def test_transient_failures_retry_without_crosstalk(self, big_warehouse):
        """Random task failures under a shared injector: every query
        retries its own tasks; results all match the clean solo run."""
        hdfs, metastore = big_warehouse
        solo = connect(engine="datampi", hdfs=hdfs,
                       metastore=metastore).query(SQL).rows
        conf = _faulty_conf(0.05, seed=11)
        with connect(engine="datampi", hdfs=hdfs, metastore=metastore,
                     conf=conf) as session:
            handles = [session.submit(SQL) for _ in range(3)]
            session.scheduler.drain()
            for handle in handles:
                result = handle.result()
                assert result.fallback_engine is None
                assert compare_result_rows(solo, result.rows, ordered=True)
