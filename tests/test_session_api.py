"""The public session API: engine registry, connect()/Session lifecycle,
capability specs, and the QueryResult cursor surface."""

import pytest

import repro
from repro import Session, connect, make_warehouse
from repro import engines as registry
from repro.common.errors import EngineConfigError, ExecutionError
from repro.engines.local import LocalEngine
from repro.storage.hdfs import DEFAULT_BLOCK_SIZE
from repro.common.units import MB


# ---------------------------------------------------------------------------
# Engine registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert {"datampi", "hadoop", "local"} <= set(registry.available())

    def test_aliases_resolve(self):
        assert registry.resolve("dm") == "datampi"
        assert registry.resolve("MR") == "hadoop"
        assert registry.resolve("local") == "local"

    def test_unknown_engine_lists_available(self, warehouse):
        hdfs, _ = warehouse
        with pytest.raises(ValueError, match="datampi"):
            registry.create("spark", hdfs)

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("local", LocalEngine)

    def test_replace_allows_override(self):
        registry.register("local", LocalEngine, replace=True)
        assert "local" in registry.available()

    def test_custom_engine_round_trip(self, warehouse):
        hdfs, metastore = warehouse

        def factory(hdfs, spec=None):
            return LocalEngine(hdfs)

        registry.register("mine", factory, aliases=("m",))
        try:
            session = connect(engine="m", hdfs=hdfs, metastore=metastore)
            rows = session.query("SELECT count(*) FROM emp").rows
            assert rows == [(7,)]
        finally:
            registry.unregister("mine")
        assert "mine" not in registry.available()
        assert registry.resolve("m") == "m"  # alias dropped too

    def test_create_skips_spec_for_specless_factories(self, warehouse):
        hdfs, _ = warehouse
        engine = registry.create("local", hdfs)
        assert isinstance(engine, LocalEngine)


# ---------------------------------------------------------------------------
# connect() / Session
# ---------------------------------------------------------------------------


class TestConnect:
    def test_context_manager_tpch_end_to_end(self):
        from repro.bench import fresh_tpch
        from repro.workloads.tpch import tpch_query

        hdfs, metastore = fresh_tpch(sf=1, lineitem_sample=400)
        with repro.connect(engine="datampi", hdfs=hdfs, metastore=metastore) as s:
            result = s.query(tpch_query(1, 1))
            assert result.rows, "TPC-H Q1 returned no groups"
            assert result.simulated_seconds > 0
            assert result.trace is not None and result.trace.find("job")
        assert s.closed

    def test_execute_after_close_raises(self, warehouse):
        hdfs, metastore = warehouse
        session = connect(engine="local", hdfs=hdfs, metastore=metastore)
        session.close()
        session.close()  # idempotent
        with pytest.raises(ExecutionError, match="closed"):
            session.execute("SELECT 1 FROM emp")

    def test_engine_instance_passthrough(self, warehouse):
        hdfs, metastore = warehouse
        engine = LocalEngine(hdfs)
        session = connect(engine=engine, hdfs=hdfs, metastore=metastore)
        assert isinstance(session, Session)
        assert session.engine is engine
        assert session.engine_name == "local"

    def test_conf_accepts_dict(self, warehouse):
        hdfs, metastore = warehouse
        session = connect(engine="local", hdfs=hdfs, metastore=metastore,
                          conf={"hive.exec.reducers.max": 3})
        assert session.conf.get_int("hive.exec.reducers.max", 0) == 3

    def test_repr_shows_state(self, warehouse):
        hdfs, metastore = warehouse
        with connect(engine="local", hdfs=hdfs, metastore=metastore) as session:
            assert "open" in repr(session)
        assert "closed" in repr(session)


class TestHiveSessionRemoved:
    def test_shim_is_gone(self):
        assert not hasattr(repro, "hive_session")
        import repro.session as session_module

        assert not hasattr(session_module, "hive_session")
        assert "hive_session" not in repro.__all__


# ---------------------------------------------------------------------------
# Capability registry + typed engine config
# ---------------------------------------------------------------------------


class TestCapabilities:
    def test_builtin_capability_matrix(self):
        assert registry.capabilities("hadoop").speculative
        assert registry.capabilities("hadoop").shared_runtime
        assert not registry.capabilities("hadoop").persistent
        assert registry.capabilities("datampi").gang_scheduling
        assert registry.capabilities("llap").persistent
        assert registry.capabilities("llap").result_cache
        assert not registry.capabilities("local").shared_runtime

    def test_capabilities_resolves_aliases(self):
        assert registry.capabilities("mr") == registry.capabilities("hadoop")
        assert registry.capabilities("live") == registry.capabilities("llap")

    def test_capabilities_dict_and_enabled(self):
        caps = registry.capabilities("llap")
        assert caps.as_dict()["persistent"] is True
        assert "result_cache" in caps.enabled()

    def test_get_spec_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            registry.get_spec("spark")

    def test_spec_carries_options(self):
        spec = registry.get_spec("llap")
        names = {option.name for option in spec.options}
        assert {"cache_mb", "daemon_slots", "result_cache",
                "result_cache_entries"} <= names

    def test_engine_config_lands_on_conf_keys(self, warehouse):
        hdfs, metastore = warehouse
        session = connect(engine="llap", hdfs=hdfs, metastore=metastore,
                          engine_config={"cache_mb": 64,
                                         "result_cache": False})
        assert session.conf.get_float("repro.llap.cache.mb", 0.0) == 64.0
        assert session.conf.get_bool("repro.result.cache.enabled", True) is False

    def test_engine_config_unknown_key_is_typed_error(self, warehouse):
        hdfs, metastore = warehouse
        with pytest.raises(EngineConfigError, match="cache_mbs") as excinfo:
            connect(engine="llap", hdfs=hdfs, metastore=metastore,
                    engine_config={"cache_mbs": 64})
        assert excinfo.value.engine == "llap"
        assert excinfo.value.key == "cache_mbs"

    def test_engine_config_bad_value_type(self, warehouse):
        hdfs, metastore = warehouse
        with pytest.raises(EngineConfigError, match="daemon_slots"):
            connect(engine="llap", hdfs=hdfs, metastore=metastore,
                    engine_config={"daemon_slots": "lots"})

    def test_engine_config_bool_parsing(self):
        option = registry.get_spec("llap").option("result_cache")
        assert option.parse("llap", "off") is False
        assert option.parse("llap", "Yes") is True
        with pytest.raises(EngineConfigError):
            option.parse("llap", "sometimes")

    def test_engine_config_rejected_for_option_less_engine(self, warehouse):
        hdfs, metastore = warehouse
        with pytest.raises(EngineConfigError):
            connect(engine="local", hdfs=hdfs, metastore=metastore,
                    engine_config={"cache_mb": 64})

    def test_registered_engine_derives_capabilities_from_class(self):
        registry.register("mine2", LocalEngine, aliases=("m2",))
        try:
            assert registry.capabilities("mine2").vectorized
            assert not registry.capabilities("mine2").persistent
        finally:
            registry.unregister("mine2")


# ---------------------------------------------------------------------------
# make_warehouse
# ---------------------------------------------------------------------------


class TestMakeWarehouse:
    def test_defaults(self):
        hdfs, metastore = make_warehouse()
        assert hdfs.num_workers == 7
        assert hdfs.block_size == DEFAULT_BLOCK_SIZE
        assert metastore.hdfs is hdfs

    def test_custom_block_size(self):
        hdfs, _ = make_warehouse(num_workers=3, block_size=128 * MB)
        assert hdfs.num_workers == 3
        assert hdfs.block_size == 128 * MB


# ---------------------------------------------------------------------------
# QueryResult cursor surface
# ---------------------------------------------------------------------------


class TestQueryResult:
    @pytest.fixture()
    def result(self, local_session):
        return local_session.query(
            "SELECT dept, count(*) AS n FROM emp WHERE dept IS NOT NULL "
            "GROUP BY dept ORDER BY dept"
        )

    def test_iteration_and_len(self, result):
        assert list(result) == result.rows
        assert len(result) == len(result.rows)

    def test_fetchall_copies(self, result):
        fetched = result.fetchall()
        assert fetched == result.rows
        fetched.append(("zz", 0))
        assert fetched != result.rows

    def test_to_pydict(self, result):
        columns = result.to_pydict()
        assert list(columns) == result.column_names()
        assert columns[result.column_names()[0]] == [row[0] for row in result.rows]

    def test_statement_docstring_mentions_explain(self):
        from repro.core.driver import QueryResult

        assert "explain" in QueryResult.__doc__
