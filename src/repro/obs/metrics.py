"""Process-wide metrics registry: counters, gauges, histograms.

The execution layers record cheap scalar observations here — shuffle
bytes, send-queue occupancy, slot waves, startup latency, cluster
CPU-seconds — so benchmarks and tests can ask "how much" without
re-deriving it from timing records.  Values describe *simulated*
quantities; recording never advances the simulated clock.

A single module-level registry (:func:`get_metrics`) is the default
sink, mirroring how Hadoop/DataMPI expose one JMX/metrics2 surface per
process; isolated :class:`MetricsRegistry` instances can be created for
tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.rng import derive_rng


class Counter:
    """Monotonically increasing total (e.g. shuffle bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """Last-write-wins instantaneous value (e.g. live processes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:g})"


class Histogram:
    """Streaming distribution: count/sum/min/max plus a bounded sample
    reservoir for percentiles.

    The reservoir is Vitter's Algorithm R: once full, observation *i*
    replaces a random slot with probability ``max_samples / i``, so the
    retained set is a uniform sample of the *whole* stream.  (Keeping
    just the first *max_samples* observations — the previous behaviour —
    froze percentiles at warm-up: a long run whose latency shifted after
    the reservoir filled still reported the early distribution.)  The
    replacement RNG is seeded from the histogram name, so runs are
    deterministic.
    """

    __slots__ = ("name", "count", "total", "min", "max", "max_samples",
                 "_samples", "_rng")

    def __init__(self, name: str, max_samples: int = 4096):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._rng = derive_rng("obs.histogram", name, max_samples)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.max_samples:
                self._samples[slot] = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """q in [0, 100]; nearest-rank over the retained samples."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean})"


class MetricsRegistry:
    """Named metric instruments, created on first use."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def snapshot(self) -> Dict[str, object]:
        """Flat name -> value view (histograms expand to summary stats)."""
        out: Dict[str, object] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, gauge in self.gauges.items():
            out[name] = gauge.value
        for name, histogram in self.histograms.items():
            out[f"{name}.count"] = histogram.count
            out[f"{name}.sum"] = histogram.total
            if histogram.count:
                out[f"{name}.mean"] = histogram.mean
                out[f"{name}.min"] = histogram.min
                out[f"{name}.max"] = histogram.max
                out[f"{name}.p50"] = histogram.percentile(50)
                out[f"{name}.p95"] = histogram.percentile(95)
                out[f"{name}.p99"] = histogram.percentile(99)
        return out

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry the execution layers record into."""
    return _GLOBAL
