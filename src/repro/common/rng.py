"""Deterministic seeded random-number derivation.

All stochastic decisions in the reproduction — fault draws, failure
probabilities, attempt dooms — must be (a) deterministic for a given
seed and (b) independent of execution order, or two runs of the same
query would diverge and the byte-identical-results acceptance tests
would flake.  The engines therefore never share one RNG stream;
instead every decision point derives its own :class:`random.Random`
from a stable tuple of identifiers (job id, task id, attempt number,
...), hashed with SHA-256 so neighbouring tuples decorrelate fully.

>>> derive_rng(7, "job-1", "map-3", 0).random() == \\
...     derive_rng(7, "job-1", "map-3", 0).random()
True
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Part = Union[str, int, float]


def derive_seed(*parts: Part) -> int:
    """Collapse *parts* into a stable 64-bit seed.

    Parts are rendered with an explicit type tag so ``derive_seed(1)``
    and ``derive_seed("1")`` differ.
    """
    digest = hashlib.sha256(
        "\x1f".join(f"{type(p).__name__}:{p}" for p in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(*parts: Part) -> random.Random:
    """A fresh :class:`random.Random` seeded from *parts*.

    Deterministic per tuple: the same (seed, job, task, attempt) always
    yields the same stream, regardless of how many other draws happened
    elsewhere in the run.
    """
    return random.Random(derive_seed(*parts))
