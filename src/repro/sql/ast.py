"""Abstract syntax tree for the HiveQL subset.

Pure data: no evaluation logic lives here (see :mod:`repro.exec.expressions`
for compilation and :mod:`repro.plan.analyzer` for name resolution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

class Expression:
    """Marker base class for expression nodes."""

    def children(self) -> List["Expression"]:
        return []


@dataclass
class Literal(Expression):
    value: object  # int, float, str, bool or None

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return "NULL" if self.value is None else str(self.value)


@dataclass
class ColumnRef(Expression):
    name: str
    table: Optional[str] = None  # alias qualifier, e.g. l.l_orderkey

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    """``*`` or ``alias.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass
class BinaryOp(Expression):
    op: str  # '+', '-', '*', '/', '%', '=', '<>', '<', '<=', '>', '>=', 'and', 'or'
    left: Expression
    right: Expression

    def children(self) -> List[Expression]:
        return [self.left, self.right]

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class UnaryOp(Expression):
    op: str  # '-', 'not'
    operand: Expression

    def children(self) -> List[Expression]:
        return [self.operand]

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass
class FunctionCall(Expression):
    name: str  # lowercase
    args: List[Expression] = field(default_factory=list)
    distinct: bool = False  # COUNT(DISTINCT x)

    def children(self) -> List[Expression]:
        return list(self.args)

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        prefix = "distinct " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass
class CaseWhen(Expression):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    branches: List[Tuple[Expression, Expression]] = field(default_factory=list)
    else_value: Optional[Expression] = None

    def children(self) -> List[Expression]:
        out: List[Expression] = []
        for condition, value in self.branches:
            out.append(condition)
            out.append(value)
        if self.else_value is not None:
            out.append(self.else_value)
        return out

    def __str__(self) -> str:
        parts = " ".join(f"when {c} then {v}" for c, v in self.branches)
        suffix = f" else {self.else_value}" if self.else_value else ""
        return f"case {parts}{suffix} end"


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand, self.low, self.high]


@dataclass
class InList(Expression):
    operand: Expression
    items: List[Expression] = field(default_factory=list)
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand] + list(self.items)


@dataclass
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT single_column ...)`` — uncorrelated only.

    The analyzer rewrites it into a (anti-)join against the DISTINCT
    subquery, the same transformation the TPC-H-on-Hive port applies by
    hand.
    """

    operand: Expression = None
    query: object = None  # Select / UnionAll
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand]


@dataclass
class Like(Expression):
    operand: Expression
    pattern: Expression  # must evaluate to a string with % and _
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand, self.pattern]


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def children(self) -> List[Expression]:
        return [self.operand]


@dataclass
class Cast(Expression):
    operand: Expression
    type_name: str

    def children(self) -> List[Expression]:
        return [self.operand]


# ---------------------------------------------------------------------------
# FROM clause sources
# ---------------------------------------------------------------------------

class Source:
    """Marker base class for FROM-clause items."""


@dataclass
class TableRef(Source):
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return (self.alias or self.name).lower()


@dataclass
class SubquerySource(Source):
    query: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias.lower()


@dataclass
class Join(Source):
    left: Source
    right: Source
    join_type: str  # 'inner' | 'left'
    condition: Optional[Expression]  # ON clause (None only for cross joins)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass
class SelectItem:
    expression: Expression
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expression: Expression
    ascending: bool = True


@dataclass
class Select:
    items: List[SelectItem]
    source: Optional[Source]
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False


@dataclass
class ColumnDef:
    name: str
    type_name: str


@dataclass
class CreateTable:
    name: str
    columns: List[ColumnDef]
    format_name: Optional[str] = None  # STORED AS ...
    if_not_exists: bool = False
    partition_columns: List[ColumnDef] = field(default_factory=list)


@dataclass
class CreateTableAsSelect:
    name: str
    query: Select
    format_name: Optional[str] = None


@dataclass
class DropTable:
    name: str
    if_exists: bool = False


@dataclass
class InsertOverwrite:
    table: str
    query: "Statement"  # Select or UnionAll
    overwrite: bool = True  # False = INSERT INTO (append)
    # static partition spec: PARTITION (col = literal, ...)
    partition: List[Tuple[str, object]] = field(default_factory=list)


@dataclass
class UnionAll:
    """UNION ALL of two or more selects (bag semantics, Hive-style)."""

    branches: List["Select"] = field(default_factory=list)


@dataclass
class SetOption:
    key: str
    value: str


@dataclass
class Explain:
    """EXPLAIN <statement>: show the physical plan without running it."""

    target: "Statement"


@dataclass
class AnalyzeTable:
    """ANALYZE TABLE t COMPUTE STATISTICS [FOR COLUMNS].

    ``with_columns=False`` gathers only basic stats (row count, bytes);
    ``FOR COLUMNS`` additionally scans rows to build NDV and
    heavy-hitter sketches per column.
    """

    name: str
    with_columns: bool = False


Statement = Union[
    Select,
    UnionAll,
    CreateTable,
    CreateTableAsSelect,
    DropTable,
    InsertOverwrite,
    SetOption,
    Explain,
    AnalyzeTable,
]


def walk_expression(expression: Expression):
    """Depth-first pre-order generator over an expression tree."""
    yield expression
    for child in expression.children():
        yield from walk_expression(child)
