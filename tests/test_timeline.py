"""Tests for the ASCII timeline renderer."""

from repro.engines.base import JobTiming, TaskTiming
from repro.reporting.timeline import phase_ruler, render_job_gantt, render_task_timeline


def make_task(task_id, kind, started, finished, sends=()):
    task = TaskTiming(task_id=task_id, kind=kind, started=started, finished=finished)
    task.send_events = list(sends)
    return task


class TestRenderTimeline:
    def test_empty(self):
        assert render_task_timeline([]) == "(no tasks)"

    def test_bars_align_with_times(self):
        tasks = [
            make_task("m0", "map", 0.0, 10.0),
            make_task("m1", "map", 5.0, 10.0),
        ]
        text = render_task_timeline(tasks, width=20)
        lines = text.splitlines()
        assert lines[1].startswith("m0")
        m0_bar = lines[1].split("|")[1]
        m1_bar = lines[2].split("|")[1]
        assert m0_bar.count("=") > m1_bar.count("=")
        assert m1_bar.startswith(".")  # idle before start

    def test_send_markers(self):
        tasks = [make_task("o0", "o", 0.0, 10.0, sends=[5.0])]
        text = render_task_timeline(tasks, width=20, show_sends=True)
        assert "*" in text

    def test_max_tasks_cap(self):
        tasks = [make_task(f"m{i}", "map", 0.0, 1.0) for i in range(100)]
        text = render_task_timeline(tasks, max_tasks=10)
        assert len(text.splitlines()) == 11  # header + 10

    def test_zero_duration_tasks_skipped(self):
        tasks = [make_task("m0", "map", 1.0, 1.0)]
        assert render_task_timeline(tasks) == "(no tasks)"


class TestJobGantt:
    def make_job(self):
        job = JobTiming(job_id="j1", submitted=0.0, first_task_started=2.0,
                        shuffle_done=8.0, finished=10.0, num_maps=2, num_reducers=1)
        job.tasks = [
            make_task("m0", "map", 2.0, 6.0),
            make_task("r0", "reduce", 6.0, 10.0),
        ]
        return job

    def test_header_and_filter(self):
        job = self.make_job()
        text = render_job_gantt(job, kinds={"map"})
        assert "j1" in text
        assert "m0" in text and "r0" not in text

    def test_phase_ruler_markers(self):
        ruler = phase_ruler(self.make_job(), width=40)
        assert "S" in ruler and "M" in ruler and "E" in ruler
        assert ruler.index("S") < ruler.index("M") < ruler.index("E")

    def test_gantt_with_real_run(self, big_warehouse):
        from repro import connect

        hdfs, metastore = big_warehouse
        session = connect(engine="datampi", hdfs=hdfs, metastore=metastore)
        result = session.query("SELECT grp, count(*) FROM facts GROUP BY grp")
        text = render_job_gantt(result.execution.jobs[0])
        assert "o0" in text
        assert "=" in text
