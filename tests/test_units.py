"""Tests for repro.common.units."""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import (
    GB,
    KB,
    MB,
    format_duration,
    format_size,
    parse_size,
)


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("123") == 123

    def test_kb(self):
        assert parse_size("2KB") == 2 * KB

    def test_mb_with_space(self):
        assert parse_size("64 MB") == 64 * MB

    def test_fractional_gb(self):
        assert parse_size("1.5GB") == int(1.5 * GB)

    def test_lowercase_suffix(self):
        assert parse_size("2k") == 2 * KB

    def test_short_suffix(self):
        assert parse_size("3g") == 3 * GB

    def test_bad_text_raises(self):
        with pytest.raises(ConfigError):
            parse_size("lots")

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            parse_size("")


class TestFormatSize:
    def test_bytes(self):
        assert format_size(512) == "512.0 B"

    def test_mb(self):
        assert format_size(935 * MB) == "935.0 MB"

    def test_gb(self):
        assert format_size(17 * GB) == "17.0 GB"

    def test_rounds_up_units(self):
        assert format_size(1024 * 1024) == "1.0 MB"


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(61.5) == "01:01.5"

    def test_zero(self):
        assert format_duration(0) == "00:00.0"

    def test_negative(self):
        assert format_duration(-61.5) == "-01:01.5"

    def test_hours(self):
        assert format_duration(3725) == "1:02:05"
