"""Exception hierarchy for the repro package.

Each layer raises its own subclass so callers can distinguish a query-text
problem (:class:`ParseError`), a schema problem (:class:`SemanticError`),
a planning problem (:class:`PlanError`) and a runtime failure
(:class:`ExecutionError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """Invalid or missing configuration value."""


class EngineConfigError(ConfigError):
    """``engine_config`` passed to :func:`repro.connect` referenced an
    option the target engine does not declare, or a value that does not
    parse as the declared type.

    Carries the engine name and offending key so callers can surface the
    valid option list (see ``repro.engines.EngineSpec.options``).
    """

    def __init__(self, message: str, engine: str = "", key: str = ""):
        super().__init__(message)
        self.engine = engine
        self.key = key


class ParseError(ReproError):
    """The HiveQL text could not be tokenized or parsed.

    Carries the offending line/column when known.
    """

    def __init__(self, message: str, line: int = -1, column: int = -1):
        location = f" at line {line}:{column}" if line >= 0 else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SemanticError(ReproError):
    """The query parsed but references unknown tables/columns or mis-typed
    expressions."""


class PlanError(ReproError):
    """Logical or physical plan construction failed."""


class ExecutionError(ReproError):
    """A task failed at runtime inside one of the execution engines."""


class JobAbortedError(ExecutionError):
    """A gang-scheduled job was torn down because one of its ranks was
    interrupted (node crash, injected task failure).

    The DataMPI engine raises this per attempt; the driver-level retry
    loop consumes it and resubmits the job under exponential backoff.
    """

    def __init__(self, message: str, job_id: str = "", cause: object = None):
        super().__init__(message)
        self.job_id = job_id
        self.cause = cause


class RetryExhaustedError(ExecutionError):
    """Every resubmission of a gang-scheduled job failed.

    Carries the attempt count so the session/driver can decide whether
    to degrade gracefully onto another engine (``repro.retry.fallback``).
    """

    def __init__(self, message: str, job_id: str = "", attempts: int = 0):
        super().__init__(message)
        self.job_id = job_id
        self.attempts = attempts


class QueryTimeoutError(ExecutionError):
    """A query missed its deadline and was cancelled by the scheduler.

    Carries the query id and the deadline (simulated seconds) so SLO
    accounting can distinguish deadline misses from genuine failures.
    """

    def __init__(self, message: str, query_id: str = "", deadline: float = 0.0):
        super().__init__(message)
        self.query_id = query_id
        self.deadline = deadline


class AdmissionRejectedError(ReproError):
    """The workload scheduler refused to admit a submitted query.

    Raised synchronously by ``Session.submit`` under the ``capacity``
    policy when the target pool is running at its concurrency cap *and*
    its bounded wait queue is full.  Carries the pool state so callers
    can shed load or resubmit elsewhere.
    """

    def __init__(self, message: str, pool: str = "", running: int = 0,
                 queued: int = 0, max_concurrent: int = 0, max_queue: int = 0):
        super().__init__(message)
        self.pool = pool
        self.running = running
        self.queued = queued
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue


class QueryCancelledError(ReproError):
    """``QueryHandle.result()`` was called on a query cancelled before it
    started executing."""

    def __init__(self, message: str, query_id: str = ""):
        super().__init__(message)
        self.query_id = query_id


class StorageError(ReproError):
    """HDFS-simulation or file-format failure (missing path, corrupt
    stripe, bad split)."""
