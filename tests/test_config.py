"""Tests for repro.common.config.Configuration."""

import pytest

from repro.common.config import Configuration
from repro.common.errors import ConfigError


class TestConfiguration:
    def test_get_default(self):
        conf = Configuration()
        assert conf.get("missing") is None
        assert conf.get("missing", "x") == "x"

    def test_set_and_get(self):
        conf = Configuration()
        conf.set("a.b", "value")
        assert conf.get("a.b") == "value"

    def test_constructor_values(self):
        conf = Configuration({"k": "v"})
        assert conf.get("k") == "v"

    def test_int_accessor(self):
        conf = Configuration({"n": "6"})
        assert conf.get_int("n", 1) == 6
        assert conf.get_int("missing", 4) == 4

    def test_int_accessor_bad_value(self):
        conf = Configuration({"n": "abc"})
        with pytest.raises(ConfigError):
            conf.get_int("n", 1)

    def test_float_accessor(self):
        conf = Configuration({"f": "0.4"})
        assert conf.get_float("f", 0.0) == pytest.approx(0.4)

    def test_bool_accessor_truthy(self):
        for text in ("true", "1", "yes", "on", "TRUE"):
            conf = Configuration({"b": text})
            assert conf.get_bool("b", False) is True

    def test_bool_accessor_falsy(self):
        for text in ("false", "0", "no", "off"):
            conf = Configuration({"b": text})
            assert conf.get_bool("b", True) is False

    def test_bool_accessor_invalid(self):
        conf = Configuration({"b": "maybe"})
        with pytest.raises(ConfigError):
            conf.get_bool("b", True)

    def test_bool_set_normalizes(self):
        conf = Configuration()
        conf.set("b", True)
        assert conf.get("b") == "true"

    def test_numeric_set_stringifies(self):
        conf = Configuration()
        conf.set("n", 42)
        assert conf.get("n") == "42"

    def test_copy_is_independent(self):
        conf = Configuration({"k": "v"})
        clone = conf.copy()
        clone.set("k", "other")
        assert conf.get("k") == "v"

    def test_contains_and_len(self):
        conf = Configuration({"a": "1", "b": "2"})
        assert "a" in conf
        assert len(conf) == 2

    def test_iter_sorted(self):
        conf = Configuration({"b": "2", "a": "1"})
        assert list(conf) == [("a", "1"), ("b", "2")]

    def test_empty_key_rejected(self):
        conf = Configuration()
        with pytest.raises(ConfigError):
            conf.set("", "v")
