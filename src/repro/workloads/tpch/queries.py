"""The 22 TPC-H queries, ported to the HiveQL subset.

Following the public TPC-H-on-Hive port the paper used (ref [19]):

* correlated subqueries / EXISTS / IN-subquery become explicit temp
  tables (CTAS stages) joined back — the plan shapes (job counts) match
  what Hive 0.13 produced for that port;
* date arithmetic is pre-computed into literals;
* anti-joins are LEFT JOIN + IS NULL.

``tpch_query(n, sf)`` returns the full script (including temp-table
cleanup); ``sf`` parameterizes Q11's spec fraction 0.0001/SF.
"""

from __future__ import annotations

from typing import List

TPCH_QUERY_IDS: List[int] = list(range(1, 23))

_QUERIES = {}

_QUERIES[1] = """
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus;
"""

_QUERIES[2] = """
DROP TABLE IF EXISTS q2_min_cost;
CREATE TABLE q2_min_cost AS
SELECT ps_partkey AS m_partkey, min(ps_supplycost) AS m_min
FROM partsupp
JOIN supplier ON s_suppkey = ps_suppkey
JOIN nation ON s_nationkey = n_nationkey
JOIN region ON n_regionkey = r_regionkey
WHERE r_name = 'EUROPE'
GROUP BY ps_partkey;

SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
FROM part
JOIN partsupp ON p_partkey = ps_partkey
JOIN supplier ON s_suppkey = ps_suppkey
JOIN nation ON s_nationkey = n_nationkey
JOIN region ON n_regionkey = r_regionkey
JOIN q2_min_cost ON p_partkey = m_partkey AND ps_supplycost = m_min
WHERE p_size = 15 AND p_type LIKE '%BRASS' AND r_name = 'EUROPE'
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
LIMIT 100;

DROP TABLE IF EXISTS q2_min_cost;
"""

_QUERIES[3] = """
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer
JOIN orders ON c_custkey = o_custkey
JOIN lineitem ON l_orderkey = o_orderkey
WHERE c_mktsegment = 'BUILDING'
  AND o_orderdate < '1995-03-15'
  AND l_shipdate > '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10;
"""

_QUERIES[4] = """
DROP TABLE IF EXISTS q4_late;
CREATE TABLE q4_late AS
SELECT DISTINCT l_orderkey AS late_orderkey
FROM lineitem
WHERE l_commitdate < l_receiptdate;

SELECT o_orderpriority, count(*) AS order_count
FROM orders
JOIN q4_late ON o_orderkey = late_orderkey
WHERE o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01'
GROUP BY o_orderpriority
ORDER BY o_orderpriority;

DROP TABLE IF EXISTS q4_late;
"""

_QUERIES[5] = """
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer
JOIN orders ON c_custkey = o_custkey
JOIN lineitem ON l_orderkey = o_orderkey
JOIN supplier ON l_suppkey = s_suppkey AND c_nationkey = s_nationkey
JOIN nation ON s_nationkey = n_nationkey
JOIN region ON n_regionkey = r_regionkey
WHERE r_name = 'ASIA'
  AND o_orderdate >= '1994-01-01' AND o_orderdate < '1995-01-01'
GROUP BY n_name
ORDER BY revenue DESC;
"""

_QUERIES[6] = """
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24;
"""

_QUERIES[7] = """
SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue
FROM (
  SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
         year(l_shipdate) AS l_year,
         l_extendedprice * (1 - l_discount) AS volume
  FROM supplier
  JOIN lineitem ON s_suppkey = l_suppkey
  JOIN orders ON o_orderkey = l_orderkey
  JOIN customer ON c_custkey = o_custkey
  JOIN nation n1 ON s_nationkey = n1.n_nationkey
  JOIN nation n2 ON c_nationkey = n2.n_nationkey
  WHERE ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
      OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
    AND l_shipdate BETWEEN '1995-01-01' AND '1996-12-31'
) shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year;
"""

_QUERIES[8] = """
SELECT o_year,
       sum(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0.0 END) / sum(volume) AS mkt_share
FROM (
  SELECT year(o_orderdate) AS o_year,
         l_extendedprice * (1 - l_discount) AS volume,
         n2.n_name AS nation
  FROM part
  JOIN lineitem ON p_partkey = l_partkey
  JOIN supplier ON s_suppkey = l_suppkey
  JOIN orders ON l_orderkey = o_orderkey
  JOIN customer ON o_custkey = c_custkey
  JOIN nation n1 ON c_nationkey = n1.n_nationkey
  JOIN region ON n1.n_regionkey = r_regionkey
  JOIN nation n2 ON s_nationkey = n2.n_nationkey
  WHERE r_name = 'AMERICA'
    AND o_orderdate BETWEEN '1995-01-01' AND '1996-12-31'
    AND p_type = 'ECONOMY ANODIZED STEEL'
) all_nations
GROUP BY o_year
ORDER BY o_year;
"""

_QUERIES[9] = """
SELECT nation, o_year, sum(amount) AS sum_profit
FROM (
  SELECT n_name AS nation, year(o_orderdate) AS o_year,
         l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity AS amount
  FROM part
  JOIN lineitem ON p_partkey = l_partkey
  JOIN supplier ON s_suppkey = l_suppkey
  JOIN partsupp ON ps_suppkey = l_suppkey AND ps_partkey = l_partkey
  JOIN orders ON o_orderkey = l_orderkey
  JOIN nation ON s_nationkey = n_nationkey
  WHERE p_name LIKE '%green%'
) profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC;
"""

_QUERIES[10] = """
SELECT c_custkey, c_name,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
FROM customer
JOIN orders ON c_custkey = o_custkey
JOIN lineitem ON l_orderkey = o_orderkey
JOIN nation ON c_nationkey = n_nationkey
WHERE o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01'
  AND l_returnflag = 'R'
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC
LIMIT 20;
"""

_QUERIES[11] = """
DROP TABLE IF EXISTS q11_part_value;
CREATE TABLE q11_part_value AS
SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS part_value
FROM partsupp
JOIN supplier ON ps_suppkey = s_suppkey
JOIN nation ON s_nationkey = n_nationkey
WHERE n_name = 'GERMANY'
GROUP BY ps_partkey;

DROP TABLE IF EXISTS q11_threshold;
CREATE TABLE q11_threshold AS
SELECT sum(part_value) * {q11_fraction} AS threshold
FROM q11_part_value;

SELECT ps_partkey, part_value AS value
FROM q11_part_value
CROSS JOIN q11_threshold
WHERE part_value > threshold
ORDER BY value DESC;

DROP TABLE IF EXISTS q11_part_value;
DROP TABLE IF EXISTS q11_threshold;
"""

_QUERIES[12] = """
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders
JOIN lineitem ON o_orderkey = l_orderkey
WHERE l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= '1994-01-01' AND l_receiptdate < '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode;
"""

_QUERIES[13] = """
SELECT c_count, count(*) AS custdist
FROM (
  SELECT c_custkey AS custkey, count(o_orderkey) AS c_count
  FROM customer
  LEFT JOIN (
    SELECT o_orderkey, o_custkey
    FROM orders
    WHERE o_comment NOT LIKE '%special%requests%'
  ) filtered_orders ON c_custkey = o_custkey
  GROUP BY c_custkey
) c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC;
"""

_QUERIES[14] = """
SELECT 100.0 * sum(CASE WHEN p_type LIKE 'PROMO%'
                        THEN l_extendedprice * (1 - l_discount)
                        ELSE 0.0 END) / sum(l_extendedprice * (1 - l_discount))
       AS promo_revenue
FROM lineitem
JOIN part ON l_partkey = p_partkey
WHERE l_shipdate >= '1995-09-01' AND l_shipdate < '1995-10-01';
"""

_QUERIES[15] = """
DROP TABLE IF EXISTS q15_revenue;
CREATE TABLE q15_revenue AS
SELECT l_suppkey AS supplier_no,
       sum(l_extendedprice * (1 - l_discount)) AS total_revenue
FROM lineitem
WHERE l_shipdate >= '1996-01-01' AND l_shipdate < '1996-04-01'
GROUP BY l_suppkey;

DROP TABLE IF EXISTS q15_max;
CREATE TABLE q15_max AS
SELECT max(total_revenue) AS max_revenue FROM q15_revenue;

SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM supplier
JOIN q15_revenue ON s_suppkey = supplier_no
CROSS JOIN q15_max
WHERE total_revenue = max_revenue
ORDER BY s_suppkey;

DROP TABLE IF EXISTS q15_revenue;
DROP TABLE IF EXISTS q15_max;
"""

_QUERIES[16] = """
DROP TABLE IF EXISTS q16_complaints;
CREATE TABLE q16_complaints AS
SELECT s_suppkey AS bad_suppkey
FROM supplier
WHERE s_comment LIKE '%Customer%Complaints%';

SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp
JOIN part ON p_partkey = ps_partkey
LEFT JOIN q16_complaints ON ps_suppkey = bad_suppkey
WHERE p_brand <> 'Brand#45'
  AND p_type NOT LIKE 'MEDIUM POLISHED%'
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
  AND bad_suppkey IS NULL
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size;

DROP TABLE IF EXISTS q16_complaints;
"""

_QUERIES[17] = """
DROP TABLE IF EXISTS q17_avg_qty;
CREATE TABLE q17_avg_qty AS
SELECT l_partkey AS a_partkey, 0.2 * avg(l_quantity) AS avg_threshold
FROM lineitem
GROUP BY l_partkey;

SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem
JOIN part ON p_partkey = l_partkey
JOIN q17_avg_qty ON l_partkey = a_partkey
WHERE p_brand = 'Brand#23'
  AND p_container = 'MED BOX'
  AND l_quantity < avg_threshold;

DROP TABLE IF EXISTS q17_avg_qty;
"""

_QUERIES[18] = """
DROP TABLE IF EXISTS q18_big_orders;
CREATE TABLE q18_big_orders AS
SELECT l_orderkey AS big_orderkey, sum(l_quantity) AS total_quantity
FROM lineitem
GROUP BY l_orderkey
HAVING sum(l_quantity) > 300;

SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity) AS order_quantity
FROM customer
JOIN orders ON c_custkey = o_custkey
JOIN q18_big_orders ON o_orderkey = big_orderkey
JOIN lineitem ON o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100;

DROP TABLE IF EXISTS q18_big_orders;
"""

_QUERIES[19] = """
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem
JOIN part ON p_partkey = l_partkey
WHERE (p_brand = 'Brand#12'
       AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
       AND l_quantity >= 1 AND l_quantity <= 11
       AND p_size BETWEEN 1 AND 5
       AND l_shipmode IN ('AIR', 'REG AIR')
       AND l_shipinstruct = 'DELIVER IN PERSON')
   OR (p_brand = 'Brand#23'
       AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
       AND l_quantity >= 10 AND l_quantity <= 20
       AND p_size BETWEEN 1 AND 10
       AND l_shipmode IN ('AIR', 'REG AIR')
       AND l_shipinstruct = 'DELIVER IN PERSON')
   OR (p_brand = 'Brand#34'
       AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
       AND l_quantity >= 20 AND l_quantity <= 30
       AND p_size BETWEEN 1 AND 15
       AND l_shipmode IN ('AIR', 'REG AIR')
       AND l_shipinstruct = 'DELIVER IN PERSON');
"""

_QUERIES[20] = """
DROP TABLE IF EXISTS q20_shipped;
CREATE TABLE q20_shipped AS
SELECT l_partkey AS lp, l_suppkey AS ls, 0.5 * sum(l_quantity) AS half_quantity
FROM lineitem
WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
GROUP BY l_partkey, l_suppkey;

DROP TABLE IF EXISTS q20_forest_parts;
CREATE TABLE q20_forest_parts AS
SELECT DISTINCT p_partkey AS fp
FROM part
WHERE p_name LIKE 'forest%';

DROP TABLE IF EXISTS q20_good_suppliers;
CREATE TABLE q20_good_suppliers AS
SELECT DISTINCT ps_suppkey AS good_suppkey
FROM partsupp
JOIN q20_forest_parts ON ps_partkey = fp
JOIN q20_shipped ON ps_partkey = lp AND ps_suppkey = ls
WHERE ps_availqty > half_quantity;

SELECT s_name, s_address
FROM supplier
JOIN nation ON s_nationkey = n_nationkey
JOIN q20_good_suppliers ON s_suppkey = good_suppkey
WHERE n_name = 'CANADA'
ORDER BY s_name;

DROP TABLE IF EXISTS q20_shipped;
DROP TABLE IF EXISTS q20_forest_parts;
DROP TABLE IF EXISTS q20_good_suppliers;
"""

_QUERIES[21] = """
DROP TABLE IF EXISTS q21_suppliers_per_order;
CREATE TABLE q21_suppliers_per_order AS
SELECT l_orderkey AS all_orderkey, count(DISTINCT l_suppkey) AS supplier_count
FROM lineitem
GROUP BY l_orderkey;

DROP TABLE IF EXISTS q21_late_suppliers;
CREATE TABLE q21_late_suppliers AS
SELECT l_orderkey AS late_orderkey, count(DISTINCT l_suppkey) AS late_count
FROM lineitem
WHERE l_receiptdate > l_commitdate
GROUP BY l_orderkey;

SELECT s_name, count(*) AS numwait
FROM lineitem
JOIN orders ON o_orderkey = l_orderkey
JOIN supplier ON s_suppkey = l_suppkey
JOIN nation ON s_nationkey = n_nationkey
JOIN q21_suppliers_per_order ON l_orderkey = all_orderkey
JOIN q21_late_suppliers ON l_orderkey = late_orderkey
WHERE o_orderstatus = 'F'
  AND l_receiptdate > l_commitdate
  AND n_name = 'SAUDI ARABIA'
  AND supplier_count > 1
  AND late_count = 1
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100;

DROP TABLE IF EXISTS q21_suppliers_per_order;
DROP TABLE IF EXISTS q21_late_suppliers;
"""

_QUERIES[22] = """
DROP TABLE IF EXISTS q22_avg_balance;
CREATE TABLE q22_avg_balance AS
SELECT avg(c_acctbal) AS avg_balance
FROM customer
WHERE c_acctbal > 0.00
  AND substr(c_phone, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17');

DROP TABLE IF EXISTS q22_with_orders;
CREATE TABLE q22_with_orders AS
SELECT DISTINCT o_custkey AS ordering_custkey FROM orders;

SELECT cntrycode, count(*) AS numcust, sum(acctbal) AS totacctbal
FROM (
  SELECT substr(c_phone, 1, 2) AS cntrycode, c_acctbal AS acctbal
  FROM customer
  CROSS JOIN q22_avg_balance
  LEFT JOIN q22_with_orders ON c_custkey = ordering_custkey
  WHERE substr(c_phone, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17')
    AND c_acctbal > avg_balance
    AND ordering_custkey IS NULL
) qualified
GROUP BY cntrycode
ORDER BY cntrycode;

DROP TABLE IF EXISTS q22_avg_balance;
DROP TABLE IF EXISTS q22_with_orders;
"""


def tpch_query(number: int, sf: float = 1.0) -> str:
    """The HiveQL script for TPC-H query *number* (1..22)."""
    if number not in _QUERIES:
        raise KeyError(f"TPC-H has queries 1..22, not {number}")
    return _QUERIES[number].format(q11_fraction=0.0001 / max(sf, 1e-9)) \
        if number == 11 else _QUERIES[number]
