"""Physical planning: bound logical tree -> DAG of MapReduce jobs.

The physical plan is engine-neutral (paper §IV-B: *"we continue to share
the query plan optimized for Hadoop"*): the Hadoop engine and the DataMPI
engine execute the **same** :class:`MRJob` objects; only job control,
startup and shuffle differ.

Shuffle-requiring logical nodes (Aggregate, common Join, Sort, Distinct)
each open a new job; Filters/Projects/Limits fuse into the enclosing map
or reduce chain; intermediate results go to temp directories in sequence
format.  Map-join converts a join against a small base table into a
broadcast hash join fused into the consuming chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import (
    Configuration,
    HIVE_MAPJOIN_SMALLTABLE_BYTES,
    SKEWJOIN_FANOUT,
    SKEWJOIN_THRESHOLD,
    STATS_ENABLED,
)
from repro.common.errors import PlanError
from repro.common.rows import DataType, Schema
from repro.common.units import MB
from repro.exec import expressions as bexpr
from repro.exec.expressions import BoundExpression, Const, InputRef
from repro.exec.operators import (
    FileSinkDesc,
    FilterDesc,
    LimitDesc,
    MapGroupByDesc,
    MapJoinDesc,
    ReduceSinkDesc,
    SelectDesc,
    SkewRouteDesc,
)
from repro.obs.metrics import get_metrics
from repro.exec.reduce import (
    ReduceAggregateDesc,
    ReduceDistinctDesc,
    ReduceJoinDesc,
    ReduceSortDesc,
)
from repro.plan.analyzer import collect_input_refs, split_conjuncts
from repro.plan.logical import (
    AggregateNode,
    DistinctNode,
    Filter,
    JoinNode,
    LimitNode,
    LogicalNode,
    Project,
    RowSignature,
    Scan,
    SortNode,
    UnionNode,
)
from repro.stats.model import TableStats
from repro.storage.hdfs import HDFS
from repro.storage.metastore import Metastore

DEFAULT_MAPJOIN_THRESHOLD = 25 * MB  # Hive 0.13 hive.mapjoin.smalltable.filesize
DEFAULT_SKEW_THRESHOLD = 0.2  # heavy-hitter share of a join key column
# require this margin before reordering a shuffle join's build side, so
# sketch noise near parity cannot flap plans between runs
SWAP_MARGIN = 0.8


# ---------------------------------------------------------------------------
# plan data model
# ---------------------------------------------------------------------------

@dataclass
class ScanHints:
    """ORC reader hints derived from the map chain (pruning + pushdown)."""

    columns: Optional[List[str]] = None  # None = all columns
    stats_conjuncts: List[Tuple[str, str, object]] = field(default_factory=list)


@dataclass
class MapInput:
    """One input relation of a job with its per-record operator chain."""

    location: str
    tag: int
    operators: List[object]  # descriptors; a shuffle job's chain ends in ReduceSinkDesc
    hints: ScanHints = field(default_factory=ScanHints)


@dataclass
class BroadcastSpec:
    """A small table to load and preprocess on every map task (map join)."""

    location: str
    operators: List[object]  # Filter/Select chain applied to the loaded rows
    width: int


@dataclass
class MRJob:
    job_id: str
    inputs: List[MapInput]
    reduce_logic: Optional[object]  # None -> map-only job
    reduce_operators: List[object] = field(default_factory=list)  # ends FileSinkDesc
    output_location: str = ""
    output_schema: Optional[Schema] = None
    output_format: str = "sequence"
    output_partition_values: Optional[Dict[str, object]] = None
    sort_directions: Optional[List[bool]] = None
    num_reducers_hint: Optional[int] = None
    broadcasts: List[BroadcastSpec] = field(default_factory=list)
    is_final: bool = False

    @property
    def is_map_only(self) -> bool:
        return self.reduce_logic is None


@dataclass
class PhysicalPlan:
    jobs: List[MRJob]
    output_location: str
    output_schema: Schema
    final_limit: Optional[int] = None
    # human-readable costing/skew decisions, rendered by explain_plan
    optimizer_notes: List[str] = field(default_factory=list)

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)


# ---------------------------------------------------------------------------
# compiler
# ---------------------------------------------------------------------------

class _MapStream:
    """Un-materialized map-side stream: per-file-input operator chains."""

    def __init__(self, inputs: List[MapInput], signature: RowSignature,
                 broadcasts: Optional[List[BroadcastSpec]] = None,
                 base_table: Optional[str] = None):
        self.inputs = inputs
        self.signature = signature
        self.broadcasts = broadcasts or []
        self.base_table = base_table  # table name when chain is over one base table

    def append(self, descriptor: object) -> None:
        for map_input in self.inputs:
            map_input.operators.append(descriptor)


class _ReduceStream:
    """An open job whose reduce-side chain is still growing."""

    def __init__(self, job: MRJob, signature: RowSignature):
        self.job = job
        self.signature = signature

    def append(self, descriptor: object) -> None:
        self.job.reduce_operators.append(descriptor)


@dataclass
class _SideEstimate:
    """What the cost model knows about one join input (see
    :meth:`PhysicalCompiler._estimate_stream`)."""

    table: Optional[str] = None
    raw_bytes: Optional[float] = None       # live logical bytes on disk
    est_bytes: Optional[float] = None       # post-filter estimate
    est_rows: Optional[float] = None
    selectivity: float = 1.0
    stats: Optional[TableStats] = None
    # row position -> base column name, None entries unresolvable
    column_map: Optional[List[Optional[str]]] = None
    conjuncts: List[Tuple[str, str, object]] = field(default_factory=list)

    @property
    def has_stats(self) -> bool:
        return self.stats is not None

    def size_or_inf(self) -> float:
        return self.est_bytes if self.est_bytes is not None else float("inf")

    def key_column_stats(self, key_expressions):
        """Column stats behind a single-column join key, if resolvable."""
        if self.stats is None or self.column_map is None:
            return None
        if len(key_expressions) != 1:
            return None
        key = key_expressions[0]
        if not isinstance(key, InputRef):
            return None
        if not 0 <= key.index < len(self.column_map):
            return None
        column = self.column_map[key.index]
        if column is None:
            return None
        return self.stats.column(column)


def _fmt_bytes(value: Optional[float]) -> str:
    if value is None:
        return "?"
    if value >= MB:
        return f"{value / MB:.1f}MB"
    if value >= 1024:
        return f"{value / 1024:.1f}KB"
    return f"{value:.0f}B"


class PhysicalCompiler:
    def __init__(self, metastore: Metastore, hdfs: HDFS, conf: Optional[Configuration] = None,
                 query_id: str = "q"):
        self.metastore = metastore
        self.hdfs = hdfs
        self.conf = conf or Configuration()
        self.query_id = query_id
        self._job_counter = 0
        self._temp_counter = 0
        self.jobs: List[MRJob] = []
        self.notes: List[str] = []
        self._stats_enabled = self.conf.get_bool(STATS_ENABLED, True)
        self._skew_threshold = self.conf.get_float(
            SKEWJOIN_THRESHOLD, DEFAULT_SKEW_THRESHOLD
        )
        self._skew_fanout = self.conf.get_int(SKEWJOIN_FANOUT, 0)

    # -- public API ---------------------------------------------------------
    def compile(
        self,
        root: LogicalNode,
        output_location: str,
        output_format: str = "text",
    ) -> PhysicalPlan:
        self.jobs = []
        self.notes = []
        final_limit = root.limit if isinstance(root, LimitNode) else None
        stream = self._compile_node(root)
        schema = stream.signature.to_schema()
        if isinstance(stream, _ReduceStream):
            self._close_job(stream, output_location, output_format, final=True)
        else:
            job = self._new_job(stream.inputs, None, broadcasts=stream.broadcasts)
            stream.append(FileSinkDesc(column_names=schema.names))
            job.output_location = output_location
            job.output_schema = schema
            job.output_format = output_format
            job.is_final = True
            self.jobs.append(job)
        for job in self.jobs:
            for map_input in job.inputs:
                map_input.hints = self._compute_scan_hints(map_input)
        return PhysicalPlan(
            jobs=self.jobs,
            output_location=output_location,
            output_schema=schema,
            final_limit=final_limit,
            optimizer_notes=list(self.notes),
        )

    # -- helpers ----------------------------------------------------------------
    def _next_temp(self) -> str:
        self._temp_counter += 1
        return f"/tmp/hive/{self.query_id}/inter-{self._temp_counter}"

    def _new_job(self, inputs: List[MapInput], reduce_logic: Optional[object],
                 broadcasts: Optional[List[BroadcastSpec]] = None) -> MRJob:
        self._job_counter += 1
        return MRJob(
            job_id=f"{self.query_id}-job{self._job_counter}",
            inputs=inputs,
            reduce_logic=reduce_logic,
            broadcasts=broadcasts or [],
        )

    def _close_job(
        self,
        stream: _ReduceStream,
        location: str,
        output_format: str,
        final: bool,
    ) -> None:
        schema = stream.signature.to_schema()
        stream.job.reduce_operators.append(FileSinkDesc(column_names=schema.names))
        stream.job.output_location = location
        stream.job.output_schema = schema
        stream.job.output_format = output_format
        stream.job.is_final = final
        self.jobs.append(stream.job)

    def _materialize(self, stream) -> _MapStream:
        """Force a stream into readable files (temp dir) if it is an open
        reduce-side job; map streams pass through."""
        if isinstance(stream, _MapStream):
            return stream
        location = self._next_temp()
        self._close_job(stream, location, "sequence", final=False)
        return _MapStream(
            inputs=[MapInput(location=location, tag=0, operators=[])],
            signature=stream.signature,
        )

    # -- node dispatch --------------------------------------------------------------
    def _compile_node(self, node: LogicalNode):
        if isinstance(node, Scan):
            return self._compile_scan(node)
        if isinstance(node, Filter):
            stream = self._compile_node(node.child)
            stream.append(FilterDesc(node.predicate))
            return stream
        if isinstance(node, Project):
            stream = self._compile_node(node.child)
            stream.append(SelectDesc(node.expressions))
            stream.signature = node.signature
            return stream
        if isinstance(node, LimitNode):
            stream = self._compile_node(node.child)
            stream.append(LimitDesc(node.limit))
            return stream
        if isinstance(node, AggregateNode):
            return self._compile_aggregate(node)
        if isinstance(node, DistinctNode):
            return self._compile_distinct(node)
        if isinstance(node, JoinNode):
            return self._compile_join(node)
        if isinstance(node, SortNode):
            return self._compile_sort(node)
        if isinstance(node, UnionNode):
            return self._compile_union(node)
        raise PlanError(f"cannot compile {type(node).__name__}")

    def _compile_union(self, node: UnionNode) -> _MapStream:
        """UNION ALL: the branches' map inputs merge into one stream;
        every branch keeps its own per-input chain, later operators are
        appended to all of them."""
        inputs: List[MapInput] = []
        broadcasts: List[BroadcastSpec] = []
        for child in node.inputs:
            stream = self._materialize(self._compile_node(child))
            inputs.extend(stream.inputs)
            broadcasts.extend(stream.broadcasts)
        return _MapStream(
            inputs=inputs,
            signature=node.signature,
            broadcasts=broadcasts,
        )

    def _compile_scan(self, node: Scan) -> _MapStream:
        splits_inputs = [
            MapInput(location=node.table.location, tag=0, operators=[])
        ]
        return _MapStream(
            inputs=splits_inputs,
            signature=node.signature,
            base_table=node.table.name,
        )

    # -- aggregate ---------------------------------------------------------------
    def _compile_aggregate(self, node: AggregateNode) -> _ReduceStream:
        stream = self._materialize(self._compile_node(node.child))
        key_count = len(node.group_expressions)
        use_partials = not node.has_distinct

        if use_partials:
            aggregates = [(call.aggregate, call.argument) for call in node.calls]
            stream.append(
                MapGroupByDesc(
                    key_expressions=list(node.group_expressions),
                    aggregates=aggregates,
                )
            )
            partial_arities = [
                len(call.aggregate.partial(call.aggregate.create()))
                for call in node.calls
            ]
            flat_width = key_count + sum(partial_arities)
            sink = ReduceSinkDesc(
                key_expressions=[InputRef(i) for i in range(key_count)],
                value_expressions=[InputRef(i) for i in range(key_count, flat_width)],
            )
            logic = ReduceAggregateDesc(
                key_arity=key_count,
                aggregates=[call.aggregate for call in node.calls],
                inputs_are_partials=True,
                partial_arities=partial_arities,
            )
        else:
            values = [
                call.argument if call.argument is not None else Const(True, DataType.BOOLEAN)
                for call in node.calls
            ]
            sink = ReduceSinkDesc(
                key_expressions=list(node.group_expressions),
                value_expressions=values,
            )
            logic = ReduceAggregateDesc(
                key_arity=key_count,
                aggregates=[call.aggregate for call in node.calls],
                inputs_are_partials=False,
            )
        stream.append(sink)
        job = self._new_job(stream.inputs, logic, broadcasts=stream.broadcasts)
        if key_count == 0:
            job.num_reducers_hint = 1  # global aggregate
        return _ReduceStream(job, node.signature)

    def _compile_distinct(self, node: DistinctNode) -> _ReduceStream:
        stream = self._materialize(self._compile_node(node.child))
        width = len(node.signature)
        stream.append(
            MapGroupByDesc(
                key_expressions=[InputRef(i) for i in range(width)], aggregates=[]
            )
        )
        stream.append(
            ReduceSinkDesc(
                key_expressions=[InputRef(i) for i in range(width)],
                value_expressions=[],
            )
        )
        job = self._new_job(stream.inputs, ReduceDistinctDesc(key_arity=width),
                            broadcasts=stream.broadcasts)
        return _ReduceStream(job, node.signature)

    # -- join --------------------------------------------------------------------
    def _table_bytes(self, stream: _MapStream) -> Optional[float]:
        if stream.base_table is None:
            return None
        table = self.metastore.get_table(stream.base_table)
        try:
            return table.logical_bytes(self.hdfs)
        except Exception:
            return None

    def _estimate_stream(self, stream) -> "_SideEstimate":
        """Cost-model view of one join input.

        For a single-base-table map stream: raw logical bytes, fresh
        metastore stats (if any), selectivity of the filter conjuncts
        already applied on the chain, and a row-position -> base-column
        map for resolving join keys to column stats.  Anything else
        (materialized reduce output, union, post-map-join chain) gets an
        empty estimate and the planner falls back to seed behavior.
        """
        estimate = _SideEstimate()
        if not isinstance(stream, _MapStream) or stream.base_table is None:
            return estimate
        if len(stream.inputs) != 1:
            return estimate
        table = self.metastore.get_table(stream.base_table)
        estimate.table = table.name
        try:
            estimate.raw_bytes = table.logical_bytes(self.hdfs)
        except Exception:
            estimate.raw_bytes = None
        estimate.est_bytes = estimate.raw_bytes
        if not self._stats_enabled:
            return estimate
        stats = self.metastore.get_table_stats(table.name)
        if stats is None:
            return estimate
        estimate.stats = stats
        names = [column.name.lower() for column in table.full_schema.columns]
        # mapping[i] = base-column index feeding row position i (same walk
        # as _compute_scan_hints, restricted to the ops a scan chain has
        # before its join descriptor)
        mapping: List[int] = list(range(len(names)))
        conjuncts: List[Tuple[str, str, object]] = []
        resolved = True
        for descriptor in stream.inputs[0].operators:
            if isinstance(descriptor, FilterDesc):
                conjuncts.extend(
                    self._extract_stats_conjuncts(descriptor.predicate, names, mapping)
                )
            elif isinstance(descriptor, SelectDesc):
                if all(
                    isinstance(e, InputRef) and 0 <= e.index < len(mapping)
                    for e in descriptor.expressions
                ):
                    mapping = [mapping[e.index] for e in descriptor.expressions]
                else:
                    resolved = False
                    break
            elif isinstance(descriptor, LimitDesc):
                continue
            else:
                resolved = False
                break
        if resolved:
            estimate.column_map = [
                names[index] if 0 <= index < len(names) else None
                for index in mapping
            ]
        estimate.conjuncts = conjuncts
        if stats.has_column_stats and conjuncts:
            estimate.selectivity = stats.conjunct_selectivity(conjuncts)
        base_bytes = (
            stats.total_bytes if estimate.raw_bytes is None else estimate.raw_bytes
        )
        estimate.est_bytes = base_bytes * estimate.selectivity
        estimate.est_rows = stats.row_count * estimate.selectivity
        return estimate

    def _compile_join(self, node: JoinNode):
        left_stream = self._compile_node(node.left)
        right_stream = self._compile_node(node.right)
        threshold = self.conf.get_float(
            HIVE_MAPJOIN_SMALLTABLE_BYTES, DEFAULT_MAPJOIN_THRESHOLD
        )
        left_est = self._estimate_stream(left_stream)
        right_est = self._estimate_stream(right_stream)

        # broadcast conversion applies to equi joins and cross joins alike
        # (a cross join's empty key matches every probe row); sizing uses
        # the post-filter estimate when stats exist, raw bytes otherwise
        right_small = (
            isinstance(right_stream, _MapStream)
            and right_est.size_or_inf() < threshold
        )
        left_small = (
            isinstance(left_stream, _MapStream)
            and left_est.size_or_inf() < threshold
            and node.join_type == "inner"
        )
        if (
            right_small
            and left_small
            and left_est.has_stats
            and right_est.has_stats
            and left_est.est_bytes < right_est.est_bytes
        ):
            # both sides broadcastable: build from the smaller estimate
            right_small = False
            self.notes.append(
                f"join order: building from {left_est.table} "
                f"({_fmt_bytes(left_est.est_bytes)}) instead of "
                f"{right_est.table} ({_fmt_bytes(right_est.est_bytes)})"
            )
        if right_small:
            self._note_map_join(right_est, left_est, threshold)
            return self._map_join(node, big=left_stream, small=right_stream, swap=False)
        if left_small:
            self._note_map_join(left_est, right_est, threshold)
            return self._map_join(node, big=right_stream, small=left_stream, swap=True)

        return self._common_join(node, left_stream, right_stream, left_est, right_est)

    def _note_map_join(
        self, small: "_SideEstimate", big: "_SideEstimate", threshold: float
    ) -> None:
        build = small.table or "intermediate"
        probe = big.table or "intermediate"
        if small.has_stats:
            get_metrics().counter("optimizer.mapjoin_auto").add(1)
            detail = (
                f"est {_fmt_bytes(small.est_bytes)} "
                f"(raw {_fmt_bytes(small.raw_bytes)}, "
                f"sel {small.selectivity:.3f}, stats)"
            )
        else:
            detail = f"raw {_fmt_bytes(small.raw_bytes)}"
        self.notes.append(
            f"map-join: build {build} [{detail}] < threshold "
            f"{_fmt_bytes(threshold)}, probe {probe}"
        )

    def _map_join(self, node: JoinNode, big, small: _MapStream, swap: bool):
        small_chain: List[object] = []
        for descriptor in small.inputs[0].operators:
            small_chain.append(descriptor)
        location = small.inputs[0].location
        if len(small.inputs) != 1:
            raise PlanError("broadcast side must be a single location")
        small_width = len(small.signature)
        if swap:
            probe_keys, build_keys = list(node.right_keys), list(node.left_keys)
        else:
            probe_keys, build_keys = list(node.left_keys), list(node.right_keys)
        descriptor = MapJoinDesc(
            small_location=location,
            probe_key_expressions=probe_keys,
            build_key_expressions=build_keys,
            join_type=node.join_type,
            small_width=small_width,
            swap_output=swap,
        )
        big.append(descriptor)
        broadcast = BroadcastSpec(location=location, operators=small_chain, width=small_width)
        if isinstance(big, _MapStream):
            big.broadcasts.append(broadcast)
            big.base_table = None  # widths changed; no longer a pure table chain
        else:
            big.job.broadcasts.append(broadcast)
        big.signature = node.signature
        if node.residual is not None:
            big.append(FilterDesc(node.residual))
        return big

    def _common_join(
        self,
        node: JoinNode,
        left_stream,
        right_stream,
        left_est: Optional["_SideEstimate"] = None,
        right_est: Optional["_SideEstimate"] = None,
    ) -> _ReduceStream:
        left_est = left_est or _SideEstimate()
        right_est = right_est or _SideEstimate()
        left_keys_src = list(node.left_keys)
        right_keys_src = list(node.right_keys)

        # build-side ordering: JoinReduceLogic buffers the tag-0 side per
        # key group, so with trustworthy estimates on both sides put the
        # smaller one there.  Inner joins only (the preserved side of a
        # LEFT join must stay tag 0), and only past a margin so sketch
        # noise cannot flap the plan.  Output columns are restored by a
        # Select on the reduce side, so downstream plans are unaffected.
        swapped = (
            node.join_type == "inner"
            and not self._both_sides_same(left_stream, right_stream)
            and left_est.has_stats
            and right_est.has_stats
            and left_est.est_rows is not None
            and right_est.est_rows is not None
            and right_est.est_rows < left_est.est_rows * SWAP_MARGIN
        )
        if swapped:
            left_stream, right_stream = right_stream, left_stream
            left_est, right_est = right_est, left_est
            left_keys_src, right_keys_src = right_keys_src, left_keys_src
            get_metrics().counter("optimizer.join_swaps").add(1)
            self.notes.append(
                f"shuffle join order: buffering {left_est.table} "
                f"(~{left_est.est_rows:.0f} rows) before {right_est.table} "
                f"(~{right_est.est_rows:.0f} rows)"
            )

        skew_left, skew_right = self._plan_skew(
            node, left_keys_src, right_keys_src, left_est, right_est
        )

        left_stream = self._materialize(left_stream)
        right_stream = self._materialize(right_stream)
        left_width = len(left_stream.signature)
        right_width = len(right_stream.signature)

        cross = not node.left_keys
        left_keys = left_keys_src or [Const(0, DataType.INT)]
        right_keys = right_keys_src or [Const(0, DataType.INT)]

        left_stream.append(
            ReduceSinkDesc(
                key_expressions=list(left_keys),
                value_expressions=[InputRef(i) for i in range(left_width)],
                tag=0,
                skew=skew_left,
            )
        )
        right_stream.append(
            ReduceSinkDesc(
                key_expressions=list(right_keys),
                value_expressions=[InputRef(i) for i in range(right_width)],
                tag=1,
                skew=skew_right,
            )
        )
        for map_input in right_stream.inputs:
            map_input.tag = 1

        inputs = left_stream.inputs + right_stream.inputs
        logic = ReduceJoinDesc(
            join_type=node.join_type,
            left_width=left_width,
            right_width=right_width,
        )
        job = self._new_job(
            inputs, logic,
            broadcasts=left_stream.broadcasts + right_stream.broadcasts,
        )
        if cross:
            job.num_reducers_hint = 1
        stream = _ReduceStream(job, node.signature)
        if swapped:
            # reduce emits right+left; restore the plan's left+right order
            stream.append(
                SelectDesc(
                    [InputRef(left_width + i) for i in range(right_width)]
                    + [InputRef(i) for i in range(left_width)]
                )
            )
        if node.residual is not None:
            stream.append(FilterDesc(node.residual))
        return stream

    @staticmethod
    def _both_sides_same(left_stream, right_stream) -> bool:
        """Self-joins share MapInput objects only when streams alias."""
        return left_stream is right_stream

    def _plan_skew(
        self,
        node: JoinNode,
        left_keys: List[BoundExpression],
        right_keys: List[BoundExpression],
        left_est: "_SideEstimate",
        right_est: "_SideEstimate",
    ) -> Tuple[Optional[SkewRouteDesc], Optional[SkewRouteDesc]]:
        """SharesSkew-style routing for heavy join keys.

        The side whose key column's heavy-hitter sketch crosses
        ``repro.skewjoin.threshold`` has those keys *split* round-robin
        over the reducers; the other side *replicates* its matching rows
        to the same targets, so every split partition joins a disjoint
        big-side slice against the complete other side.  Only the
        preserved (left) side of a LEFT join may be split; cross joins
        are excluded (single reducer anyway).
        """
        threshold = self._skew_threshold
        if not self._stats_enabled or threshold <= 0 or not node.left_keys:
            return None, None
        if node.join_type not in ("inner", "left"):
            return None, None

        def heavy_of(estimate: "_SideEstimate", keys) -> List[Tuple[object, float]]:
            column_stats = estimate.key_column_stats(keys)
            if column_stats is None:
                return []
            return column_stats.heavy_hitters(threshold)

        left_heavy = heavy_of(left_est, left_keys)
        right_heavy = (
            heavy_of(right_est, right_keys) if node.join_type == "inner" else []
        )
        if not left_heavy and not right_heavy:
            return None, None
        # split the side that is both skewed and larger; ties prefer left
        if left_heavy and right_heavy:
            left_size = left_est.est_rows or 0.0
            right_size = right_est.est_rows or 0.0
            split_left = left_size >= right_size
        else:
            split_left = bool(left_heavy)
        hitters = left_heavy if split_left else right_heavy
        heavy_keys = tuple((value,) for value, _share in hitters)
        split_desc = SkewRouteDesc(
            heavy_keys=heavy_keys, mode="split", fanout=self._skew_fanout
        )
        replicate_desc = SkewRouteDesc(
            heavy_keys=heavy_keys, mode="replicate", fanout=self._skew_fanout
        )
        split_est = left_est if split_left else right_est
        side_name = split_est.table or ("left" if split_left else "right")
        get_metrics().counter("optimizer.skew_splits").add(1)
        shares = ", ".join(
            f"{value!r}={share:.2f}" for value, share in hitters[:4]
        )
        self.notes.append(
            f"skew join: splitting {len(heavy_keys)} heavy key(s) on "
            f"{side_name} [{shares}] (threshold {threshold:.2f})"
        )
        if split_left:
            return split_desc, replicate_desc
        return replicate_desc, split_desc

    # -- sort --------------------------------------------------------------------
    def _compile_sort(self, node: SortNode) -> _ReduceStream:
        stream = self._materialize(self._compile_node(node.child))
        width = len(stream.signature)
        stream.append(
            ReduceSinkDesc(
                key_expressions=list(node.sort_expressions),
                value_expressions=[InputRef(i) for i in range(width)],
            )
        )
        job = self._new_job(stream.inputs, ReduceSortDesc(), broadcasts=stream.broadcasts)
        job.sort_directions = list(node.ascending)
        job.num_reducers_hint = 1  # Hive: total ORDER BY -> single reducer
        return _ReduceStream(job, node.signature)

    # -- scan hints ---------------------------------------------------------------
    def _compute_scan_hints(self, map_input: MapInput) -> ScanHints:
        """Column pruning + stats pushdown for base-table inputs.

        Walks the chain while row positions still equal scan columns;
        stops at the first width-changing operator.  Falls back to "all
        columns" when the chain consumes rows opaquely.
        """
        if not self.hdfs.list_dir(map_input.location):
            return ScanHints()
        sample = self.hdfs.list_dir(map_input.location)
        schema = sample[0].schema
        names = [column.name.lower() for column in schema.columns]

        # mapping[i] = scan-column index feeding position i of the current
        # row; pure-InputRef Selects (column pruner output) are looked
        # through so Filters above them still yield stats conjuncts
        mapping: List[int] = list(range(len(names)))

        def map_refs(expression) -> Optional[List[int]]:
            out = []
            for index in collect_input_refs(expression):
                if not 0 <= index < len(mapping):
                    return None
                out.append(mapping[index])
            return out

        needed: set = set()
        conjuncts: List[Tuple[str, str, object]] = []
        resolved = True
        for descriptor in map_input.operators:
            if isinstance(descriptor, FilterDesc):
                refs = map_refs(descriptor.predicate)
                if refs is None:
                    resolved = False
                    break
                needed.update(refs)
                conjuncts.extend(
                    self._extract_stats_conjuncts(descriptor.predicate, names, mapping)
                )
            elif isinstance(descriptor, SelectDesc):
                for expression in descriptor.expressions:
                    refs = map_refs(expression)
                    if refs is None:
                        resolved = False
                        break
                    needed.update(refs)
                if not resolved:
                    break
                if all(isinstance(e, InputRef) for e in descriptor.expressions):
                    mapping = [mapping[e.index] for e in descriptor.expressions]
                    continue  # keep walking: positions still map to scan columns
                break
            elif isinstance(descriptor, MapGroupByDesc):
                expressions = list(descriptor.key_expressions) + [
                    argument for _agg, argument in descriptor.aggregates
                    if argument is not None
                ]
                for expression in expressions:
                    refs = map_refs(expression)
                    if refs is not None:
                        needed.update(refs)
                break
            elif isinstance(descriptor, ReduceSinkDesc):
                for expression in (
                    descriptor.key_expressions + descriptor.value_expressions
                ):
                    refs = map_refs(expression)
                    if refs is not None:
                        needed.update(refs)
                break
            elif isinstance(descriptor, MapJoinDesc):
                for expression in descriptor.probe_key_expressions:
                    refs = map_refs(expression)
                    if refs is not None:
                        needed.update(refs)
                resolved = False  # widths change; downstream refs unknown
                break
            elif isinstance(descriptor, FileSinkDesc):
                needed.update(mapping)  # every surviving column is written
                break
            elif isinstance(descriptor, LimitDesc):
                continue  # no column references
            else:
                resolved = False
                break
        if not resolved or not needed:
            return ScanHints(columns=None, stats_conjuncts=conjuncts)
        valid = [index for index in needed if 0 <= index < len(names)]
        return ScanHints(
            columns=sorted({names[index] for index in valid}),
            stats_conjuncts=conjuncts,
        )

    @staticmethod
    def _extract_stats_conjuncts(
        predicate: BoundExpression,
        names: List[str],
        mapping: Optional[List[int]] = None,
    ) -> List[Tuple[str, str, object]]:
        def column_of(index: int) -> Optional[str]:
            if mapping is not None:
                if not 0 <= index < len(mapping):
                    return None
                index = mapping[index]
            return names[index] if 0 <= index < len(names) else None

        out: List[Tuple[str, str, object]] = []
        for conjunct in split_conjuncts(predicate):
            if not isinstance(conjunct, bexpr.Comparison):
                continue
            if conjunct.op == "<>":
                continue
            left, right = conjunct.left, conjunct.right
            if isinstance(left, InputRef) and isinstance(right, Const):
                column = column_of(left.index)
                if column is not None:
                    out.append((column, conjunct.op, right.value))
            elif isinstance(left, Const) and isinstance(right, InputRef):
                flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
                column = column_of(right.index)
                if column is not None:
                    out.append((column, flipped[conjunct.op], left.value))
        return out


def explain_plan(plan: PhysicalPlan) -> str:
    """Human-readable physical plan (used in tests and EXPLAIN output)."""
    lines = [f"physical plan: {plan.num_jobs} job(s) -> {plan.output_location}"]
    for note in plan.optimizer_notes:
        lines.append(f"  optimizer: {note}")
    for job in plan.jobs:
        kind = "map-only" if job.is_map_only else type(job.reduce_logic).__name__
        lines.append(f"  {job.job_id} [{kind}] -> {job.output_location}")
        for map_input in job.inputs:
            ops = ", ".join(_describe_op(op) for op in map_input.operators)
            cols = ",".join(map_input.hints.columns) if map_input.hints.columns else "*"
            lines.append(f"    in[{map_input.tag}] {map_input.location} cols({cols}): {ops}")
        if job.reduce_operators:
            ops = ", ".join(_describe_op(op) for op in job.reduce_operators)
            lines.append(f"    reduce: {ops}")
        for broadcast in job.broadcasts:
            lines.append(f"    broadcast: {broadcast.location}")
    return "\n".join(lines)


def _describe_op(op: object) -> str:
    name = type(op).__name__
    if isinstance(op, ReduceSinkDesc) and op.skew is not None:
        return f"{name}[skew:{op.skew.mode}x{len(op.skew.heavy_keys)}]"
    return name
