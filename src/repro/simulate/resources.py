"""Simulated resources: CPU slots, processor-shared bandwidth, memory.

* :class:`SlotPool` — counting semaphore with a FIFO wait queue; models
  Hadoop map/reduce slots and DataMPI task slots (4 per node in the paper's
  testbed).
* :class:`Bandwidth` — a processor-sharing link: all active transfers share
  the rate equally, completions are rescheduled whenever membership changes.
  Models the SATA disk (~100 MB/s) and each direction of the GigE NIC
  (~117 MB/s).
* :class:`MemoryAccount` — byte-level accounting with peak tracking; the
  engines consult it to decide when buffers spill.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.errors import ExecutionError
from repro.simulate.events import Event, Simulator

_EPSILON_BYTES = 1e-6


class SlotPool:
    """A counting semaphore; ``acquire`` returns an Event, FIFO order."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "slots"):
        if capacity < 1:
            raise ExecutionError(f"slot pool needs capacity >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        """Returns an event that triggers once a slot is held."""
        event = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.trigger(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise ExecutionError(f"release on idle slot pool {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.trigger(self)  # slot passes directly to the next waiter
        else:
            self.in_use -= 1

    def cancel_acquire(self, event: Event) -> None:
        """Withdraw an ``acquire`` whose waiter was interrupted.

        If the event is still queued it is simply removed; if the slot
        was already handed over (the event triggered) it is released on
        behalf of the dead process, so interrupting a waiter never leaks
        a slot.
        """
        try:
            self._waiters.remove(event)
            return
        except ValueError:
            pass
        if event.triggered:
            self.release()

    @property
    def queued(self) -> int:
        return len(self._waiters)


class _Transfer:
    __slots__ = ("remaining", "event", "category")

    def __init__(self, remaining: float, event: Event, category: Optional[str]):
        self.remaining = remaining
        self.event = event
        self.category = category


class Bandwidth:
    """Processor-sharing link: N active transfers each progress at rate/N.

    ``transfer(nbytes)`` returns an event that triggers when the bytes have
    moved.  Byte counters and a busy-time integral feed the metrics sampler.
    """

    def __init__(self, sim: Simulator, rate_bytes_per_s: float, name: str = "link"):
        if rate_bytes_per_s <= 0:
            raise ExecutionError(f"bandwidth rate must be positive: {rate_bytes_per_s}")
        self.sim = sim
        self.rate = float(rate_bytes_per_s)
        self.name = name
        self._active: List[_Transfer] = []
        self._last_update = sim.now
        self._timer = None
        self._timer_target: Optional[_Transfer] = None
        self.bytes_moved = 0.0
        self.busy_time = 0.0
        self.categorized: Dict[str, float] = {}

    # -- public API -----------------------------------------------------------
    def transfer(self, nbytes: float, category: Optional[str] = None) -> Event:
        event = Event(self.sim)
        if nbytes <= _EPSILON_BYTES:
            event.trigger(None)
            return event
        self._update()
        self._active.append(_Transfer(float(nbytes), event, category))
        self._reschedule()
        return event

    def set_rate(self, rate_bytes_per_s: float) -> None:
        """Change the link rate mid-flight (hardware degradation windows).

        In-progress transfers keep the bytes they already moved and
        continue at the new shared rate.
        """
        if rate_bytes_per_s <= 0:
            raise ExecutionError(f"bandwidth rate must be positive: {rate_bytes_per_s}")
        self._update()
        self.rate = float(rate_bytes_per_s)
        self._reschedule()

    @property
    def active_transfers(self) -> int:
        return len(self._active)

    def progressed_bytes(self) -> float:
        """Total bytes moved up to the current instant (for samplers)."""
        self._update()
        return self.bytes_moved

    # -- internals ------------------------------------------------------------
    def _update(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        share = elapsed * self.rate / len(self._active)
        for item in self._active:
            remaining = item.remaining
            progressed = share if share < remaining else remaining
            item.remaining -= progressed
            self.bytes_moved += progressed
            if item.category is not None:
                self.categorized[item.category] = (
                    self.categorized.get(item.category, 0.0) + progressed
                )
        self.busy_time += elapsed

    def _reschedule(self) -> None:
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
            self._timer_target = None
        if not self._active:
            return
        # manual argmin: min(key=lambda) pays one frame per transfer and
        # this runs after every admit/finish on links with long queues
        shortest = self._active[0]
        smallest = shortest.remaining
        for item in self._active:
            if item.remaining < smallest:
                smallest = item.remaining
                shortest = item
        delay = smallest * len(self._active) / self.rate
        self._timer_target = shortest
        self._timer = self.sim.call_at(self.sim.now + delay, self._on_timer)

    def _on_timer(self) -> None:
        target, self._timer = self._timer_target, None
        self._timer_target = None
        self._update()
        # every transfer that finishes in this tick — the timer target
        # *and* any other whose remainder fell below epsilon — must have
        # its float residue credited to the counters, otherwise
        # bytes_moved/categorized drift below the true byte count
        finished: List[_Transfer] = []
        active: List[_Transfer] = []
        for item in self._active:
            if item is target or item.remaining <= _EPSILON_BYTES:
                residue = item.remaining
                if residue > 0:
                    self.bytes_moved += residue
                    if item.category is not None:
                        self.categorized[item.category] = (
                            self.categorized.get(item.category, 0.0) + residue
                        )
                    item.remaining = 0.0
                finished.append(item)
            else:
                active.append(item)
        self._active = active
        self._reschedule()
        for item in finished:
            item.event.trigger(None)


class MemoryAccount:
    """Byte-level memory accounting with peak tracking.

    Allocation never blocks — the engines make spill decisions themselves —
    but over-free is an error, which catches accounting bugs in tests.
    """

    def __init__(self, capacity_bytes: float, name: str = "mem"):
        self.capacity = float(capacity_bytes)
        self.name = name
        self.used = 0.0
        self.peak = 0.0

    def allocate(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ExecutionError("negative allocation")
        self.used += nbytes
        if self.used > self.peak:
            self.peak = self.used

    def free(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ExecutionError("negative free")
        if nbytes > self.used + _EPSILON_BYTES:
            raise ExecutionError(
                f"over-free on {self.name!r}: freeing {nbytes}, used {self.used}"
            )
        self.used = max(0.0, self.used - nbytes)

    @property
    def available(self) -> float:
        return max(0.0, self.capacity - self.used)

    @property
    def utilization(self) -> float:
        return self.used / self.capacity if self.capacity else 0.0
