"""Simulated HDFS: namespace, block placement, locality-aware splits.

The NameNode keeps a flat ``path -> DataFile`` namespace with directory
semantics by prefix (a "table" is a directory holding one part-file per
writer task, exactly like Hive's warehouse layout).

Files carry a ``scale`` factor: rows are generated at laptop scale but
every cost-model byte count is multiplied by ``scale`` so the simulated
cluster sees the paper's logical data sizes (Table I).  Block boundaries
are computed on *logical* bytes (64 MB default, as in the paper), which
drives the number of map tasks and therefore the wave structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import StorageError
from repro.common.rows import Schema
from repro.common.units import MB
from repro.storage.formats.base import StoredFile, get_format

Row = Tuple[object, ...]

DEFAULT_BLOCK_SIZE = 64 * MB
DEFAULT_REPLICATION = 3


@dataclass(frozen=True)
class BlockInfo:
    """One HDFS block: a row range plus its replica locations (worker ids)."""

    block_id: int
    row_start: int
    row_count: int
    logical_bytes: float
    locations: Tuple[int, ...]


@dataclass(frozen=True)
class FileSplit:
    """An input split handed to one map/O task.

    ``hosts`` are worker indices holding a replica; the scheduler prefers
    them (data locality).  ``scale`` converts actual encoded bytes of this
    row range into logical bytes for the cost model.
    ``partition_values`` carries the Hive partition spec of the file (if
    any) so split expansion can prune whole partitions.
    """

    path: str
    row_start: int
    row_count: int
    logical_bytes: float
    hosts: Tuple[int, ...]
    scale: float
    stored: StoredFile = field(compare=False, hash=False, repr=False)
    partition_values: Optional[Dict[str, object]] = field(
        default=None, compare=False, hash=False
    )

    @property
    def length(self) -> float:
        return self.logical_bytes


class DataFile:
    """One HDFS file: encoded rows plus block layout."""

    def __init__(
        self,
        path: str,
        stored: StoredFile,
        format_name: str,
        scale: float,
        blocks: List[BlockInfo],
        partition_values: Optional[Dict[str, object]] = None,
    ):
        self.path = path
        self.stored = stored
        self.format_name = format_name
        self.scale = scale
        self.blocks = blocks
        self.partition_values = partition_values

    @property
    def schema(self) -> Schema:
        return self.stored.schema

    @property
    def rows(self) -> List[Row]:
        return self.stored.rows

    @property
    def row_count(self) -> int:
        return self.stored.row_count

    @property
    def logical_bytes(self) -> float:
        return self.stored.total_bytes * self.scale

    def splits(self) -> List[FileSplit]:
        """One split per block (the paper's Hadoop 1.x default)."""
        return [
            FileSplit(
                path=self.path,
                row_start=block.row_start,
                row_count=block.row_count,
                logical_bytes=block.logical_bytes,
                hosts=block.locations,
                scale=self.scale,
                stored=self.stored,
                partition_values=self.partition_values,
            )
            for block in self.blocks
        ]


class HDFS:
    """The simulated distributed filesystem.

    Purely functional bookkeeping: I/O *time* is charged by the engines
    through the cluster's disk/NIC resources, using the byte counts this
    layer reports.
    """

    def __init__(
        self,
        num_workers: int,
        block_size: float = DEFAULT_BLOCK_SIZE,
        replication: int = DEFAULT_REPLICATION,
        seed: int = 20150629,
    ):
        if num_workers < 1:
            raise StorageError("HDFS needs at least one datanode")
        self.num_workers = num_workers
        self.block_size = float(block_size)
        self.replication = min(replication, num_workers)
        self._files: Dict[str, DataFile] = {}
        self._rng = random.Random(seed)
        self._next_block_id = 0
        self._placement_cursor = 0

    # -- namespace --------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def get(self, path: str) -> DataFile:
        try:
            return self._files[path]
        except KeyError:
            raise StorageError(f"no such file: {path}") from None

    def delete(self, path: str) -> None:
        """Delete a file or (recursively) a directory prefix."""
        doomed = [p for p in self._files if p == path or p.startswith(path.rstrip("/") + "/")]
        for p in doomed:
            del self._files[p]

    def list_dir(self, directory: str) -> List[DataFile]:
        prefix = directory.rstrip("/") + "/"
        return [
            self._files[path]
            for path in sorted(self._files)
            if path.startswith(prefix) or path == directory
        ]

    def dir_splits(self, directory: str) -> List[FileSplit]:
        splits: List[FileSplit] = []
        for data_file in self.list_dir(directory):
            splits.extend(data_file.splits())
        return splits

    def dir_rows(self, directory: str) -> List[Row]:
        rows: List[Row] = []
        for data_file in self.list_dir(directory):
            rows.extend(data_file.rows)
        return rows

    def dir_logical_bytes(self, directory: str) -> float:
        return sum(data_file.logical_bytes for data_file in self.list_dir(directory))

    # -- writing ------------------------------------------------------------------
    def write(
        self,
        path: str,
        schema: Schema,
        rows: Sequence[Row],
        format_name: str = "text",
        scale: float = 1.0,
        writer_node: Optional[int] = None,
        partition_values: Optional[Dict[str, object]] = None,
    ) -> DataFile:
        """Encode *rows* with *format_name* and register the file.

        The first replica of every block lands on *writer_node* when given
        (HDFS's writer-affinity rule); remaining replicas are placed
        pseudo-randomly on distinct datanodes.
        """
        if path in self._files:
            raise StorageError(f"file exists: {path}")
        stored = get_format(format_name).build(schema, list(rows))
        blocks = self._split_into_blocks(stored, scale, writer_node)
        data_file = DataFile(
            path, stored, format_name, scale, blocks, partition_values
        )
        self._files[path] = data_file
        return data_file

    # -- internals ----------------------------------------------------------------
    def _split_into_blocks(
        self, stored: StoredFile, scale: float, writer_node: Optional[int]
    ) -> List[BlockInfo]:
        blocks: List[BlockInfo] = []
        total_rows = stored.row_count
        if total_rows == 0:
            return [
                BlockInfo(
                    self._take_block_id(),
                    0,
                    0,
                    0.0,
                    self._place_replicas(writer_node),
                )
            ]
        actual_block_bytes = max(1.0, self.block_size / scale)
        row_start = 0
        while row_start < total_rows:
            row_count = self._rows_filling(stored, row_start, actual_block_bytes)
            logical = stored.bytes_for_range(row_start, row_count) * scale
            blocks.append(
                BlockInfo(
                    self._take_block_id(),
                    row_start,
                    row_count,
                    logical,
                    self._place_replicas(writer_node),
                )
            )
            row_start += row_count
        return blocks

    def _rows_filling(self, stored: StoredFile, row_start: int, budget: float) -> int:
        """Largest row count from *row_start* whose encoded size fits
        *budget* bytes (at least one row), found by galloping + bisection."""
        total = stored.row_count
        if stored.bytes_for_range(row_start, total - row_start) <= budget:
            return total - row_start
        low, high = 1, 2
        while (
            row_start + high <= total
            and stored.bytes_for_range(row_start, high) <= budget
        ):
            low, high = high, high * 2
        high = min(high, total - row_start)
        while low < high:
            mid = (low + high + 1) // 2
            if stored.bytes_for_range(row_start, mid) <= budget:
                low = mid
            else:
                high = mid - 1
        return max(1, low)

    def _take_block_id(self) -> int:
        self._next_block_id += 1
        return self._next_block_id

    def _place_replicas(self, writer_node: Optional[int]) -> Tuple[int, ...]:
        if writer_node is not None:
            first = writer_node % self.num_workers
        else:
            first = self._placement_cursor % self.num_workers
            self._placement_cursor += 1
        others = [node for node in range(self.num_workers) if node != first]
        self._rng.shuffle(others)
        return tuple([first] + others[: self.replication - 1])
