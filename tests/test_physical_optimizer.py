"""Tests for the physical compiler and the column pruner."""

import pytest

from repro.common.config import Configuration
from repro.common.units import MB
from repro.exec.operators import (
    FileSinkDesc,
    FilterDesc,
    MapGroupByDesc,
    MapJoinDesc,
    ReduceSinkDesc,
    SelectDesc,
)
from repro.exec.reduce import (
    ReduceAggregateDesc,
    ReduceDistinctDesc,
    ReduceJoinDesc,
    ReduceSortDesc,
)
from repro.plan.analyzer import Analyzer
from repro.plan.optimizer import prune_columns
from repro.plan.physical import PhysicalCompiler, explain_plan
from repro.sql import parse_statement
from repro.stats.model import collect_table_stats


@pytest.fixture()
def compile_sql(warehouse):
    hdfs, metastore = warehouse
    analyzer = Analyzer(metastore)

    def _compile(sql, prune=True, conf=None):
        node = analyzer.analyze(parse_statement(sql))
        if prune:
            node = prune_columns(node)
        compiler = PhysicalCompiler(metastore, hdfs, conf or Configuration(), "t")
        return compiler.compile(node, "/tmp/out", "text")

    return _compile


class TestPlanShapes:
    def test_map_only_job(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp WHERE salary > 90")
        assert plan.num_jobs == 1
        job = plan.jobs[0]
        assert job.is_map_only
        assert isinstance(job.inputs[0].operators[-1], FileSinkDesc)

    def test_groupby_one_job(self, compile_sql):
        plan = compile_sql("SELECT dept, sum(salary) FROM emp GROUP BY dept")
        assert plan.num_jobs == 1
        job = plan.jobs[0]
        assert isinstance(job.reduce_logic, ReduceAggregateDesc)
        ops = [type(d).__name__ for d in job.inputs[0].operators]
        assert "MapGroupByDesc" in ops and ops[-1] == "ReduceSinkDesc"

    def test_groupby_orderby_two_jobs(self, compile_sql):
        plan = compile_sql(
            "SELECT dept, sum(salary) s FROM emp GROUP BY dept ORDER BY s"
        )
        assert plan.num_jobs == 2
        assert isinstance(plan.jobs[1].reduce_logic, ReduceSortDesc)
        assert plan.jobs[1].num_reducers_hint == 1
        assert plan.jobs[1].sort_directions == [True]

    def test_distinct_job(self, compile_sql):
        plan = compile_sql("SELECT DISTINCT dept FROM emp")
        assert isinstance(plan.jobs[0].reduce_logic, ReduceDistinctDesc)

    def test_count_distinct_disables_map_agg(self, compile_sql):
        plan = compile_sql("SELECT dept, count(DISTINCT name) FROM emp GROUP BY dept")
        ops = [type(d).__name__ for d in plan.jobs[0].inputs[0].operators]
        assert "MapGroupByDesc" not in ops
        logic = plan.jobs[0].reduce_logic
        assert logic.inputs_are_partials is False

    def test_global_aggregate_single_reducer(self, compile_sql):
        plan = compile_sql("SELECT sum(salary) FROM emp")
        assert plan.jobs[0].num_reducers_hint == 1

    def test_final_limit_recorded(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp ORDER BY name LIMIT 3")
        assert plan.final_limit == 3

    def test_explain_runs(self, compile_sql):
        plan = compile_sql("SELECT dept, count(*) FROM emp GROUP BY dept")
        text = explain_plan(plan)
        assert "job" in text and "ReduceSink" in text


class TestJoinPlanning:
    def test_small_table_becomes_map_join(self, compile_sql):
        # dept has scale 100 -> tiny -> broadcast
        plan = compile_sql(
            "SELECT name, budget FROM emp e JOIN dept d ON e.dept = d.dept"
        )
        assert plan.num_jobs == 1
        job = plan.jobs[0]
        assert job.is_map_only
        assert job.broadcasts and job.broadcasts[0].location == "/warehouse/dept"
        assert any(isinstance(d, MapJoinDesc) for d in job.inputs[0].operators)

    def test_swapped_map_join_small_left(self, compile_sql):
        plan = compile_sql(
            "SELECT name, budget FROM dept d JOIN emp e ON d.dept = e.dept"
        )
        job = plan.jobs[0]
        descs = [d for d in job.inputs[0].operators if isinstance(d, MapJoinDesc)]
        assert descs and descs[0].swap_output

    def test_common_join_when_both_big(self, compile_sql, warehouse):
        hdfs, metastore = warehouse
        conf = Configuration({"hive.mapjoin.smalltable.filesize": "1"})
        plan = compile_sql(
            "SELECT name, budget FROM emp e JOIN dept d ON e.dept = d.dept",
            conf=conf,
        )
        job = plan.jobs[0]
        assert isinstance(job.reduce_logic, ReduceJoinDesc)
        tags = sorted(map_input.tag for map_input in job.inputs)
        assert tags == [0, 1]

    def test_left_join_small_left_not_broadcast(self, compile_sql):
        # LEFT JOIN with the small table on the preserved (left) side
        # cannot be swapped into a broadcast join
        plan = compile_sql(
            "SELECT budget FROM dept d LEFT JOIN emp e ON d.dept = e.dept"
        )
        job = plan.jobs[0]
        assert isinstance(job.reduce_logic, ReduceJoinDesc)
        assert job.reduce_logic.join_type == "left"

    def test_cross_join_single_reducer(self, compile_sql, warehouse):
        conf = Configuration({"hive.mapjoin.smalltable.filesize": "1"})
        plan = compile_sql("SELECT name FROM emp CROSS JOIN dept", conf=conf)
        assert plan.jobs[0].num_reducers_hint == 1

    def test_cross_join_with_tiny_table_broadcasts(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp CROSS JOIN dept")
        assert plan.jobs[0].is_map_only  # broadcast even without keys

    def test_join_then_group_two_jobs(self, compile_sql):
        conf = Configuration({"hive.mapjoin.smalltable.filesize": "1"})
        plan = compile_sql(
            "SELECT region, sum(salary) FROM emp e JOIN dept d ON e.dept = d.dept "
            "GROUP BY region",
            conf=conf,
        )
        assert plan.num_jobs == 2
        assert isinstance(plan.jobs[0].reduce_logic, ReduceJoinDesc)
        assert isinstance(plan.jobs[1].reduce_logic, ReduceAggregateDesc)


class TestScanHints:
    def test_column_pruning_hints(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp WHERE salary > 90")
        hints = plan.jobs[0].inputs[0].hints
        assert hints.columns == ["name", "salary"]

    def test_stats_conjuncts_extracted(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp WHERE salary > 90 AND hired >= '2001-01-01'")
        hints = plan.jobs[0].inputs[0].hints
        assert ("salary", ">", 90) in hints.stats_conjuncts
        assert ("hired", ">=", "2001-01-01") in hints.stats_conjuncts

    def test_flipped_literal_comparison(self, compile_sql):
        plan = compile_sql("SELECT name FROM emp WHERE 90 < salary")
        hints = plan.jobs[0].inputs[0].hints
        assert ("salary", ">", 90) in hints.stats_conjuncts

    def test_group_by_hints(self, compile_sql):
        plan = compile_sql("SELECT dept, sum(salary) FROM emp GROUP BY dept")
        hints = plan.jobs[0].inputs[0].hints
        assert hints.columns == ["dept", "salary"]


class TestColumnPruner:
    def analyze(self, warehouse, sql):
        _hdfs, metastore = warehouse
        return Analyzer(metastore).analyze(parse_statement(sql))

    def test_join_output_narrowed(self, warehouse):
        node = self.analyze(
            warehouse,
            "SELECT region, sum(salary) FROM emp e JOIN dept d ON e.dept = d.dept "
            "GROUP BY region",
        )
        before = len(node.child.child.signature)  # join output width
        pruned = prune_columns(node)
        after = len(pruned.child.child.signature)
        assert after < before
        assert after == 4  # dept key + salary | dept key + region

    def test_pruned_plan_same_result(self, warehouse, local_session):
        sql = (
            "SELECT region, sum(salary) total FROM emp e JOIN dept d "
            "ON e.dept = d.dept GROUP BY region ORDER BY total DESC"
        )
        result = local_session.query(sql)
        assert result.rows == [("west", 220.0), ("east", 185.0)]

    def test_prune_keeps_filter_columns(self, warehouse):
        node = self.analyze(
            warehouse, "SELECT name FROM emp WHERE salary > 90 AND dept = 'eng'"
        )
        pruned = prune_columns(node)
        # result still projects only `name`
        assert len(pruned.signature) == 1

    def test_prune_count_star(self, warehouse):
        node = self.analyze(warehouse, "SELECT count(*) FROM emp")
        pruned = prune_columns(node)  # must not crash on zero column refs
        assert len(pruned.signature) == 1


@pytest.fixture()
def stats_compile(warehouse):
    """Like compile_sql, but with column stats collected for emp/dept."""
    hdfs, metastore = warehouse
    for name in ("emp", "dept"):
        metastore.put_table_stats(
            collect_table_stats(hdfs, metastore.get_table(name))
        )
    analyzer = Analyzer(metastore)

    def _compile(sql, conf=None):
        node = prune_columns(analyzer.analyze(parse_statement(sql)))
        compiler = PhysicalCompiler(metastore, hdfs, conf or Configuration(), "t")
        return compiler.compile(node, "/tmp/out", "text")

    return _compile


def join_sinks(job):
    """tag -> final ReduceSinkDesc of each map input."""
    return {
        map_input.tag: map_input.operators[-1]
        for map_input in job.inputs
        if isinstance(map_input.operators[-1], ReduceSinkDesc)
    }


class TestStatsDrivenJoins:
    """Golden plans: decisions the cost model must keep making."""

    # dept raw logical bytes = 4.6KB; region = 'east' matches 1 of 3 rows
    FILTERED_JOIN = (
        "SELECT name FROM emp e JOIN dept d ON e.dept = d.dept "
        "WHERE d.region = 'east'"
    )

    def test_filter_estimate_enables_map_join(self, stats_compile):
        conf = Configuration({"hive.mapjoin.smalltable.filesize": "3000"})
        plan = stats_compile(self.FILTERED_JOIN, conf=conf)
        assert plan.jobs[0].is_map_only
        assert any(
            note.startswith("map-join: build dept") and "sel 0.333" in note
            for note in plan.optimizer_notes
        ), plan.optimizer_notes

    def test_without_stats_same_threshold_shuffles(self, compile_sql):
        conf = Configuration({"hive.mapjoin.smalltable.filesize": "3000"})
        plan = compile_sql(self.FILTERED_JOIN, conf=conf)
        assert isinstance(plan.jobs[0].reduce_logic, ReduceJoinDesc)
        assert plan.optimizer_notes == []

    def test_stats_disabled_falls_back_to_raw_bytes(self, stats_compile):
        conf = Configuration({
            "hive.mapjoin.smalltable.filesize": "3000",
            "repro.stats.enabled": "false",
        })
        plan = stats_compile(self.FILTERED_JOIN, conf=conf)
        assert isinstance(plan.jobs[0].reduce_logic, ReduceJoinDesc)

    def test_shuffle_join_buffers_smaller_side(self, stats_compile, warehouse):
        _hdfs, metastore = warehouse
        conf = Configuration({"hive.mapjoin.smalltable.filesize": "1"})
        plan = stats_compile(
            "SELECT name, budget FROM emp e JOIN dept d ON e.dept = d.dept",
            conf=conf,
        )
        job = plan.jobs[0]
        # dept (~3 rows) buffers at tag 0 even though it is the right input
        by_tag = {m.tag: m.location for m in job.inputs}
        assert by_tag[0] == "/warehouse/dept"
        assert by_tag[1] == "/warehouse/emp"
        assert any(
            note.startswith("shuffle join order: buffering dept")
            for note in plan.optimizer_notes
        )
        # a reduce-side Select restores the query's left-to-right order
        assert isinstance(job.reduce_operators[0], SelectDesc)

    def test_skewed_key_splits_big_side(self, stats_compile):
        conf = Configuration({"hive.mapjoin.smalltable.filesize": "1"})
        plan = stats_compile(
            "SELECT name, budget FROM emp e JOIN dept d ON e.dept = d.dept",
            conf=conf,
        )
        sinks = join_sinks(plan.jobs[0])
        assert sinks[1].skew is not None and sinks[1].skew.mode == "split"
        assert sinks[0].skew is not None and sinks[0].skew.mode == "replicate"
        # emp.dept: eng is 3 of 6 non-null rows, ops 2 of 6 — both heavy
        assert ("eng",) in sinks[1].skew.heavy_keys
        assert sinks[0].skew.heavy_keys == sinks[1].skew.heavy_keys
        assert any(
            note.startswith("skew join: splitting") for note in plan.optimizer_notes
        )

    def test_left_join_never_splits_null_generating_side(self, stats_compile):
        # threshold 0.4: emp.dept's eng (share 0.5) is heavy, dept's
        # uniform 1/3 shares are not.  In dept LEFT JOIN emp the skewed
        # side generates nulls, so splitting it would need every partition
        # to agree on matches — the planner must leave the shuffle alone
        conf = Configuration({
            "hive.mapjoin.smalltable.filesize": "1",
            "repro.skewjoin.threshold": "0.4",
        })
        plan = stats_compile(
            "SELECT budget FROM dept d LEFT JOIN emp e ON d.dept = e.dept",
            conf=conf,
        )
        for sink in join_sinks(plan.jobs[0]).values():
            assert sink.skew is None
        # sanity: the same shape as an inner join does split emp
        inner = stats_compile(
            "SELECT budget FROM dept d JOIN emp e ON d.dept = e.dept",
            conf=conf,
        )
        modes = {s.skew.mode for s in join_sinks(inner.jobs[0]).values() if s.skew}
        assert modes == {"split", "replicate"}

    def test_left_join_may_split_preserved_side(self, stats_compile):
        # emp LEFT JOIN dept: heavy keys on the preserved side are safe to
        # split (each split slice still meets every matching dept row)
        conf = Configuration({
            "hive.mapjoin.smalltable.filesize": "1",
            "repro.skewjoin.threshold": "0.4",
        })
        plan = stats_compile(
            "SELECT budget FROM emp e LEFT JOIN dept d ON e.dept = d.dept",
            conf=conf,
        )
        sinks = join_sinks(plan.jobs[0])
        assert sinks[0].skew is not None and sinks[0].skew.mode == "split"
        assert sinks[0].skew.heavy_keys == (("eng",),)
        assert sinks[1].skew is not None and sinks[1].skew.mode == "replicate"

    def test_skew_threshold_zero_disables(self, stats_compile):
        conf = Configuration({
            "hive.mapjoin.smalltable.filesize": "1",
            "repro.skewjoin.threshold": "0",
        })
        plan = stats_compile(
            "SELECT name, budget FROM emp e JOIN dept d ON e.dept = d.dept",
            conf=conf,
        )
        for sink in join_sinks(plan.jobs[0]).values():
            assert sink.skew is None

    def test_explain_shows_decisions(self, stats_compile):
        conf = Configuration({"hive.mapjoin.smalltable.filesize": "1"})
        plan = stats_compile(
            "SELECT name, budget FROM emp e JOIN dept d ON e.dept = d.dept",
            conf=conf,
        )
        text = explain_plan(plan)
        assert "optimizer: shuffle join order: buffering dept" in text
        assert "optimizer: skew join: splitting" in text
        assert "ReduceSinkDesc[skew:splitx" in text
        assert "ReduceSinkDesc[skew:replicatex" in text

    def test_range_conjunct_shrinks_estimate(self, stats_compile):
        # self-join so only the filtered side can be small: salary > 90
        # interpolates over the observed [80, 120] range, pulling emp's
        # estimate below a threshold its raw bytes exceed
        conf = Configuration({"hive.mapjoin.smalltable.filesize": str(70 * MB)})
        plan = stats_compile(
            "SELECT a.name FROM emp a JOIN emp b ON a.dept = b.dept "
            "WHERE a.salary > 90",
            conf=conf,
        )
        assert plan.jobs[0].is_map_only
        note = next(n for n in plan.optimizer_notes if n.startswith("map-join"))
        assert "build emp" in note and "sel 0.514" in note
