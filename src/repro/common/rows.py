"""Row model: Hive-style primitive types, columns and schemas.

Rows travel through the operator pipeline as plain Python tuples; a
:class:`Schema` describes the shape.  Types matter in three places:

* text/ORC readers coerce strings into typed values (:func:`coerce_value`),
* the expression evaluator uses the type for arithmetic/comparison rules,
* serde (:mod:`repro.common.kv`) picks a wire encoding per type so the
  simulated byte volumes match what Hive's Writables would produce.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError, SemanticError

#: Version of the in-memory ColumnBatch column layout.  Bumped whenever
#: the physical representation of batch columns changes (v1: per-column
#: Python lists; v2: typed ``array`` buffers for homogeneous numeric
#: columns, list fallback otherwise).  Compiled-plan cache keys include
#: this so plans compiled against one layout never serve another.
LAYOUT_VERSION = 2


class DataType(enum.Enum):
    """Primitive Hive column types supported by the reproduction."""

    INT = "int"
    BIGINT = "bigint"
    DOUBLE = "double"
    STRING = "string"
    DATE = "date"  # stored as ISO-8601 string; comparisons are lexical
    BOOLEAN = "boolean"

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        normalized = name.strip().lower()
        aliases = {
            "integer": "int",
            "long": "bigint",
            "float": "double",
            "decimal": "double",
            "varchar": "string",
            "char": "string",
            "bool": "boolean",
            "timestamp": "date",
        }
        normalized = aliases.get(normalized, normalized)
        for member in cls:
            if member.value == normalized:
                return member
        raise SemanticError(f"unknown column type: {name!r}")

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.BIGINT, DataType.DOUBLE)


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    dtype: DataType

    def __str__(self) -> str:
        return f"{self.name} {self.dtype.value}"


class Schema:
    """An ordered list of columns with O(1) name lookup.

    >>> schema = Schema.parse("id int, name string")
    >>> schema.index_of("name")
    1
    """

    def __init__(self, columns: Sequence[Column]):
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in self._index:
                raise SemanticError(f"duplicate column name: {column.name}")
            self._index[key] = position

    @classmethod
    def parse(cls, text: str) -> "Schema":
        """Build a schema from ``"name type, name type"`` shorthand."""
        columns: List[Column] = []
        for piece in text.split(","):
            piece = piece.strip()
            if not piece:
                continue
            parts = piece.split()
            if len(parts) != 2:
                raise SemanticError(f"bad column spec: {piece!r}")
            columns.append(Column(parts[0], DataType.from_name(parts[1])))
        return cls(columns)

    @property
    def names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def types(self) -> List[DataType]:
        return [column.dtype for column in self.columns]

    def index_of(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SemanticError(
                f"column {name!r} not found in schema ({', '.join(self.names)})"
            ) from None

    def has(self, name: str) -> bool:
        return name.lower() in self._index

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def project(self, names: Sequence[str]) -> "Schema":
        return Schema([self.column(name) for name in names])

    def concat(self, other: "Schema", prefix: str = "") -> "Schema":
        """Schema for a join output; *prefix* disambiguates clashes."""
        merged = list(self.columns)
        taken = {column.name.lower() for column in merged}
        for column in other.columns:
            name = column.name
            if name.lower() in taken:
                name = f"{prefix}{name}" if prefix else f"{name}_r"
            merged.append(Column(name, column.dtype))
            taken.add(name.lower())
        return Schema(merged)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __repr__(self) -> str:
        inner = ", ".join(str(column) for column in self.columns)
        return f"Schema({inner})"


_NULL_TOKENS = ("", r"\N", "NULL", "null")


def coerce_value(text: Optional[str], dtype: DataType):
    """Coerce a delimited-text field into a typed Python value.

    Empty strings and ``\\N`` become ``None`` (Hive's text-serde behaviour)
    except for STRING columns, where the empty string survives.
    """
    if text is None:
        return None
    if dtype is DataType.STRING:
        return None if text == r"\N" else text
    if dtype is DataType.DATE:
        return None if text in _NULL_TOKENS else text
    if text in _NULL_TOKENS:
        return None
    try:
        if dtype in (DataType.INT, DataType.BIGINT):
            return int(text)
        if dtype is DataType.DOUBLE:
            return float(text)
        if dtype is DataType.BOOLEAN:
            return text.strip().lower() in ("true", "1")
    except ValueError:
        return None  # Hive's lazy serde yields NULL on malformed fields
    raise SemanticError(f"cannot coerce to {dtype}")


def compare_values(left, right) -> int:
    """Three-way comparison with Hive NULL semantics for ORDER BY.

    ``None`` sorts first (Hive's NULLS FIRST for ascending order).  Mixed
    numeric types compare numerically.
    """
    if left is None and right is None:
        return 0
    if left is None:
        return -1
    if right is None:
        return 1
    if isinstance(left, bool) or isinstance(right, bool):
        left, right = bool(left), bool(right)
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def pack_column(values) -> Sequence:
    """Pack one column into a typed buffer when its values allow it.

    Columns whose every value is a plain ``int`` become ``array('q')``
    and all-``float`` columns become ``array('d')`` — contiguous C
    buffers that pickle as a single bytes blob instead of element-wise,
    which is what makes shipping batches to pool workers cheap.  Any
    other column (NULLs, strings, dates, booleans — ``bool`` is an
    ``int`` subclass but must keep its ``repr``) stays a plain list, so
    values read back from a packed column are bit-identical to the list
    layout.  Kernels only index/iterate columns, which both layouts
    support identically.
    """
    if type(values) is not list:
        values = list(values)
    if not values:
        return values
    first = type(values[0])
    if first is int:
        if all(type(v) is int for v in values):
            try:
                return array("q", values)
            except OverflowError:
                return values  # beyond 64-bit: keep Python ints
    elif first is float:
        if all(type(v) is float for v in values):
            return array("d", values)
    return values


class ColumnBatch:
    """A batch of rows stored column-wise (Hive's VectorizedRowBatch).

    ``columns`` holds one sequence per column, all of length ``size`` —
    a typed ``array`` buffer for homogeneous numeric columns (see
    :func:`pack_column`), a plain Python list otherwise; NULLs are
    ``None`` entries inside list columns (the
    null mask is implicit — :meth:`null_mask` derives the explicit form
    on demand).  ``sel`` is the selection vector: ``None`` means every
    row 0..size-1 is live (a *dense* batch), otherwise only the listed
    positions are.  Vectorized filters narrow ``sel`` instead of copying
    column data; rows materialize back into tuples only at the
    serde/shuffle boundary and at FileSink (:meth:`to_rows`).

    ``len()`` and slicing deliberately mirror a row list over the
    *unfiltered* batch so the engines' byte-proportional batching
    (``_make_batches``) works identically on either representation.
    """

    __slots__ = ("columns", "size", "sel")

    def __init__(self, columns: List[Sequence], size: int,
                 sel: Optional[List[int]] = None):
        self.columns = columns
        self.size = size
        self.sel = sel

    @classmethod
    def from_rows(cls, rows: Sequence[Tuple[object, ...]],
                  width: Optional[int] = None) -> "ColumnBatch":
        """Transpose row tuples into a dense batch (Text/Sequence adapter)."""
        if not rows:
            return cls([[] for _ in range(width or 0)], 0)
        return cls([pack_column(column) for column in zip(*rows)], len(rows))

    @property
    def width(self) -> int:
        return len(self.columns)

    @property
    def live_count(self) -> int:
        """Rows surviving the selection vector."""
        return self.size if self.sel is None else len(self.sel)

    def null_mask(self, column: int) -> List[bool]:
        """Explicit null mask for one column (True where NULL)."""
        return [value is None for value in self.columns[column]]

    def with_selection(self, sel: Optional[List[int]]) -> "ColumnBatch":
        """Same columns, new selection vector (no data copied)."""
        return ColumnBatch(self.columns, self.size, sel)

    def take_first(self, count: int) -> "ColumnBatch":
        """Keep only the first *count* live rows (batch-boundary LIMIT)."""
        if count >= self.live_count:
            return self
        if self.sel is None:
            return ColumnBatch(self.columns, self.size, list(range(count)))
        return ColumnBatch(self.columns, self.size, self.sel[:count])

    def to_rows(self) -> List[Tuple[object, ...]]:
        """Late materialization: selected rows as plain tuples."""
        if self.sel is None:
            return list(zip(*self.columns)) if self.columns else []
        sel = self.sel
        packed = [[column[i] for i in sel] for column in self.columns]
        return list(zip(*packed)) if packed else []

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, item):
        """Dense slice (engine batching); mirrors ``rows[a:b]``.

        Returns a zero-copy *window*: the columns are shared and the
        window is expressed as a ``range`` selection vector, so slicing
        a scan batch into engine-sized chunks copies nothing.  The
        window's ``len()`` is the window length (chunk-proportional byte
        accounting), which is why windows cannot be sliced again —
        their positions index the original columns.
        """
        if not isinstance(item, slice):
            raise ExecutionError("ColumnBatch indexing supports slices only")
        if self.sel is not None:
            raise ExecutionError("cannot slice a batch with a selection vector")
        start, stop, step = item.indices(self.size)
        if step != 1:
            raise ExecutionError("ColumnBatch slices must be contiguous")
        if start == 0 and stop == self.size:
            return self
        length = max(0, stop - start)
        return ColumnBatch(self.columns, length, range(start, stop))

    def __repr__(self) -> str:
        return (
            f"ColumnBatch(width={self.width}, size={self.size}, "
            f"live={self.live_count})"
        )


def row_text_size(row: Sequence[object], delimiter: str = "\x01") -> int:
    """Byte size of a row in Hive's delimited-text encoding."""
    total = len(delimiter) * max(0, len(row) - 1) + 1  # newline
    for value in row:
        if value is None:
            total += 2  # \N
        else:
            total += len(str(value))
    return total
