"""Tests for repro.stats: sketches (property-based), collection, freshness.

The sketch properties pinned here are exactly what the optimizer relies
on: determinism across processes (plans must not differ between runs),
merge associativity (per-file sketches merged in any grouping equal one
global sketch), and the documented error bounds (estimates are close
enough to steer join choices).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HDFS, Metastore, connect
from repro.common.rows import Schema
from repro.stats.model import ColumnStats, TableStats, collect_table_stats, table_fingerprint
from repro.stats.sketches import (
    KMVSketch,
    SpaceSavingSketch,
    kmv_from_values,
    spacesaving_from_values,
    value_hash64,
    value_order_key,
)

# Ints and short strings only: Python dict/set equality merges 1, 1.0 and
# True into one key, which would make "distinct count" ambiguous between
# the sketch (canonical-bytes identity) and the reference Counter.
values_st = st.one_of(st.integers(-1000, 1000), st.text(max_size=6))
value_lists = st.lists(values_st, max_size=200)


def distinct(values):
    return len({value_order_key(v) for v in values})


class TestKMVSketch:
    @given(value_lists)
    def test_deterministic_and_order_independent(self, values):
        a = kmv_from_values(values, k=16)
        b = kmv_from_values(list(reversed(values)), k=16)
        assert a == b
        assert a.estimate() == b.estimate()

    @given(value_lists, st.integers(1, 7))
    def test_merge_of_blocks_equals_global_sketch(self, values, num_blocks):
        direct = kmv_from_values(values, k=16)
        blocks = [values[i::num_blocks] for i in range(num_blocks)]
        merged = KMVSketch(16)
        for block in blocks:
            merged = merged.merge(kmv_from_values(block, k=16))
        assert merged == direct

    @given(value_lists, value_lists, value_lists)
    def test_merge_associative_and_commutative(self, xs, ys, zs):
        a, b, c = (kmv_from_values(v, k=16) for v in (xs, ys, zs))
        assert a.merge(b) == b.merge(a)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(st.lists(values_st, max_size=15))
    def test_exact_below_capacity(self, values):
        sketch = kmv_from_values(values, k=16)
        assert sketch.estimate() == distinct(values)

    def test_error_bound_at_scale(self):
        # 20k distinct ints at k=256: documented relative standard error
        # is ~1/sqrt(k-2) ~= 6%; this fixed input lands well inside 3x.
        sketch = kmv_from_values(range(20_000), k=256)
        estimate = sketch.estimate()
        assert abs(estimate - 20_000) / 20_000 < 0.18

    def test_hash_is_process_stable(self):
        # Pinned values: a PYTHONHASHSEED-dependent hash would change
        # these between runs (and change plans between runs with it).
        assert value_hash64("eng") == 0xF8EE870B7E30DE53
        assert value_hash64(7) == 0xA6633073FB0CB18E

    def test_mixed_types_hash_distinct(self):
        assert value_hash64(1) != value_hash64(1.0)
        assert value_hash64("1") != value_hash64(1)

    def test_rejects_mismatched_k(self):
        with pytest.raises(ValueError):
            KMVSketch(16).merge(KMVSketch(32))


class TestSpaceSavingSketch:
    @given(value_lists)
    def test_never_undercounts_and_bounded_overcount(self, values):
        sketch = spacesaving_from_values(values, capacity=8)
        true = {}
        for v in values:
            true[value_order_key(v)] = true.get(value_order_key(v), 0) + 1
        for value, count, error in sketch.items():
            actual = true[value_order_key(value)]
            assert count >= actual
            assert count - actual <= error
            assert error <= sketch.total / sketch.capacity

    @given(st.lists(values_st, max_size=40))
    def test_exact_below_capacity(self, values):
        sketch = spacesaving_from_values(values, capacity=64)
        true = {}
        for v in values:
            true[value_order_key(v)] = true.get(value_order_key(v), 0) + 1
        assert len(sketch.items()) == len(true)
        for value, count, error in sketch.items():
            assert count == true[value_order_key(value)]
            assert error == 0

    @given(value_lists, st.integers(1, 5))
    def test_merge_exact_while_under_capacity(self, values, num_blocks):
        # documented: merges are bit-identical to the global sketch while
        # no participating summary has hit capacity
        direct = spacesaving_from_values(values, capacity=512)
        merged = SpaceSavingSketch(512)
        for i in range(num_blocks):
            merged = merged.merge(
                spacesaving_from_values(values[i::num_blocks], capacity=512)
            )
        assert merged == direct

    @given(value_lists, value_lists)
    def test_merge_preserves_no_undercount(self, xs, ys):
        merged = spacesaving_from_values(xs, capacity=8).merge(
            spacesaving_from_values(ys, capacity=8)
        )
        true = {}
        for v in xs + ys:
            true[value_order_key(v)] = true.get(value_order_key(v), 0) + 1
        for value, count, _error in merged.items():
            assert count >= true[value_order_key(value)]
        assert merged.total == len(xs) + len(ys)

    @given(values_st, st.integers(1, 50))
    def test_weighted_add_equals_repeated_add(self, value, count):
        weighted = SpaceSavingSketch(8)
        weighted.add(value, count)
        repeated = SpaceSavingSketch(8)
        for _ in range(count):
            repeated.add(value)
        assert weighted == repeated

    def test_heavy_hitter_guarantee(self):
        # any value above total/capacity must be present in the summary
        values = ["hot"] * 500 + [f"cold{i}" for i in range(100)]
        sketch = spacesaving_from_values(values, capacity=16)
        assert sketch.estimate("hot") >= 500
        assert sketch.share("hot") >= 500 / sketch.total
        assert sketch.heavy_hitters(0.5)[0][0] == "hot"

    def test_untracked_value_share_is_none(self):
        sketch = spacesaving_from_values(range(100), capacity=4)
        assert sketch.share("never-seen") is None

    def test_eviction_deterministic(self):
        # min-count ties broken on canonical bytes, not insertion order
        a = SpaceSavingSketch(2)
        b = SpaceSavingSketch(2)
        for v in ("x", "y", "z"):
            a.add(v)
        for v in ("y", "x", "z"):
            b.add(v)
        assert a == b


class TestColumnStats:
    def test_observe_tracks_nulls_and_range(self):
        stats = ColumnStats(name="v")
        for value in (5, None, 1, 9, None):
            stats.observe(value)
        assert stats.count == 5 and stats.null_count == 2
        assert stats.min_value == 1 and stats.max_value == 9
        assert stats.non_null_fraction == pytest.approx(0.6)
        assert stats.ndv == 3.0

    def test_bool_not_treated_as_numeric_range(self):
        stats = ColumnStats(name="flag")
        stats.observe(True)
        assert stats.min_value is None and stats.max_value is None

    @given(st.lists(st.one_of(values_st, st.none()), max_size=120),
           st.integers(1, 4))
    def test_block_merge_equals_single_pass(self, values, num_blocks):
        direct = ColumnStats(name="c")
        for v in values:
            direct.observe(v)
        merged = ColumnStats(name="c")
        for i in range(num_blocks):
            block = ColumnStats(name="c")
            for v in values[i::num_blocks]:
                block.observe(v)
            merged = merged.merge(block)
        assert merged.count == direct.count
        assert merged.null_count == direct.null_count
        assert merged.min_value == direct.min_value
        assert merged.max_value == direct.max_value
        assert merged.ndv_sketch == direct.ndv_sketch

    def test_equality_selectivity_uses_heavy_hitters(self):
        stats = ColumnStats(name="k")
        for _ in range(80):
            stats.observe("hot")
        for i in range(20):
            stats.observe(f"c{i}")
        assert stats.selectivity("=", "hot") == pytest.approx(0.8)

    def test_range_selectivity_interpolates(self):
        stats = ColumnStats(name="v")
        for i in range(101):
            stats.observe(i)
        assert stats.selectivity("<", 25) == pytest.approx(0.25)
        assert stats.selectivity(">=", 25) == pytest.approx(0.75)
        assert stats.selectivity("<", -5) == 0.0
        assert stats.selectivity("<", 1000) == 1.0

    def test_unknown_op_neutral(self):
        stats = ColumnStats(name="v")
        stats.observe(1)
        assert stats.selectivity("like", "x") == 1.0


def small_warehouse():
    hdfs = HDFS(num_workers=3)
    metastore = Metastore(hdfs)
    schema = Schema.parse("k int, v string")
    table = metastore.create_table("t", schema)
    hdfs.write(f"{table.location}/part-0", schema,
               [(i % 4, f"v{i}") for i in range(40)], scale=100.0)
    hdfs.write(f"{table.location}/part-1", schema,
               [(9, "x")] * 10, scale=100.0)
    return hdfs, metastore, table


class TestCollectionAndFreshness:
    def test_collect_merges_files(self):
        hdfs, _metastore, table = small_warehouse()
        stats = collect_table_stats(hdfs, table)
        assert stats.row_count == 50
        assert stats.total_bytes == pytest.approx(table.logical_bytes(hdfs))
        k = stats.column("k")
        assert k.count == 50 and k.ndv == 5.0
        assert k.min_value == 0 and k.max_value == 9

    def test_basic_only_skips_rows(self):
        hdfs, _metastore, table = small_warehouse()
        stats = collect_table_stats(hdfs, table, with_columns=False)
        assert stats.row_count == 50
        assert not stats.has_column_stats
        # neutral by construction: no conjunct can shrink an estimate
        assert stats.conjunct_selectivity([("k", "=", 9)]) == 1.0

    def test_metastore_round_trip(self):
        hdfs, metastore, table = small_warehouse()
        stats = collect_table_stats(hdfs, table)
        epoch = metastore.stats_epoch
        metastore.put_table_stats(stats)
        assert metastore.stats_epoch == epoch + 1
        loaded = metastore.get_table_stats("T")  # case-insensitive
        assert loaded is stats
        assert loaded.column("K").ndv_sketch == stats.column("k").ndv_sketch

    def test_analyze_does_not_bump_catalog_version(self):
        hdfs, metastore, table = small_warehouse()
        version = metastore.version
        metastore.put_table_stats(collect_table_stats(hdfs, table))
        assert metastore.version == version

    def test_stale_after_new_file(self):
        hdfs, metastore, table = small_warehouse()
        metastore.put_table_stats(collect_table_stats(hdfs, table))
        hdfs.write(f"{table.location}/part-2", table.schema,
                   [(1, "new")], scale=100.0)
        assert metastore.get_table_stats("t") is None
        assert "t" in metastore.stats_tables()  # recorded but withheld

    def test_fingerprint_tracks_content(self):
        hdfs, _metastore, table = small_warehouse()
        before = table_fingerprint(hdfs, table.location)
        hdfs.delete(f"{table.location}/part-0")
        hdfs.write(f"{table.location}/part-0", table.schema,
                   [(1, "rewritten")], scale=100.0)
        assert table_fingerprint(hdfs, table.location) != before

    def test_truncate_drops_stats(self):
        hdfs, metastore, table = small_warehouse()
        metastore.put_table_stats(collect_table_stats(hdfs, table))
        epoch = metastore.stats_epoch
        metastore.truncate_table("t")
        assert metastore.get_table_stats("t") is None
        assert metastore.stats_tables() == []
        assert metastore.stats_epoch == epoch + 1

    def test_drop_table_drops_stats(self):
        hdfs, metastore, table = small_warehouse()
        metastore.put_table_stats(collect_table_stats(hdfs, table))
        metastore.drop_table("t")
        assert metastore.stats_tables() == []


class TestAnalyzeStatement:
    def test_analyze_basic_and_columns(self, local_session):
        basic = local_session.query("ANALYZE TABLE emp COMPUTE STATISTICS")
        table, rows, total_bytes, column_stats = basic.rows[0]
        assert (table, rows) == ("emp", 7)
        assert total_bytes == pytest.approx(
            local_session.metastore.get_table("emp").logical_bytes(
                local_session.hdfs),
            rel=0.01)
        assert column_stats == 0  # no column stats yet
        full = local_session.query(
            "ANALYZE TABLE emp COMPUTE STATISTICS FOR COLUMNS"
        )
        assert full.rows[0][3] == 5
        stats = local_session.metastore.get_table_stats("emp")
        assert stats.column("dept").null_count == 1
        assert stats.column("salary").max_value == 120.0

    def test_session_stats_summary(self, local_session):
        local_session.execute("ANALYZE TABLE dept COMPUTE STATISTICS FOR COLUMNS")
        summary = local_session.stats("dept")
        assert summary["row_count"] == 3
        assert summary["columns"]["region"]["ndv"] == 2.0
        assert local_session.stats("emp") == {"table": "emp", "stats": None}
        assert set(local_session.stats()) == {"dept"}

    def test_insert_refreshes_stats(self, local_session):
        local_session.execute("ANALYZE TABLE emp COMPUTE STATISTICS FOR COLUMNS")
        assert local_session.metastore.get_table_stats("emp").has_column_stats
        local_session.execute(
            "CREATE TABLE emp2 (name string, salary double)"
        )
        local_session.execute(
            "INSERT OVERWRITE TABLE emp2 SELECT name, salary FROM emp"
        )
        # autogathered basic stats are fresh for the new data...
        stats = local_session.metastore.get_table_stats("emp2")
        assert stats is not None and stats.row_count == 7
        # ...but column sketches require an explicit ANALYZE
        assert not stats.has_column_stats

    def test_ctas_autogathers(self, local_session):
        local_session.execute(
            "CREATE TABLE eng AS SELECT name FROM emp WHERE dept = 'eng'"
        )
        stats = local_session.metastore.get_table_stats("eng")
        assert stats is not None and stats.row_count == 3

    def test_autogather_disabled(self, warehouse):
        hdfs, metastore = warehouse
        session = connect(engine="local", hdfs=hdfs, metastore=metastore,
                          conf={"repro.stats.auto": False})
        session.execute("CREATE TABLE c AS SELECT name FROM emp")
        assert session.metastore.get_table_stats("c") is None
