"""Minimal deterministic discrete-event kernel.

A hand-rolled SimPy-like core: a binary-heap agenda of timestamped
callbacks, :class:`Event` objects that processes can wait on, and
:class:`Process` coroutines (plain generators) that ``yield`` events to
block.  Everything is deterministic: ties on the clock are broken by a
monotonically increasing sequence number, never by object identity.

Example
-------
>>> sim = Simulator()
>>> def worker(sim, out):
...     yield sim.timeout(2.0)
...     out.append(sim.now)
>>> collected = []
>>> _ = sim.spawn(worker(sim, collected))
>>> sim.run()
>>> collected
[2.0]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

from repro.common.errors import ExecutionError

# Compact the agenda heap once at least this many cancelled entries are
# buried in it *and* they make up at least half of the heap.  The floor
# keeps small simulations on the cheap lazy-skip path; the fraction
# bounds the heap at ~2x the live entry count for cancel-heavy
# workloads (deadline timers, bandwidth rescheduling).
_COMPACT_MIN_CANCELLED = 64


class Interrupt(Exception):
    """Thrown into a process that another process interrupted."""

    def __init__(self, cause: object = None):
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* at most once, carrying an optional value.
    Callbacks added after triggering fire immediately (at the current
    simulated instant), which makes waiting race-free.

    Callbacks are stored as ``(callable, extra_args)`` pairs and invoked
    as ``callable(value, *extra_args)``.  Passing context through
    *extra_args* instead of a fresh closure keeps registration cheap and
    — more importantly — makes callbacks *removable*: a waiter that
    abandons the event (an interrupted process, an ``AnyOf`` race whose
    winner was someone else) can detach itself so long-lived events do
    not accumulate stale entries across thousands of waits.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: List[Tuple[Callable[..., None], tuple]] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> "Event":
        if self.triggered:
            raise ExecutionError("event triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback, extra in callbacks:
            self.sim.call_soon(callback, value, *extra)
        return self

    def add_callback(self, callback: Callable[..., None], *extra: Any) -> None:
        if self.triggered:
            self.sim.call_soon(callback, self.value, *extra)
        else:
            self._callbacks.append((callback, extra))

    def remove_callback(self, callback: Callable[..., None], *extra: Any) -> None:
        """Detach a previously added callback (no-op when absent).

        Only callbacks that would be no-ops may be removed — removal
        never reorders the survivors, so deterministic callback FIFO
        order is preserved.
        """
        try:
            self._callbacks.remove((callback, extra))
        except ValueError:
            pass

    @property
    def callback_count(self) -> int:
        """Number of callbacks still registered (leak introspection)."""
        return len(self._callbacks)


class Timeout(Event):
    """An event that triggers *delay* seconds in the future."""

    __slots__ = ("handle",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        super().__init__(sim)
        if delay < 0:
            raise ExecutionError(f"negative timeout: {delay}")
        self.handle = sim.call_at(sim.now + delay, self.trigger, value)

    def cancel(self) -> None:
        """Withdraw the pending trigger (no-op once fired).

        A race loser (e.g. an orphaned deadline timer) that is never
        cancelled keeps its agenda entry as regular pending work, so the
        simulation cannot stop before the timer's due time even though
        nobody is waiting — cancel it to release the agenda immediately.
        """
        self.sim.cancel(self.handle)


class AllOf(Event):
    """Triggers when every child event has triggered; value is their list."""

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        self._values: List[Any] = [None] * len(events)
        if not events:
            self.trigger([])
            return
        for position, event in enumerate(events):
            event.add_callback(self._on_child, position)

    def _on_child(self, value: Any, position: int) -> None:
        self._values[position] = value
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.trigger(list(self._values))


class AnyOf(Event):
    """Triggers when the first child triggers; value is (index, value)."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        if not events:
            raise ExecutionError("AnyOf requires at least one event")
        self._children: List[Event] = events
        for position, event in enumerate(events):
            event.add_callback(self._on_child, position)

    def _on_child(self, value: Any, position: int) -> None:
        if self.triggered:
            return
        self.trigger((position, value))
        # The race is decided: detach from every loser so repeated races
        # against a long-lived event (per-query deadline guards, session
        # shutdown latches) do not pile stale callbacks onto it.
        children, self._children = self._children, []
        for lost, child in enumerate(children):
            if lost != position and not child.triggered:
                child.remove_callback(self._on_child, lost)


class Process(Event):
    """A coroutine driven by the simulator.

    The generator yields :class:`Event` objects; the process resumes with
    the event's value.  When the generator returns, the process (itself an
    event) triggers with the return value, so processes can be joined by
    yielding them.
    """

    __slots__ = ("name", "_generator", "_waiting_on", "_interrupt", "span")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupt: Optional[Interrupt] = None
        # opt-in tracing: when the simulator carries a tracer, every
        # process lifetime becomes a span in simulated time
        self.span = None
        if sim.tracer is not None:
            self.span = sim.tracer.start(
                self.name, start=sim.now, category="process"
            )
        sim.call_soon(self._step, None)

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if not self.alive:
            return
        self._interrupt = Interrupt(cause)
        self.sim.call_soon(self._step, None)

    def _wakeup(self, _value: Any, event: Event) -> None:
        """Wakeup callback bound to one wait target.

        After an interrupt the abandoned event may still fire and call
        back into us; if our *new* wait target happens to be triggered
        already, a bare ``_step`` would resume the process twice at the
        same instant.  Binding the wakeup to the event it was registered
        on makes stale wakeups exactly identifiable.
        """
        if event is self._waiting_on:
            self._step(None)

    def _step(self, value: Any) -> None:
        if self.triggered:
            return
        interrupt, self._interrupt = self._interrupt, None
        if interrupt is None and self._waiting_on is not None:
            waited = self._waiting_on
            if not waited.triggered:
                return  # spurious call
            value = waited.value
        elif interrupt is not None and self._waiting_on is not None:
            # Abandoning an untriggered event: detach our wakeup so an
            # interrupt-heavy workload does not leak one stale callback
            # per wait onto long-lived events.  (If it already triggered
            # the callback list was drained; the queued wakeup then hits
            # the identity guard above and no-ops.)
            if not self._waiting_on.triggered:
                self._waiting_on.remove_callback(self._wakeup, self._waiting_on)
        self._waiting_on = None
        try:
            if interrupt is not None:
                target = self._generator.throw(interrupt)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            if self.span is not None and not self.span.closed:
                self.span.finish(self.sim.now)
            self.trigger(getattr(stop, "value", None))
            return
        except Interrupt:
            if self.span is not None and not self.span.closed:
                self.span.finish(self.sim.now, interrupted=True)
            self.trigger(None)
            return
        if not isinstance(target, Event):
            raise ExecutionError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event objects"
            )
        self._waiting_on = target
        target.add_callback(self._wakeup, target)


class ScheduledCall:
    """Handle for one agenda entry; supports O(1) cancellation."""

    __slots__ = ("daemon", "callback", "args", "cancelled", "executed", "in_heap")

    def __init__(self, daemon: bool, callback: Callable, args: tuple):
        self.daemon = daemon
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.executed = False
        self.in_heap = False


class Simulator:
    """The event loop: a clock plus a heap of pending callbacks.

    *tracer* (a :class:`repro.obs.Tracer`, optional) turns on process
    lifetime tracing: every spawned coroutine becomes a span from spawn
    to completion, in simulated time.  Off by default — the engines
    trace at job/task granularity instead.
    """

    def __init__(self, tracer=None):
        self.now: float = 0.0
        self.tracer = tracer
        self._agenda: List = []
        # same-instant callbacks bypass the heap: a plain FIFO is both
        # faster and order-equivalent (every entry appended here carries
        # a later logical sequence than anything already in the heap at
        # the current clock value, because due heap entries drain first)
        self._soon: Deque[ScheduledCall] = deque()
        self._sequence = 0
        self._process_count = 0
        self._pending_regular = 0
        self._cancelled_in_agenda = 0

    @property
    def agenda_size(self) -> int:
        """Heap entries still held (live plus not-yet-compacted dead)."""
        return len(self._agenda)

    # -- scheduling primitives ----------------------------------------------
    def call_at(
        self, when: float, callback: Callable, *args: Any, daemon: bool = False
    ) -> ScheduledCall:
        """Schedule *callback(*args)* at time *when*; returns a cancellable
        handle.

        Daemon callbacks (periodic samplers, watchdogs) never keep the
        simulation alive: :meth:`run` stops once only daemon work remains.
        """
        if when < self.now - 1e-12:
            raise ExecutionError(f"cannot schedule in the past ({when} < {self.now})")
        handle = ScheduledCall(daemon, callback, args)
        if not daemon:
            self._pending_regular += 1
        if when <= self.now:
            self._soon.append(handle)
        else:
            self._sequence += 1
            handle.in_heap = True
            heapq.heappush(self._agenda, (when, self._sequence, handle))
        return handle

    def cancel(self, handle: ScheduledCall) -> None:
        """Cancel a scheduled call; the agenda entry is skipped lazily.

        Cancelling a handle whose callback already ran is a no-op: the
        pending-work counter was consumed when the call executed, so a
        post-fire cancel must not decrement it again (that would make
        :meth:`run` stop early with regular work still on the agenda).

        Lazily-cancelled heap entries are counted, and once they are
        both numerous (>= ``_COMPACT_MIN_CANCELLED``) and the majority
        of the heap, the agenda is compacted in one O(n) pass — without
        this, cancel-heavy workloads (10k deadline timers, bandwidth
        rescheduling) grow the heap without bound and every push/pop
        pays log of the garbage, not log of the live work.
        """
        if handle.cancelled or handle.executed:
            return
        handle.cancelled = True
        if not handle.daemon:
            self._pending_regular -= 1
        if handle.in_heap:
            self._cancelled_in_agenda += 1
            if (
                self._cancelled_in_agenda >= _COMPACT_MIN_CANCELLED
                and self._cancelled_in_agenda * 2 >= len(self._agenda)
            ):
                self._compact_agenda()

    def _compact_agenda(self) -> None:
        """Drop cancelled entries and re-heapify.

        Determinism-safe: pop order of a binary heap is the sorted order
        of its ``(when, sequence)`` keys, which filtering dead entries
        does not change.  The list is mutated *in place* — :meth:`run`
        holds a local alias to it, so rebinding would fork the agenda.
        """
        self._agenda[:] = [entry for entry in self._agenda if not entry[2].cancelled]
        heapq.heapify(self._agenda)
        self._cancelled_in_agenda = 0

    def call_soon(self, callback: Callable, *args: Any) -> ScheduledCall:
        """Schedule *callback(*args)* at the current instant (FIFO)."""
        handle = ScheduledCall(False, callback, args)
        self._pending_regular += 1
        self._soon.append(handle)
        return handle

    # -- user API --------------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        self._process_count += 1
        return Process(self, generator, name or f"proc-{self._process_count}")

    def run(self, until: Optional[float] = None) -> float:
        """Drain the agenda; returns the final clock value.

        Stops when no *regular* (non-daemon) work remains, or — with
        *until* — once the clock would pass it (the clock is then set
        exactly to *until*).
        """
        agenda = self._agenda
        soon = self._soon
        heappop = heapq.heappop
        while self._pending_regular > 0:
            # heap entries due at the current instant run before anything
            # in the FIFO: they were scheduled earlier (lower sequence)
            if agenda:
                when, _seq, handle = agenda[0]
                if when <= self.now:
                    heappop(agenda)
                elif soon:
                    handle = soon.popleft()
                else:
                    if handle.cancelled:
                        heappop(agenda)  # skip without touching the clock
                        self._cancelled_in_agenda -= 1
                        continue
                    if until is not None and when > until:
                        self.now = until
                        return self.now
                    heappop(agenda)
                    self.now = when
            elif soon:
                handle = soon.popleft()
            else:
                break
            if handle.cancelled:
                if handle.in_heap:
                    self._cancelled_in_agenda -= 1
                continue
            handle.executed = True
            if not handle.daemon:
                self._pending_regular -= 1
            handle.callback(*handle.args)
        if until is not None and until > self.now:
            self.now = until
        return self.now
