"""Tests for the row model and the KV serde (incl. property tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SemanticError
from repro.common.kv import KeyValue, deserialize_kv, kv_size, serialize_kv
from repro.common.rows import (
    DataType,
    Schema,
    coerce_value,
    compare_values,
    row_text_size,
)


class TestDataType:
    def test_from_name_basic(self):
        assert DataType.from_name("int") is DataType.INT
        assert DataType.from_name("BIGINT") is DataType.BIGINT

    def test_aliases(self):
        assert DataType.from_name("integer") is DataType.INT
        assert DataType.from_name("varchar") is DataType.STRING
        assert DataType.from_name("decimal") is DataType.DOUBLE
        assert DataType.from_name("timestamp") is DataType.DATE

    def test_unknown_raises(self):
        with pytest.raises(SemanticError):
            DataType.from_name("blob")

    def test_is_numeric(self):
        assert DataType.INT.is_numeric
        assert DataType.DOUBLE.is_numeric
        assert not DataType.STRING.is_numeric


class TestSchema:
    def test_parse_and_lookup(self):
        schema = Schema.parse("id int, name string, price double")
        assert schema.index_of("name") == 1
        assert schema.column("price").dtype is DataType.DOUBLE
        assert len(schema) == 3

    def test_lookup_case_insensitive(self):
        schema = Schema.parse("Id int")
        assert schema.index_of("ID") == 0

    def test_duplicate_rejected(self):
        with pytest.raises(SemanticError):
            Schema.parse("a int, A string")

    def test_missing_column(self):
        schema = Schema.parse("a int")
        with pytest.raises(SemanticError):
            schema.index_of("b")

    def test_project(self):
        schema = Schema.parse("a int, b string, c double")
        projected = schema.project(["c", "a"])
        assert projected.names == ["c", "a"]

    def test_concat_renames_clashes(self):
        left = Schema.parse("k int, v string")
        right = Schema.parse("k int, w string")
        merged = left.concat(right)
        assert len(merged) == 4
        assert len(set(merged.names)) == 4


class TestCoerce:
    def test_int(self):
        assert coerce_value("42", DataType.INT) == 42

    def test_double(self):
        assert coerce_value("4.5", DataType.DOUBLE) == 4.5

    def test_null_token(self):
        assert coerce_value(r"\N", DataType.INT) is None
        assert coerce_value("", DataType.INT) is None

    def test_string_keeps_empty(self):
        assert coerce_value("", DataType.STRING) == ""

    def test_string_null_token(self):
        assert coerce_value(r"\N", DataType.STRING) is None

    def test_malformed_becomes_null(self):
        assert coerce_value("abc", DataType.INT) is None

    def test_boolean(self):
        assert coerce_value("true", DataType.BOOLEAN) is True
        assert coerce_value("0", DataType.BOOLEAN) is False


class TestCompareValues:
    def test_nulls_first(self):
        assert compare_values(None, 1) == -1
        assert compare_values(1, None) == 1
        assert compare_values(None, None) == 0

    def test_numeric(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2.5, 2) == 1
        assert compare_values(3, 3.0) == 0

    def test_strings(self):
        assert compare_values("a", "b") == -1


class TestRowTextSize:
    def test_simple(self):
        # "1\x01ab\n" -> 5 bytes
        assert row_text_size((1, "ab")) == 5

    def test_null_renders_backslash_n(self):
        assert row_text_size((None,)) == 3  # \N + newline


# -- KV serde ----------------------------------------------------------------

class TestKvSerde:
    def test_round_trip_simple(self):
        pair = KeyValue(("k", 1), (2.5, None, True))
        data = serialize_kv(pair)
        decoded, offset = deserialize_kv(data)
        assert decoded == pair
        assert offset == len(data)

    def test_kv_size_matches_serialized(self):
        pair = KeyValue(("key",), (123, "value", None))
        assert kv_size(pair) == len(serialize_kv(pair))

    def test_empty_tuples(self):
        pair = KeyValue((), ())
        decoded, _ = deserialize_kv(serialize_kv(pair))
        assert decoded == pair

    def test_stream_of_pairs(self):
        pairs = [KeyValue((i,), (f"v{i}",)) for i in range(10)]
        blob = b"".join(serialize_kv(p) for p in pairs)
        offset = 0
        decoded = []
        while offset < len(blob):
            pair, offset = deserialize_kv(blob, offset)
            decoded.append(pair)
        assert decoded == pairs


_field = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)
_fields = st.tuples(_field, _field, _field)


@settings(max_examples=150)
@given(key=_fields, value=_fields)
def test_property_kv_round_trip(key, value):
    pair = KeyValue(key, value)
    decoded, offset = deserialize_kv(serialize_kv(pair))
    assert decoded == pair
    assert offset == kv_size(pair)


@settings(max_examples=100)
@given(key=_fields, value=_fields)
def test_property_size_without_materializing(key, value):
    pair = KeyValue(key, value)
    assert kv_size(pair) == len(serialize_kv(pair))
