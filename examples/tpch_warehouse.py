#!/usr/bin/env python
"""TPC-H on Hive-on-DataMPI: generate a warehouse, explain and run queries.

Reproduces a slice of the paper's §V-C evaluation interactively: pick a
scale factor and a file format, run a few of the 22 business queries on
both engines, and see the per-job breakdowns the paper's Fig 11 stacks.

Run with:  python examples/tpch_warehouse.py [sf] [format]
"""

import sys

from repro import connect
from repro.bench import fresh_tpch, improvement_percent, run_script
from repro.plan.physical import explain_plan
from repro.workloads.tpch import tpch_query

QUERIES_TO_SHOW = (1, 3, 9, 12)


def main():
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 20.0
    format_name = sys.argv[2] if len(sys.argv) > 2 else "orc"

    print(f"generating TPC-H SF-{sf:g} in {format_name} format (sampled rows, "
          "paper-scale byte accounting)...")
    hdfs, metastore = fresh_tpch(sf, lineitem_sample=6000, format_name=format_name)
    for name in ("lineitem", "orders", "customer"):
        table = metastore.get_table(name)
        print(f"  {name:<9} {table.logical_bytes(hdfs) / 2**30:6.2f} GB "
              f"({table.row_count(hdfs)} sampled rows)")

    # show what the compiler produces for Q12
    session = connect(engine="local", hdfs=hdfs, metastore=metastore)
    result = session.query(tpch_query(12, sf))
    print("\nTPC-H Q12 physical plan (shared verbatim by both engines):")
    print(explain_plan(result.plan))

    print("\nquery times (simulated seconds):")
    print(f"{'query':<6} {'hadoop':>9} {'datampi':>9} {'improvement':>12}")
    for query in QUERIES_TO_SHOW:
        script = tpch_query(query, sf)
        hadoop = run_script("hadoop", hdfs, metastore, script).breakdown.total
        datampi = run_script("datampi", hdfs, metastore, script).breakdown.total
        print(f"Q{query:<5} {hadoop:>9.1f} {datampi:>9.1f} "
              f"{improvement_percent(hadoop, datampi):>11.1f}%")


if __name__ == "__main__":
    main()
