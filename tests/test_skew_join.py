"""Differential-oracle suite for the skew-aware shuffle join.

A Zipf-skewed fact table joins a small dim table with the map-join
threshold forced down, so the plan is a shuffle join whose hot keys the
heavy-hitter sketch flags for SharesSkew-style splitting.  Every
configuration (engine x execution mode x storage format x skew factor)
must return rows byte-identical to the local oracle — and identical with
skew splitting disabled — while the shape checks assert the split
actually flattens the per-reducer byte distribution.
"""

import math
import random

import pytest

from repro import HDFS, Metastore, connect
from repro.common.config import (
    EXEC_VECTORIZED,
    HIVE_MAPJOIN_SMALLTABLE_BYTES,
    SKEWJOIN_THRESHOLD,
)
from repro.common.rows import Schema
from repro.engines.base import compare_result_rows

NUM_KEYS = 40
NUM_FACT_ROWS = 1500
ENGINES = ("hadoop", "datampi", "llap")
MODES = (False, True)  # row-at-a-time, vectorized
FORMATS = ("sequence", "orc")

SKEW_SQL = (
    "SELECT f.k, f.v, d.label FROM fact f JOIN dim d ON f.k = d.k "
    "ORDER BY f.k, f.v, d.label"
)
JOIN_CONF = {
    HIVE_MAPJOIN_SMALLTABLE_BYTES: 1,          # force a shuffle join
    "hive.exec.reducers.bytes.per.reducer": 400,  # force many reducers
}


def zipf_keys(alpha: float, count: int, seed: int = 17):
    """Deterministic Zipf(alpha) samples over key ids 0..NUM_KEYS-1."""
    weights = [1.0 / math.pow(rank + 1, alpha) for rank in range(NUM_KEYS)]
    total = sum(weights)
    cumulative, acc = [], 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    rng = random.Random(seed)
    keys = []
    for _ in range(count):
        u = rng.random()
        keys.append(next(i for i, edge in enumerate(cumulative) if u <= edge))
    return keys


def build_skew_warehouse(alpha: float, format_name: str = "sequence"):
    hdfs = HDFS(num_workers=5)
    metastore = Metastore(hdfs)
    dim_schema = Schema.parse("k int, label string")
    fact_schema = Schema.parse("k int, v int")
    dim = metastore.create_table("dim", dim_schema, format_name=format_name)
    fact = metastore.create_table("fact", fact_schema, format_name=format_name)
    hdfs.write(f"{dim.location}/part-0", dim_schema,
               [(i, f"L{i}") for i in range(NUM_KEYS)],
               format_name=format_name)
    keys = zipf_keys(alpha, NUM_FACT_ROWS)
    half = NUM_FACT_ROWS // 2
    for part, chunk in enumerate((keys[:half], keys[half:])):
        hdfs.write(f"{fact.location}/part-{part}", fact_schema,
                   [(k, part * half + i) for i, k in enumerate(chunk)],
                   format_name=format_name)
    return hdfs, metastore


def analyzed_session(hdfs, metastore, engine, conf=None):
    session = connect(engine=engine, hdfs=hdfs, metastore=metastore,
                      conf=dict(JOIN_CONF, **(conf or {})))
    for table in ("fact", "dim"):
        session.execute(f"ANALYZE TABLE {table} COMPUTE STATISTICS FOR COLUMNS")
    return session


def reduce_byte_shares(result):
    """Per-reducer share of shuffled bytes for the join job."""
    for job in result.execution.jobs:
        tasks = [t for t in job.tasks if t.kind in ("reduce", "a")]
        if job.num_reducers and job.num_reducers > 1 and tasks:
            total = sum(t.kv_bytes for t in tasks)
            if total:
                return [t.kv_bytes / total for t in tasks]
    raise AssertionError("no multi-reducer shuffle job in result")


@pytest.fixture(scope="module")
def oracle_rows():
    """(alpha, format) -> reference rows from the stats-free local engine."""
    cache = {}

    def _get(alpha, format_name):
        key = (alpha, format_name)
        if key not in cache:
            hdfs, metastore = build_skew_warehouse(alpha, format_name)
            with connect(engine="local", hdfs=hdfs,
                         metastore=metastore, conf=dict(JOIN_CONF)) as session:
                cache[key] = session.query(SKEW_SQL).rows
        return cache[key]

    return _get


class TestSkewJoinOracle:
    @pytest.mark.parametrize("vectorized", MODES, ids=["row", "vectorized"])
    @pytest.mark.parametrize("engine", ENGINES)
    def test_rows_identical_with_and_without_split(
        self, oracle_rows, engine, vectorized
    ):
        hdfs, metastore = build_skew_warehouse(alpha=1.2)
        mode = {EXEC_VECTORIZED: vectorized}
        with analyzed_session(hdfs, metastore, engine, mode) as on:
            rows_on = on.query(SKEW_SQL).rows
        with analyzed_session(hdfs, metastore, engine,
                              dict(mode, **{SKEWJOIN_THRESHOLD: 0})) as off:
            rows_off = off.query(SKEW_SQL).rows
        expected = oracle_rows(1.2, "sequence")
        assert compare_result_rows(expected, rows_on, ordered=True), (
            f"skew-split rows diverged from oracle on {engine}"
        )
        assert rows_on == rows_off

    @pytest.mark.parametrize("format_name", FORMATS)
    def test_formats_match_oracle(self, oracle_rows, format_name):
        hdfs, metastore = build_skew_warehouse(alpha=1.2, format_name=format_name)
        with analyzed_session(hdfs, metastore, "datampi") as session:
            rows = session.query(SKEW_SQL).rows
        assert compare_result_rows(
            oracle_rows(1.2, format_name), rows, ordered=True
        )

    @pytest.mark.parametrize("alpha", (0.8, 1.6), ids=["mild", "extreme"])
    def test_skew_factors_match_oracle(self, oracle_rows, alpha):
        hdfs, metastore = build_skew_warehouse(alpha=alpha)
        with analyzed_session(hdfs, metastore, "hadoop") as session:
            rows = session.query(SKEW_SQL).rows
        assert compare_result_rows(oracle_rows(alpha, "sequence"), rows,
                                   ordered=True)

    def test_left_join_split_preserves_unmatched(self, oracle_rows):
        sql = (
            "SELECT f.k, f.v, d.label FROM fact f LEFT JOIN dim d "
            "ON f.k = d.k ORDER BY f.k, f.v"
        )
        hdfs, metastore = build_skew_warehouse(alpha=1.2)
        with analyzed_session(hdfs, metastore, "datampi") as on:
            rows_on = on.query(sql).rows
        with analyzed_session(hdfs, metastore, "datampi",
                              {SKEWJOIN_THRESHOLD: 0}) as off:
            rows_off = off.query(sql).rows
        assert rows_on == rows_off and len(rows_on) == NUM_FACT_ROWS


class TestSkewJoinShape:
    @pytest.mark.parametrize("engine", ("hadoop", "datampi"))
    def test_split_flattens_reducer_bytes(self, engine):
        hdfs, metastore = build_skew_warehouse(alpha=1.6)
        with analyzed_session(hdfs, metastore, engine,
                              {SKEWJOIN_THRESHOLD: 0.1}) as on:
            shares_on = reduce_byte_shares(on.query(SKEW_SQL))
        with analyzed_session(hdfs, metastore, engine,
                              {SKEWJOIN_THRESHOLD: 0}) as off:
            shares_off = reduce_byte_shares(off.query(SKEW_SQL))
        # with Zipf 1.6 the head key holds ~47% of fact rows: undivided it
        # pins one reducer; split (with the two next keys at share >= 0.1)
        # the hot reducer must fall below 20% of shuffled bytes
        assert max(shares_on) < 0.2, shares_on
        assert max(shares_off) / max(shares_on) >= 2.0, (
            f"{engine}: skew split only improved hot-reducer share "
            f"{max(shares_off):.3f} -> {max(shares_on):.3f}"
        )

    def test_split_counted_in_metrics(self):
        from repro.obs.metrics import get_metrics

        hdfs, metastore = build_skew_warehouse(alpha=1.2)
        with analyzed_session(hdfs, metastore, "datampi") as session:
            before = get_metrics().counter("optimizer.skew_splits").value
            session.query(SKEW_SQL)
            assert get_metrics().counter("optimizer.skew_splits").value > before

    def test_threshold_zero_never_splits(self):
        hdfs, metastore = build_skew_warehouse(alpha=1.6)
        with analyzed_session(hdfs, metastore, "datampi",
                              {SKEWJOIN_THRESHOLD: 0}) as session:
            plan = session.query("EXPLAIN " + SKEW_SQL)
            text = "\n".join(r[0] for r in plan.rows)
            assert "skew join" not in text and "skew:" not in text
