"""Table III — productivity: size of the DataMPI plug-in vs the stack.

Paper: supporting all Hive workloads on DataMPI required only ~0.3K
changed lines (plus ~1.1K inherited and ~2.6K refactored), because the
compiler and the operator runtime are reused verbatim.  The analogous
split in this reproduction: the shared compiler + operator runtime vs
the DataMPI-specific engine package.
"""

from benchhelpers import emit, run_once

from repro.reporting.productivity import (
    format_productivity_table,
    productivity_report,
)


def test_table3_productivity(benchmark):
    report = run_once(benchmark, productivity_report)
    emit(format_productivity_table(report))

    shared = (
        report["compiler (shared)"].lines
        + report["execution shared (operators, tasks)"].lines
    )
    datampi = report["engine for DataMPI (main changes)"].lines
    hadoop = report["engine for Hadoop"].lines

    # paper shape: the engine-specific deltas are small relative to the
    # shared substrate both engines reuse
    assert shared > 2 * datampi, "the plug-in must be small vs the shared stack"
    assert datampi > 0 and hadoop > 0
    emit(
        f"shared substrate {shared} lines; DataMPI-specific {datampi} lines "
        f"({100 * datampi / (shared + datampi):.1f}%) — paper: ~0.3K changed "
        "lines on top of Hive's reused compiler/operators"
    )
