"""Tests for the reporting layer (breakdowns, figures, productivity)."""

import os

import pytest

from repro.bench import fresh_hibench, improvement_percent, run_hibench_query, run_script
from repro.reporting.breakdown import (
    JobBreakdown,
    QueryBreakdown,
    breakdown_query,
    format_breakdown_table,
)
from repro.reporting.figures import (
    ascii_bar_chart,
    format_comparison_table,
    format_series_table,
    write_csv,
)
from repro.reporting.productivity import (
    count_code_lines,
    format_productivity_table,
    productivity_report,
)


class TestBreakdown:
    def test_query_breakdown_sums(self):
        breakdown = QueryBreakdown(label="q", compile_seconds=1.0)
        breakdown.jobs.append(JobBreakdown("j1", startup=2.0, map_shuffle=10.0, others=3.0))
        breakdown.jobs.append(JobBreakdown("j2", startup=1.0, map_shuffle=5.0, others=2.0))
        assert breakdown.startup == 3.0
        assert breakdown.map_shuffle == 15.0
        assert breakdown.others == 5.0
        assert breakdown.total == 24.0
        assert breakdown.num_jobs == 2

    def test_breakdown_from_driver_results(self, local_session):
        results = local_session.execute("SELECT dept, count(*) FROM emp GROUP BY dept")
        breakdown = breakdown_query("probe", results)
        assert breakdown.num_jobs == 1
        assert breakdown.compile_seconds > 0

    def test_format_table(self):
        breakdown = QueryBreakdown(label="q")
        breakdown.jobs.append(JobBreakdown("j", 1.0, 2.0, 3.0))
        text = format_breakdown_table({"q": breakdown})
        assert "map-shuffle" in text and "q" in text


class TestFigures:
    def test_series_table(self):
        text = format_series_table("T", "x", [1, 2], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert "T" in text and "3.00" in text

    def test_comparison_table_improvement(self):
        text = format_comparison_table(
            "cmp", ["r1"], {"base": [10.0], "new": [8.0]},
            improvement_of=("base", "new"),
        )
        assert "20.0" in text

    def test_ascii_bar_chart(self):
        text = ascii_bar_chart("bars", ["a", "b"], [1.0, 2.0])
        assert text.count("|") == 2

    def test_write_csv(self, tmp_path):
        path = write_csv(str(tmp_path / "out.csv"), ["a", "b"], [[1, 2], [3, 4]])
        assert os.path.exists(path)
        content = open(path).read()
        assert "a,b" in content and "3,4" in content


class TestProductivity:
    def test_counts_positive(self):
        report = productivity_report()
        for label, count in report.items():
            assert count.lines > 0, label
            assert count.files > 0, label

    def test_datampi_small_vs_shared(self):
        report = productivity_report()
        shared = (
            report["compiler (shared)"].lines
            + report["execution shared (operators, tasks)"].lines
        )
        assert report["engine for DataMPI (main changes)"].lines < shared

    def test_count_skips_comments_and_docstrings(self, tmp_path, monkeypatch):
        module = tmp_path / "probe.py"
        module.write_text('"""docstring\nspanning lines\n"""\n# comment\nx = 1\n\ny = 2\n')
        import repro

        monkeypatch.setattr(repro, "__file__", str(tmp_path / "__init__.py"))
        count = count_code_lines(["probe.py"])
        assert count.lines == 2

    def test_format_table(self):
        text = format_productivity_table(productivity_report())
        assert "Table III" in text


class TestBenchHelpers:
    def test_improvement_percent(self):
        assert improvement_percent(100.0, 75.0) == pytest.approx(25.0)
        assert improvement_percent(0.0, 10.0) == 0.0

    def test_run_script_breakdown(self):
        hdfs, metastore = fresh_hibench(5, sample_uservisits=1200)
        run = run_script(
            "local", hdfs, metastore, "SELECT count(*) FROM uservisits", label="probe"
        )
        assert run.results[0].rows == [(1200,)]
        assert run.breakdown.label == "probe"

    def test_run_hibench_query_excludes_ddl(self):
        hdfs, metastore = fresh_hibench(5, sample_uservisits=1200)
        run = run_hibench_query("local", hdfs, metastore, "aggregate")
        assert run.breakdown.label == "hibench-aggregate"
        assert run.breakdown.num_jobs == 1
