"""Execution engines + the engine registry.

* :mod:`repro.engines.base` — engine interface, shared functional job
  machinery (splits, broadcasts, reducer policy, output writing) and the
  timing record model every benchmark consumes.
* :mod:`repro.engines.local` — in-process reference executor (no cluster
  simulation); the correctness oracle for both real engines.
* :mod:`repro.engines.hadoop` — simulated Hadoop 1.x MapReduce engine.
* :mod:`repro.engines.datampi` — the paper's contribution: the DataMPI
  engine with bipartite O/A communicators and the optimized shuffle.
* :mod:`repro.engines.llap` — LLAP-style persistent-daemon engine with
  node-local columnar caches and driver result-cache support.

The registry is the public extension point.  Every engine is described
by an :class:`EngineSpec`: a factory, declared
:class:`~repro.engines.base.EngineCapabilities` (what the driver and
scheduler branch on — vectorized, speculative, gang_scheduling,
persistent, result_cache, shared_runtime) and a typed per-engine
configuration namespace (:class:`EngineOption`) that
``repro.connect(engine_config=...)`` validates against.  Third-party
engines plug in with ``repro.engines.register(EngineSpec(...))`` — or
the legacy ``register("mine", MyEngine)`` form — and become reachable
through ``repro.connect(engine="mine")`` and the CLI, exactly like the
built-ins.  A factory is either an :class:`Engine` subclass or any
callable accepting ``(hdfs, spec=...)`` — factories without a ``spec``
parameter (like :class:`LocalEngine`) are called with ``hdfs`` alone.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.config import (
    LLAP_CACHE_MB,
    LLAP_DAEMON_SLOTS,
    RESULT_CACHE_ENABLED,
    RESULT_CACHE_ENTRIES,
)
from repro.common.errors import EngineConfigError
from repro.engines.base import (
    Engine,
    EngineCapabilities,
    JobTiming,
    TaskTiming,
    PlanResult,
    decide_num_reducers,
)
from repro.engines.datampi import DataMPIEngine
from repro.engines.hadoop import HadoopEngine
from repro.engines.llap import LlapEngine
from repro.engines.local import LocalEngine


@dataclass(frozen=True)
class EngineOption:
    """One typed knob in an engine's configuration namespace.

    *name* is the short key users pass in ``engine_config``; *key* is
    the full :mod:`repro.common.config` key the validated value lands
    under, so engines read it back with the ordinary typed getters.
    """

    name: str
    key: str
    type: type = str
    default: object = None
    description: str = ""

    def parse(self, engine: str, value: object) -> object:
        """Coerce *value* to the declared type, raising the typed
        :class:`EngineConfigError` on mismatch."""
        if self.type is bool:
            if isinstance(value, bool):
                return value
            lowered = str(value).strip().lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise EngineConfigError(
                f"engine {engine!r} option {self.name!r}={value!r} is not a bool",
                engine=engine, key=self.name,
            )
        if self.type in (int, float) and isinstance(value, bool):
            raise EngineConfigError(
                f"engine {engine!r} option {self.name!r}={value!r} is not "
                f"a {self.type.__name__}",
                engine=engine, key=self.name,
            )
        try:
            return self.type(value)
        except (TypeError, ValueError) as exc:
            raise EngineConfigError(
                f"engine {engine!r} option {self.name!r}={value!r} is not "
                f"a {self.type.__name__}",
                engine=engine, key=self.name,
            ) from exc


@dataclass(frozen=True)
class EngineSpec:
    """Registry entry describing one engine: how to build it, what it
    can do, and which configuration options it understands."""

    name: str
    factory: Callable
    aliases: Tuple[str, ...] = ()
    capabilities: EngineCapabilities = field(default_factory=EngineCapabilities)
    options: Tuple[EngineOption, ...] = ()
    description: str = ""
    #: declared fallback chain, most-preferred first — the scheduler's
    #: circuit breaker degrades a query along this list when the engine
    #: keeps failing (docs/fault_model.md)
    degrades_to: Tuple[str, ...] = ()

    def option(self, name: str) -> Optional[EngineOption]:
        for candidate in self.options:
            if candidate.name == name:
                return candidate
        return None

    def validate_config(self, config: Mapping[str, object]) -> Dict[str, object]:
        """Validate an ``engine_config`` mapping against this engine's
        declared options.

        Returns ``{full config key: coerced value}`` ready to apply to a
        :class:`~repro.common.config.Configuration`.  Unknown option
        names and mis-typed values raise :class:`EngineConfigError`.
        """
        validated: Dict[str, object] = {}
        for name, value in config.items():
            option = self.option(name)
            if option is None:
                known = ", ".join(sorted(o.name for o in self.options)) or "none"
                raise EngineConfigError(
                    f"engine {self.name!r} has no config option {name!r} "
                    f"(valid options: {known})",
                    engine=self.name, key=name,
                )
            validated[option.key] = option.parse(self.name, value)
        return validated


_REGISTRY: Dict[str, EngineSpec] = {}
_ALIASES: Dict[str, str] = {}


def register(
    spec_or_name,
    factory: Optional[Callable] = None,
    aliases: Iterable[str] = (),
    replace: bool = False,
    capabilities: Optional[EngineCapabilities] = None,
    options: Iterable[EngineOption] = (),
    description: str = "",
) -> EngineSpec:
    """Make an engine constructible by name.

    Preferred form: ``register(EngineSpec(...))``.  The legacy form
    ``register(name, factory, aliases=...)`` still works and builds a
    spec on the caller's behalf — its capabilities default to the
    factory's declared ``Engine.capabilities`` when the factory is an
    :class:`Engine` subclass, else to all-off.  Re-registering an
    existing name requires ``replace=True``.  Returns the stored spec.
    """
    if isinstance(spec_or_name, EngineSpec):
        spec = spec_or_name
    else:
        name = spec_or_name
        if factory is None:
            raise ValueError("register(name, ...) requires a factory")
        if capabilities is None:
            declared = getattr(factory, "capabilities", None)
            if isinstance(declared, EngineCapabilities):
                capabilities = declared
            else:
                capabilities = EngineCapabilities()
        spec = EngineSpec(
            name=name,
            factory=factory,
            aliases=tuple(aliases),
            capabilities=capabilities,
            options=tuple(options),
            description=description,
        )
    key = spec.name.strip().lower()
    if not key:
        raise ValueError("engine name must be non-empty")
    if key in _REGISTRY and not replace:
        raise ValueError(
            f"engine {spec.name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[key] = spec
    for alias in spec.aliases:
        _ALIASES[alias.strip().lower()] = key
    return spec


def unregister(name: str) -> None:
    """Remove an engine (and any aliases pointing at it)."""
    key = resolve(name)
    _REGISTRY.pop(key, None)
    for alias in [a for a, target in _ALIASES.items() if target == key]:
        del _ALIASES[alias]


def resolve(name: str) -> str:
    """Canonical registry key for *name* (alias-aware; no existence check)."""
    key = name.strip().lower()
    return _ALIASES.get(key, key)


def available() -> List[str]:
    """Sorted canonical names of every registered engine."""
    return sorted(_REGISTRY)


def get_spec(name: str) -> EngineSpec:
    """The :class:`EngineSpec` registered under *name* (or an alias)."""
    key = resolve(name)
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown engine {name!r} (available: {', '.join(available())})"
        )
    return _REGISTRY[key]


def capabilities(name: str) -> EngineCapabilities:
    """Declared capabilities of the engine registered under *name*.

    Public API: the stable way to ask what an engine supports without
    instantiating it — ``repro.engines.capabilities("llap").persistent``.
    """
    return get_spec(name).capabilities


def create(name: str, hdfs, spec=None, **kwargs) -> Engine:
    """Instantiate the engine registered under *name* (or an alias).

    *spec* here is the :class:`~repro.simulate.ClusterSpec` handed to
    cluster engines (not the registry's :class:`EngineSpec`).
    """
    factory = get_spec(name).factory
    target = factory.__init__ if inspect.isclass(factory) else factory
    parameters = inspect.signature(target).parameters
    takes_spec = "spec" in parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )
    if takes_spec:
        return factory(hdfs, spec=spec, **kwargs)
    return factory(hdfs, **kwargs)


register(EngineSpec(
    name="datampi",
    factory=DataMPIEngine,
    aliases=("dm",),
    capabilities=DataMPIEngine.capabilities,
    description="gang-scheduled MPI engine (the paper's contribution)",
    degrades_to=("hadoop",),
))
register(EngineSpec(
    name="hadoop",
    factory=HadoopEngine,
    aliases=("mr",),
    capabilities=HadoopEngine.capabilities,
    description="simulated Hadoop 1.x MapReduce baseline",
    degrades_to=("local",),
))
register(EngineSpec(
    name="local",
    factory=LocalEngine,
    capabilities=LocalEngine.capabilities,
    description="in-process reference executor (correctness oracle)",
))
register(EngineSpec(
    name="llap",
    factory=LlapEngine,
    aliases=("live",),
    capabilities=LlapEngine.capabilities,
    options=(
        EngineOption(
            name="cache_mb", key=LLAP_CACHE_MB, type=float, default=512.0,
            description="per-node decoded-stripe cache capacity in MB",
        ),
        EngineOption(
            name="daemon_slots", key=LLAP_DAEMON_SLOTS, type=int, default=0,
            description="executor slots per daemon (0 = every node slot)",
        ),
        EngineOption(
            name="result_cache", key=RESULT_CACHE_ENABLED, type=bool,
            default=True,
            description="serve repeated identical queries from the driver "
                        "result cache",
        ),
        EngineOption(
            name="result_cache_entries", key=RESULT_CACHE_ENTRIES, type=int,
            default=64,
            description="driver result-cache LRU capacity in queries",
        ),
    ),
    description="LLAP-style persistent daemons with node-local columnar "
                "cache and driver result cache",
    degrades_to=("hadoop", "local"),
))

__all__ = [
    "Engine",
    "EngineCapabilities",
    "EngineOption",
    "EngineSpec",
    "JobTiming",
    "TaskTiming",
    "PlanResult",
    "decide_num_reducers",
    "LocalEngine",
    "HadoopEngine",
    "DataMPIEngine",
    "LlapEngine",
    "register",
    "unregister",
    "resolve",
    "available",
    "capabilities",
    "get_spec",
    "create",
]
