"""Map-side physical operators (Hive's operator tree, push style).

The physical plan stores *descriptors* (plain dataclasses); each task
instantiates fresh runtime operators from them, compiling the bound
expressions into closures.  Rows are pushed down the pipeline one batch
at a time by :class:`repro.exec.mapper.ExecMapper`; the pipeline ends in
either a :class:`ReduceSinkOperator` (emitting shuffle pairs through the
engine's collector — Hadoop's spill buffer or the DataMPICollector) or a
:class:`FileSinkOperator` (buffering output rows for HDFS).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple
from zlib import crc32

from repro.common.errors import ExecutionError
from repro.common.kv import KeyValue, fields_size, serialize_fields
from repro.exec.expressions import (
    BoundExpression,
    Const,
    codegen_group_update,
    compile_expression,
    compile_many,
    stable_hash,
)

Row = Tuple[object, ...]
Rows = List[Row]


# ---------------------------------------------------------------------------
# descriptors (what the physical plan serializes)
# ---------------------------------------------------------------------------

@dataclass
class FilterDesc:
    predicate: BoundExpression


@dataclass
class SelectDesc:
    expressions: List[BoundExpression]


@dataclass
class MapGroupByDesc:
    """Map-side partial aggregation (hash in memory, flush on pressure)."""

    key_expressions: List[BoundExpression]
    # (aggregate object, argument expression or None for COUNT(*))
    aggregates: List[Tuple[object, Optional[BoundExpression]]]
    max_groups_in_memory: int = 100_000


@dataclass(frozen=True)
class SkewRouteDesc:
    """SharesSkew-style routing for heavy join keys (docs/optimizer.md).

    The optimizer attaches one of these to each side's ReduceSink when
    column stats flag skewed join keys.  ``mode='split'`` (the big side)
    round-robins a heavy key's pairs over ``fanout`` partitions starting
    at the key's hash partition; ``mode='replicate'`` (the other side)
    copies each heavy-key pair to all ``fanout`` targets.  Every split
    partition thus holds a disjoint slice of the big side against the
    complete other side, so the per-partition join outputs union to
    exactly the plain-shuffle result.  Non-heavy keys route normally.
    """

    heavy_keys: Tuple[Tuple[object, ...], ...]
    mode: str  # 'split' | 'replicate'
    fanout: int = 0  # target partitions per heavy key; 0 = all


@dataclass
class ReduceSinkDesc:
    key_expressions: List[BoundExpression]
    value_expressions: List[BoundExpression]
    tag: int = 0
    # number of reduce partitions is decided by the engine at job start
    skew: Optional[SkewRouteDesc] = None


@dataclass
class MapJoinDesc:
    """Broadcast hash join executed entirely map-side.

    ``small_location`` names the HDFS directory of the small table; the
    engine loads its rows (running the broadcast chain) and hands them to
    the operator at init.  When ``swap_output`` is set the build side is
    the logical *left* input, so output rows are ``small + big`` to keep
    the plan's column order.
    """

    small_location: str
    probe_key_expressions: List[BoundExpression]  # over the big (streamed) side
    build_key_expressions: List[BoundExpression]  # over the small side's rows
    join_type: str = "inner"  # 'inner' | 'left'
    small_width: int = 0  # columns in the small side (for outer-join nulls)
    swap_output: bool = False


@dataclass
class LimitDesc:
    limit: int


@dataclass
class FileSinkDesc:
    column_names: List[str] = field(default_factory=list)


MapOperatorDesc = object  # union of the dataclasses above


# ---------------------------------------------------------------------------
# runtime context + collector protocol
# ---------------------------------------------------------------------------

class Collector:
    """Engine-provided sink for shuffle pairs (partition pre-computed)."""

    def collect(self, partition: int, pair: KeyValue) -> None:
        raise NotImplementedError

    def collect_batch(self, partitions, pairs) -> None:
        """Bulk :meth:`collect` over parallel partition/pair lists.

        The vectorized ReduceSink emits one call per column batch;
        engines override this with an inlined loop so the per-pair cost
        is list appends, not method dispatch.  Pair order is preserved,
        so buffer-fill sequences are identical to per-pair collect().
        """
        collect = self.collect
        for partition, pair in zip(partitions, pairs):
            collect(partition, pair)


class ListCollector(Collector):
    """Test/reference collector: buffers everything."""

    def __init__(self):
        self.pairs: List[Tuple[int, KeyValue]] = []

    def collect(self, partition: int, pair: KeyValue) -> None:
        self.pairs.append((partition, pair))


class SkewRoutingCollector(Collector):
    """Re-routes heavy join keys per a :class:`SkewRouteDesc`.

    Wraps the engine collector inside :class:`~repro.exec.mapper.ExecMapper`
    — below the sink (row and vectorized paths both read
    ``context.collector`` at call time) and above the engine's partition
    buffers, so byte accounting per partition stays exact on every
    engine, the local oracle and pooled workers alike.  Routing is
    deterministic: per-key round-robin counters start at zero in every
    task and targets are ``(hash_partition + s) % P`` for ``s <
    fanout``, so a run's pair placement never depends on task order.
    """

    def __init__(self, desc: SkewRouteDesc, inner: Collector, context: "OperatorContext"):
        num_partitions = context.num_partitions
        self._fanout = min(desc.fanout or num_partitions, num_partitions)
        self._num_partitions = num_partitions
        self._split = desc.mode == "split"
        self._inner = inner
        self._context = context
        # heavy key -> next round-robin offset (split mode)
        self._next: Dict[Tuple[object, ...], int] = {
            key: 0 for key in desc.heavy_keys
        }

    def collect(self, partition: int, pair: KeyValue) -> None:
        offsets = self._next
        key = pair.key
        if key not in offsets:
            self._inner.collect(partition, pair)
            return
        fanout = self._fanout
        if self._split:
            offset = offsets[key]
            offsets[key] = (offset + 1) % fanout
            self._inner.collect((partition + offset) % self._num_partitions, pair)
            return
        # replicate: one copy per split target.  The sink already
        # accounted the pair once, so charge the extra copies here —
        # the engine's partition buffers below see every copy anyway.
        inner_collect = self._inner.collect
        num_partitions = self._num_partitions
        for offset in range(fanout):
            inner_collect((partition + offset) % num_partitions, pair)
        extra = fanout - 1
        if extra > 0:
            size = pair.serialized_size()
            context = self._context
            context.kv_pairs_out += extra
            context.kv_bytes_out += size * extra
            context.kv_size_histogram[size] += extra

    def collect_batch(self, partitions, pairs) -> None:
        collect = self.collect
        for partition, pair in zip(partitions, pairs):
            collect(partition, pair)


class OperatorContext:
    """Per-task runtime services shared by the operator pipeline."""

    def __init__(
        self,
        collector: Optional[Collector] = None,
        num_partitions: int = 1,
        small_tables: Optional[Dict[str, List[Row]]] = None,
    ):
        self.collector = collector
        self.num_partitions = max(1, num_partitions)
        self.small_tables = small_tables or {}
        self.output_rows: List[Row] = []
        # counters
        self.rows_read = 0
        self.rows_emitted = 0
        self.kv_pairs_out = 0
        self.kv_bytes_out = 0
        # serialized size -> pair count (Fig 2(c)/(d) instrumentation);
        # a Counter so the vectorized sink can batch-count sizes in C
        self.kv_size_histogram: Dict[int, int] = Counter()


# ---------------------------------------------------------------------------
# runtime operators
# ---------------------------------------------------------------------------

class MapOperator:
    def __init__(self, child: Optional["MapOperator"]):
        self.child = child

    def process(self, row: Row) -> None:
        raise NotImplementedError

    def process_rows(self, rows: Rows) -> None:
        """Push a batch of rows; semantically one ``process`` per row.

        The batch path is the hot path — every operator overrides it to
        hoist attribute lookups out of the per-row loop and hand its
        child one list instead of one Python call per row.  This default
        keeps third-party operators correct without an override.
        """
        process = self.process
        for row in rows:
            process(row)

    def close(self) -> None:
        if self.child is not None:
            self.child.close()


class FilterOperator(MapOperator):
    def __init__(self, desc: FilterDesc, child: MapOperator):
        super().__init__(child)
        self._predicate = compile_expression(desc.predicate)

    def process(self, row: Row) -> None:
        if self._predicate(row) is True:
            self.child.process(row)

    def process_rows(self, rows: Rows) -> None:
        predicate = self._predicate
        batch = [row for row in rows if predicate(row) is True]
        if batch:
            self.child.process_rows(batch)


class SelectOperator(MapOperator):
    def __init__(self, desc: SelectDesc, child: MapOperator):
        super().__init__(child)
        self._project = compile_many(desc.expressions)

    def process(self, row: Row) -> None:
        self.child.process(self._project(row))

    def process_rows(self, rows: Rows) -> None:
        project = self._project
        self.child.process_rows([project(row) for row in rows])


class MapGroupByOperator(MapOperator):
    """Hash-based partial aggregation; flushes when the table grows past
    the configured bound (Hive's map-side GroupBy with memory pressure)."""

    def __init__(self, desc: MapGroupByDesc, child: MapOperator):
        super().__init__(child)
        self._key = compile_many(desc.key_expressions)
        self._aggregates = [
            (aggregate, arg.compile() if arg is not None else None)
            for aggregate, arg in desc.aggregates
        ]
        # Batch path: one fused projection evaluates every aggregate
        # argument (COUNT(*) takes the same True sentinel as `process`).
        self._args_of = compile_many(
            [
                arg if arg is not None else Const(True)
                for _aggregate, arg in desc.aggregates
            ]
        )
        self._updates = [aggregate.update for aggregate, _arg in desc.aggregates]
        self._creates = [aggregate.create for aggregate, _arg in desc.aggregates]
        # Fully fused path (count/sum/avg over codegen-able args): one
        # generated call updates a flat slot list in place per row.
        fused = codegen_group_update(desc.aggregates)
        if fused is not None:
            self._fused_update, self._fused_initial = fused
        else:
            self._fused_update = None
            self._fused_initial = None
        self._max_groups = desc.max_groups_in_memory
        self._table: Dict[Row, list] = {}
        self.flushes = 0

    def process(self, row: Row) -> None:
        # route through the batch path so the hash table always holds one
        # accumulator layout (flat slots when fused, tuple lists otherwise)
        self.process_rows((row,))

    def process_rows(self, rows: Rows) -> None:
        key_of = self._key
        table = self._table
        table_get = table.get
        args_of = self._args_of
        updates = self._updates
        creates = self._creates
        max_groups = self._max_groups
        fused = self._fused_update
        if fused is not None:
            initial = self._fused_initial
            for row in rows:
                key = key_of(row)
                accumulators = table_get(key)
                if accumulators is None:
                    if len(table) >= max_groups:
                        self._flush()
                    accumulators = initial[:]
                    table[key] = accumulators
                fused(row, accumulators)
            return
        if len(updates) == 1:
            # single-aggregate GROUP BY (the HiBench/TPC-H common case):
            # no inner loop, no accumulator-list indexing dance
            update = updates[0]
            create = creates[0]
            for row in rows:
                key = key_of(row)
                accumulators = table_get(key)
                if accumulators is None:
                    if len(table) >= max_groups:
                        self._flush()
                    accumulators = [create()]
                    table[key] = accumulators
                accumulators[0] = update(accumulators[0], args_of(row)[0])
            return
        for row in rows:
            key = key_of(row)
            accumulators = table_get(key)
            if accumulators is None:
                if len(table) >= max_groups:
                    self._flush()  # clears in place; `table` stays bound
                accumulators = [create() for create in creates]
                table[key] = accumulators
            values = args_of(row)
            position = 0
            for update in updates:
                accumulators[position] = update(accumulators[position], values[position])
                position += 1

    def _flush(self) -> None:
        self.flushes += 1
        if not self._table:
            return
        batch: Rows = []
        if self._fused_update is not None:
            # flat slots are exactly the concatenated partial tuples
            for key, accumulators in self._table.items():
                batch.append(tuple(key) + tuple(accumulators))
        else:
            for key, accumulators in self._table.items():
                flat: List[object] = list(key)
                for (aggregate, _arg), accumulator in zip(self._aggregates, accumulators):
                    flat.extend(aggregate.partial(accumulator))
                batch.append(tuple(flat))
        self._table.clear()
        self.child.process_rows(batch)

    def close(self) -> None:
        self._flush()
        super().close()


class MapJoinOperator(MapOperator):
    """Broadcast hash join: build side loaded at init, probe side streamed."""

    def __init__(self, desc: MapJoinDesc, child: MapOperator, context: OperatorContext):
        super().__init__(child)
        self._probe_key = compile_many(desc.probe_key_expressions)
        self._join_type = desc.join_type
        self._small_width = desc.small_width
        self._swap = desc.swap_output
        try:
            small_rows = context.small_tables[desc.small_location]
        except KeyError:
            raise ExecutionError(
                f"map-join small table not loaded: {desc.small_location}"
            ) from None
        build_key = compile_many(desc.build_key_expressions)
        self._hash: Dict[Row, List[Row]] = {}
        for row in small_rows:
            key = build_key(row)
            if any(part is None for part in key):
                continue  # NULL never matches an equi-join key
            self._hash.setdefault(key, []).append(row)

    def process(self, row: Row) -> None:
        key = self._probe_key(row)
        matches = None
        if not any(part is None for part in key):
            matches = self._hash.get(key)
        if matches:
            for small_row in matches:
                if self._swap:
                    self.child.process(small_row + row)
                else:
                    self.child.process(row + small_row)
        elif self._join_type == "left":
            self.child.process(row + (None,) * self._small_width)

    def process_rows(self, rows: Rows) -> None:
        probe_key = self._probe_key
        table = self._hash
        swap = self._swap
        left_join = self._join_type == "left"
        null_pad = (None,) * self._small_width
        batch: Rows = []
        append = batch.append
        for row in rows:
            key = probe_key(row)
            matches = None
            if not any(part is None for part in key):
                matches = table.get(key)
            if matches:
                if swap:
                    for small_row in matches:
                        append(small_row + row)
                else:
                    for small_row in matches:
                        append(row + small_row)
            elif left_join:
                append(row + null_pad)
        if batch:
            self.child.process_rows(batch)


class LimitOperator(MapOperator):
    def __init__(self, desc: LimitDesc, child: MapOperator):
        super().__init__(child)
        self._remaining = desc.limit

    def process(self, row: Row) -> None:
        if self._remaining > 0:
            self._remaining -= 1
            self.child.process(row)

    def process_rows(self, rows: Rows) -> None:
        if self._remaining <= 0:
            return
        if len(rows) > self._remaining:
            rows = rows[: self._remaining]
        self._remaining -= len(rows)
        self.child.process_rows(rows)


class ReduceSinkOperator(MapOperator):
    """Terminal: computes (key, value), partitions, hands to the collector."""

    def __init__(self, desc: ReduceSinkDesc, context: OperatorContext):
        super().__init__(None)
        self._key = compile_many(desc.key_expressions)
        self._value = compile_many(desc.value_expressions)
        self._tag = desc.tag
        self._context = context

    def process(self, row: Row) -> None:
        key = self._key(row)
        value = (self._tag,) + self._value(row)
        pair = KeyValue(key, value)
        partition = stable_hash(key) % self._context.num_partitions
        context = self._context
        size = pair.serialized_size()
        context.kv_pairs_out += 1
        context.kv_bytes_out += size
        histogram = context.kv_size_histogram
        histogram[size] = histogram.get(size, 0) + 1
        context.collector.collect(partition, pair)

    def process_rows(self, rows: Rows) -> None:
        key_of = self._key
        value_of = self._value
        tag = self._tag
        context = self._context
        num_partitions = context.num_partitions
        histogram = context.kv_size_histogram
        histogram_get = histogram.get
        collect = context.collector.collect
        seed_size = object.__setattr__
        pairs_out = 0
        bytes_out = 0
        for row in rows:
            key = key_of(row)
            # encode the key once: the bytes drive the partition hash
            # (same bytes as stable_hash) and, minus the empty-value
            # arity byte, the key's share of the wire size
            key_bytes = serialize_fields(key)
            value = (tag,) + value_of(row)
            size = len(key_bytes) - 1 + fields_size(value)
            pair = KeyValue(key, value)
            seed_size(pair, "_size", size)  # pre-warm the memo
            pairs_out += 1
            bytes_out += size
            histogram[size] = histogram_get(size, 0) + 1
            collect((crc32(key_bytes) & 0x7FFFFFFF) % num_partitions, pair)
        context.kv_pairs_out += pairs_out
        context.kv_bytes_out += bytes_out

    def close(self) -> None:
        pass


class FileSinkOperator(MapOperator):
    """Terminal: buffers final output rows (the task writes them to HDFS)."""

    def __init__(self, desc: FileSinkDesc, context: OperatorContext):
        super().__init__(None)
        self._context = context

    def process(self, row: Row) -> None:
        self._context.rows_emitted += 1
        self._context.output_rows.append(row)

    def process_rows(self, rows: Rows) -> None:
        self._context.rows_emitted += len(rows)
        self._context.output_rows.extend(rows)

    def close(self) -> None:
        pass


def build_pipeline(
    descriptors: List[MapOperatorDesc], context: OperatorContext
) -> MapOperator:
    """Instantiate a runtime pipeline from descriptors (sink must be last)."""
    if not descriptors:
        raise ExecutionError("empty operator pipeline")
    tail = descriptors[-1]
    if isinstance(tail, ReduceSinkDesc):
        operator: MapOperator = ReduceSinkOperator(tail, context)
    elif isinstance(tail, FileSinkDesc):
        operator = FileSinkOperator(tail, context)
    else:
        raise ExecutionError(f"pipeline must end in a sink, got {type(tail).__name__}")
    for descriptor in reversed(descriptors[:-1]):
        if isinstance(descriptor, FilterDesc):
            operator = FilterOperator(descriptor, operator)
        elif isinstance(descriptor, SelectDesc):
            operator = SelectOperator(descriptor, operator)
        elif isinstance(descriptor, MapGroupByDesc):
            operator = MapGroupByOperator(descriptor, operator)
        elif isinstance(descriptor, MapJoinDesc):
            operator = MapJoinOperator(descriptor, operator, context)
        elif isinstance(descriptor, LimitDesc):
            operator = LimitOperator(descriptor, operator)
        else:
            raise ExecutionError(f"unknown operator descriptor {type(descriptor).__name__}")
    return operator
