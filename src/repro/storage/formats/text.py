"""Hive delimited-text format (LazySimpleSerDe, ctrl-A separated).

Row-oriented: every scan pays for the full width of every row in the
range — no column pruning, no pushdown — which is exactly why the paper's
Table II shows ORCFile beating Text by ~22 %.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.rows import Schema, coerce_value
from repro.storage.formats.base import (
    BatchScanResult,
    FileFormat,
    Row,
    ScanResult,
    StatsConjunct,
    StoredFile,
    contiguous_scan_batch,
    register_format,
)

FIELD_DELIMITER = "\x01"


def encode_row(row: Row) -> str:
    """Render one row as a ctrl-A delimited line (without newline)."""
    return FIELD_DELIMITER.join(r"\N" if value is None else str(value) for value in row)


def decode_row(line: str, schema: Schema) -> Row:
    """Parse one delimited line back into typed values."""
    pieces = line.split(FIELD_DELIMITER)
    values = []
    for position, column in enumerate(schema.columns):
        text = pieces[position] if position < len(pieces) else None
        values.append(coerce_value(text, column.dtype))
    return tuple(values)


class TextStoredFile(StoredFile):
    """Rows plus a prefix-sum of line sizes for O(1) range byte counts."""

    def __init__(self, schema: Schema, rows: List[Row]):
        super().__init__(schema, rows)
        self._offsets = [0]
        running = 0
        for row in rows:
            running += len(encode_row(row).encode("utf-8")) + 1  # newline
            self._offsets.append(running)

    @property
    def total_bytes(self) -> int:
        return self._offsets[-1]

    def bytes_for_range(self, row_start: int, row_count: int) -> int:
        row_end = min(row_start + row_count, self.row_count)
        row_start = min(row_start, self.row_count)
        return self._offsets[row_end] - self._offsets[row_start]

    def scan(
        self,
        row_start: int,
        row_count: int,
        columns: Optional[Sequence[str]] = None,
        stats_conjuncts: Optional[Sequence[StatsConjunct]] = None,
    ) -> ScanResult:
        row_end = min(row_start + row_count, self.row_count)
        rows = self.rows[row_start:row_end]
        return ScanResult(rows=rows, bytes_read=self.bytes_for_range(row_start, row_count))

    def scan_batch(
        self,
        row_start: int,
        row_count: int,
        columns: Optional[Sequence[str]] = None,
        stats_conjuncts: Optional[Sequence[StatsConjunct]] = None,
    ) -> BatchScanResult:
        # row-oriented: hints are ignored exactly as scan() ignores them
        return contiguous_scan_batch(self, row_start, row_count)


class TextFormat(FileFormat):
    name = "text"

    def build(self, schema: Schema, rows: List[Row]) -> TextStoredFile:
        return TextStoredFile(schema, rows)


register_format(TextFormat())
