"""Ablation — decomposing DataMPI's advantage (paper §V-B summary).

The paper attributes the speedup to three factors: (1) the light-weight
library design reduces process-management overhead, (2) the efficient
(overlapped) data movement mechanism, (3) efficient MPI communication
with in-memory caching of intermediate data.  This bench turns each
factor off individually and measures how much of the HiBench JOIN win
it carries; a final column shows the paper's future-work DAG mode on
top (stage pipelining without HDFS materialization — §VII.3).
"""

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_hibench, improvement_percent, run_hibench_query
from repro.core.driver import Driver
from repro.common.config import Configuration
from repro.engines.datampi import DataMPICosts, DataMPIEngine
from repro.engines.hadoop import HadoopCosts
from repro.reporting.figures import write_csv
from repro.workloads.hibench import HIBENCH_JOIN, hibench_ddl


def _run_with(hdfs, metastore, costs=None, conf=None):
    engine = DataMPIEngine(hdfs, costs=costs or DataMPICosts())
    configuration = Configuration()
    for key, value in (conf or {}).items():
        configuration.set(key, value)
    driver = Driver(hdfs, metastore, engine, conf=configuration)
    driver.execute(hibench_ddl())
    results = driver.execute(HIBENCH_JOIN)
    return sum(r.simulated_seconds for r in results)


def _experiment():
    hdfs, metastore = fresh_hibench(20, sample_uservisits=14000)
    hadoop_costs = HadoopCosts()

    cases = {}
    cases["hadoop"] = run_hibench_query("hadoop", hdfs, metastore, "join").breakdown.total
    cases["datampi (full)"] = _run_with(hdfs, metastore)

    # factor 1 off: give DataMPI Hadoop-grade job control costs
    heavy = DataMPICosts(
        mpidrun_spawn=hadoop_costs.job_submit,
        process_launch=hadoop_costs.schedule_delay + hadoop_costs.task_jvm_start,
        task_setup=hadoop_costs.schedule_delay + hadoop_costs.task_jvm_start,
    )
    cases["- light-weight startup"] = _run_with(hdfs, metastore, costs=heavy)

    # factor 2 off: no computation/communication overlap
    cases["- overlapped shuffle"] = _run_with(
        hdfs, metastore, conf={"datampi.shuffle.overlap": False}
    )

    # factor 3 off: no in-memory caching of intermediate data (everything
    # spills on the A side)
    cases["- in-memory caching"] = _run_with(
        hdfs, metastore, conf={"hive.datampi.memusedpercent": 0.02}
    )

    # future work: DAG pipelining between stages
    cases["+ DAG pipelining"] = _run_with(
        hdfs, metastore, conf={"hive.datampi.dag": True}
    )
    return cases


def test_ablation_of_datampi_factors(benchmark):
    cases = run_once(benchmark, _experiment)
    full = cases["datampi (full)"]
    hadoop = cases["hadoop"]
    lines = ["== DataMPI factor ablation (HiBench JOIN, 20 GB; seconds) =="]
    rows = []
    for label, value in cases.items():
        gain = improvement_percent(hadoop, value)
        lines.append(f"  {label:<26} {value:8.1f}  ({gain:+5.1f}% vs hadoop)")
        rows.append([label, round(value, 2), round(gain, 2)])
    emit("\n".join(lines))
    write_csv(results_path("ablation_factors.csv"),
              ["case", "seconds", "gain_vs_hadoop_pct"], rows)

    # each removed factor must cost something; DAG must add on top
    assert cases["- light-weight startup"] > full
    assert cases["- overlapped shuffle"] > full
    assert cases["- in-memory caching"] > full
    assert cases["+ DAG pipelining"] < full
    assert full < hadoop
