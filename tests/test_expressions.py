"""Tests for bound-expression compilation (NULL logic, operators)."""

import pytest

from repro.common.rows import DataType
from repro.exec import expressions as bexpr
from repro.exec.expressions import Const, InputRef, compile_many, stable_hash


def ref(index, dtype=DataType.BIGINT):
    return InputRef(index, dtype)


def const(value):
    return Const(value, DataType.BIGINT if isinstance(value, int) else DataType.STRING)


class TestArithmetic:
    def test_basic_ops(self):
        row = (10, 3)
        assert bexpr.Arithmetic("+", ref(0), ref(1)).compile()(row) == 13
        assert bexpr.Arithmetic("-", ref(0), ref(1)).compile()(row) == 7
        assert bexpr.Arithmetic("*", ref(0), ref(1)).compile()(row) == 30
        assert bexpr.Arithmetic("%", ref(0), ref(1)).compile()(row) == 1

    def test_division_by_zero_is_null(self):
        assert bexpr.Arithmetic("/", ref(0), ref(1)).compile()((1, 0)) is None

    def test_null_propagates(self):
        evaluate = bexpr.Arithmetic("+", ref(0), ref(1)).compile()
        assert evaluate((None, 1)) is None
        assert evaluate((1, None)) is None


class TestComparison:
    def test_all_operators(self):
        row = (1, 2)
        cases = {"=": False, "<>": True, "<": True, "<=": True, ">": False, ">=": False}
        for op, expected in cases.items():
            assert bexpr.Comparison(op, ref(0), ref(1)).compile()(row) is expected

    def test_null_comparison_unknown(self):
        assert bexpr.Comparison("=", ref(0), ref(1)).compile()((None, 1)) is None


class TestThreeValuedLogic:
    def test_and_short_circuit_false(self):
        # FALSE AND NULL -> FALSE (not NULL)
        expr = bexpr.LogicalAnd(operands=[Const(False, DataType.BOOLEAN),
                                          Const(None, DataType.BOOLEAN)])
        assert expr.compile()(()) is False

    def test_and_with_unknown(self):
        expr = bexpr.LogicalAnd(operands=[Const(True, DataType.BOOLEAN),
                                          Const(None, DataType.BOOLEAN)])
        assert expr.compile()(()) is None

    def test_or_short_circuit_true(self):
        expr = bexpr.LogicalOr(operands=[Const(None, DataType.BOOLEAN),
                                         Const(True, DataType.BOOLEAN)])
        assert expr.compile()(()) is True

    def test_or_with_unknown(self):
        expr = bexpr.LogicalOr(operands=[Const(False, DataType.BOOLEAN),
                                         Const(None, DataType.BOOLEAN)])
        assert expr.compile()(()) is None

    def test_not_null(self):
        expr = bexpr.LogicalNot(operand=Const(None, DataType.BOOLEAN))
        assert expr.compile()(()) is None


class TestLike:
    def evaluate(self, pattern, value, negated=False):
        expr = bexpr.LikeExpr(operand=ref(0, DataType.STRING), pattern=pattern,
                              negated=negated)
        return expr.compile()((value,))

    def test_percent(self):
        assert self.evaluate("%green%", "dark green wheat") is True
        assert self.evaluate("%green%", "dark red wheat") is False

    def test_prefix_suffix(self):
        assert self.evaluate("forest%", "forest green") is True
        assert self.evaluate("%BRASS", "PROMO BRASS") is True

    def test_underscore(self):
        assert self.evaluate("a_c", "abc") is True
        assert self.evaluate("a_c", "abbc") is False

    def test_regex_chars_escaped(self):
        assert self.evaluate("a.c", "abc") is False
        assert self.evaluate("a.c", "a.c") is True

    def test_negated(self):
        assert self.evaluate("%special%requests%", "no such thing", negated=True) is True

    def test_null_operand(self):
        assert self.evaluate("%x%", None) is None


class TestMisc:
    def test_in_set(self):
        expr = bexpr.InSet(operand=ref(0), values=frozenset({1, 2, 3}))
        assert expr.compile()((2,)) is True
        assert expr.compile()((9,)) is False
        assert expr.compile()((None,)) is None

    def test_in_set_negated(self):
        expr = bexpr.InSet(operand=ref(0), values=frozenset({1}), negated=True)
        assert expr.compile()((2,)) is True

    def test_is_null(self):
        assert bexpr.IsNullExpr(operand=ref(0)).compile()((None,)) is True
        assert bexpr.IsNullExpr(operand=ref(0), negated=True).compile()((1,)) is True

    def test_case(self):
        expr = bexpr.CaseExpr(
            branches=[(bexpr.Comparison(">", ref(0), const(10)), const("big"))],
            else_value=const("small"),
        )
        evaluate = expr.compile()
        assert evaluate((11,)) == "big"
        assert evaluate((5,)) == "small"

    def test_case_without_else_yields_null(self):
        expr = bexpr.CaseExpr(
            branches=[(bexpr.Comparison(">", ref(0), const(10)), const("big"))]
        )
        assert expr.compile()((1,)) is None

    def test_cast(self):
        assert bexpr.CastExpr(operand=ref(0), dtype=DataType.INT).compile()(("42",)) == 42
        assert bexpr.CastExpr(operand=ref(0), dtype=DataType.DOUBLE).compile()((3,)) == 3.0
        assert bexpr.CastExpr(operand=ref(0), dtype=DataType.STRING).compile()((3,)) == "3"

    def test_cast_malformed_is_null(self):
        expr = bexpr.CastExpr(operand=ref(0), dtype=DataType.INT)
        assert expr.compile()(("abc",)) is None

    def test_compile_many(self):
        project = compile_many([ref(1), const(7), ref(0)])
        assert project(("a", "b")) == ("b", 7, "a")


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("key", 1)) == stable_hash(("key", 1))

    def test_spreads(self):
        buckets = {stable_hash((f"k{i}",)) % 16 for i in range(200)}
        assert len(buckets) >= 12

    def test_distinguishes(self):
        assert stable_hash(("a",)) != stable_hash(("b",))
