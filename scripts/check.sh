#!/usr/bin/env bash
# Repo health gate: lint (when ruff is installed) + the tier-1 test suite.
# Usage: scripts/check.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests
else
    echo "== ruff not installed; skipping lint (pip install ruff to enable) =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q "$@"
