"""Concurrency suite for the workload scheduler (``repro.sched``).

Covers: deterministic replay (same seed + submission schedule → byte
identical results, makespan and event ordering), cluster-sharing
invariants (no slot oversubscription, DataMPI gang atomicity,
overlapping job spans), solo-equivalence of results under every policy
on both engines, admission control (capacity caps, bounded queues,
typed rejection), fair-vs-FIFO differentiation, cancellation, and a
hypothesis property test over random submit/cancel/result interleavings.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.common.config import (
    FAULT_SPEC,
    LEASE_AUDIT,
    RETRY_BACKOFF,
    RETRY_MAX,
    SCHED_DEFAULT_POOL,
    SCHED_MAX_CONCURRENT,
    SCHED_POLICY,
    SCHED_POOLS,
)
from repro.common.errors import (
    AdmissionRejectedError,
    ConfigError,
    QueryCancelledError,
)
from repro.sched import (
    CANCELLED,
    FAILED,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    Pool,
    jain_fairness_index,
    parse_pools,
)

from .conftest import build_big_warehouse, build_warehouse

AGG = "SELECT dept, count(*), sum(salary) FROM emp GROUP BY dept"
JOIN = ("SELECT e.name, d.budget FROM emp e JOIN dept d ON e.dept = d.dept "
        "ORDER BY e.name")
SCAN = "SELECT count(*) FROM emp"
BIG_AGG = "SELECT grp, sum(val), count(*), avg(val) FROM facts GROUP BY grp"
BIG_SCAN = "SELECT count(*) FROM facts"


def open_session(engine, conf=None, big=False):
    hdfs, metastore = build_big_warehouse() if big else build_warehouse()
    return repro.connect(engine=engine, hdfs=hdfs, metastore=metastore, conf=conf)


def replay_audit_trail(ledger):
    """Replay grants/releases; return the per-pool peak occupancy seen."""
    assert ledger.audit, "test session must set repro.lease.audit"
    in_use = {}
    peaks = {}
    for _time, action, pool, _query in ledger.events:
        if action == "grant":
            in_use[pool] = in_use.get(pool, 0) + 1
        elif action == "release":
            in_use[pool] = in_use.get(pool, 0) - 1
        assert in_use.get(pool, 0) >= 0, f"pool {pool} released below zero"
        peaks[pool] = max(peaks.get(pool, 0), in_use.get(pool, 0))
    assert all(count == 0 for count in in_use.values()), \
        f"slots leaked at end of run: {in_use}"
    return peaks


# ---------------------------------------------------------------------------
# pool-spec grammar
# ---------------------------------------------------------------------------

def test_parse_pools_grammar():
    pools = parse_pools("etl:weight=2,cap=1,queue=4; adhoc:weight=1; batch")
    assert pools["etl"] == Pool("etl", weight=2.0, max_concurrent=1, max_queue=4)
    assert pools["adhoc"].weight == 1.0
    assert pools["batch"] == Pool("batch")


@pytest.mark.parametrize("spec", [
    "etl:weight=zero", "etl:cap", "etl:speed=2", ":cap=1", "a:w=1; a:w=2",
])
def test_parse_pools_rejects_malformed(spec):
    with pytest.raises(ConfigError):
        parse_pools(spec)


def test_jain_fairness_index():
    assert jain_fairness_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert jain_fairness_index([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)
    assert jain_fairness_index([]) == 1.0


# ---------------------------------------------------------------------------
# sharing: overlap, oversubscription, gang atomicity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["hadoop", "datampi"])
def test_two_queries_share_the_cluster(engine):
    """Two submitted queries provably interleave on one cluster: their
    job spans overlap in simulated time, the makespan beats sequential
    execution, and no pool ever exceeds its capacity."""
    with open_session(engine) as solo:
        sequential = (solo.query(AGG).simulated_seconds
                      + solo.query(JOIN).simulated_seconds)
    with open_session(engine, conf={LEASE_AUDIT: True}) as session:
        h1 = session.submit(AGG)
        h2 = session.submit(JOIN)
        r1, r2 = h1.result(), h2.result()
        scheduler = session.scheduler
        assert scheduler.summary()["makespan"] < sequential
        # overlapping job spans: q1 starts before q2's jobs end and vice versa
        spans1 = r1.execution.spans
        spans2 = r2.execution.spans
        assert spans1 and spans2
        assert spans1[0].attributes["query"] == h1.query_id
        assert spans2[0].attributes["query"] == h2.query_id
        q1 = (min(s.start for s in spans1), max(s.end for s in spans1))
        q2 = (min(s.start for s in spans2), max(s.end for s in spans2))
        assert q1[0] < q2[1] and q2[0] < q1[1], "job spans never overlapped"
        ledger = scheduler.runtime.leases.ledger
        assert ledger.oversubscribed_pools() == []
        peaks = replay_audit_trail(ledger)
        for pool, peak in peaks.items():
            assert peak <= ledger.capacity[pool], (pool, peak)


def test_datampi_gangs_are_all_or_nothing():
    """Every DataMPI gang grant lands atomically: its per-slot grant
    events are contiguous in the audit trail (no other query's grant
    interleaves mid-gang) and never exceed any pool's capacity."""
    with open_session("datampi", conf={LEASE_AUDIT: True}, big=True) as session:
        handles = [session.submit(BIG_AGG) for _ in range(3)]
        for handle in handles:
            handle.result()
        ledger = session.scheduler.runtime.leases.ledger
        assert ledger.gang_grants, "datampi ran without gang grants"
        events = ledger.events
        for when, query, wants in ledger.gang_grants:
            want_slots = [pool for pool, count in wants for _ in range(count)]
            for pool, count in wants:
                assert count <= ledger.capacity[pool]
            matches = [
                index for index, event in enumerate(events)
                if event == (when, "grant", want_slots[0], query)
            ]
            assert any(
                [e[2] for e in events[start:start + len(want_slots)]]
                == want_slots
                and all(e[0] == when and e[1] == "grant" and e[3] == query
                        for e in events[start:start + len(want_slots)])
                for start in matches
            ), f"gang grant for {query} at {when} is not contiguous"
        replay_audit_trail(ledger)


# ---------------------------------------------------------------------------
# correctness: solo equivalence under every policy, both engines
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["hadoop", "datampi"])
@pytest.mark.parametrize("policy", ["fifo", "fair", "capacity"])
def test_concurrent_results_match_solo(engine, policy):
    solo_rows = {}
    with open_session(engine) as solo:
        for sql in (AGG, JOIN, SCAN):
            solo_rows[sql] = solo.query(sql).rows
    conf = {SCHED_POLICY: policy}
    with open_session(engine, conf=conf) as session:
        handles = [(sql, session.submit(sql)) for sql in (AGG, JOIN, SCAN)]
        for sql, handle in handles:
            assert handle.result().rows == solo_rows[sql], \
                f"{engine}/{policy}: {sql!r} diverged from solo"
        assert session.scheduler.runtime.leases.ledger.oversubscribed_pools() == []


# ---------------------------------------------------------------------------
# determinism: same submission schedule replays identically
# ---------------------------------------------------------------------------

def _deterministic_run(engine):
    conf = {
        SCHED_POLICY: "fair",
        SCHED_POOLS: "etl:weight=2; adhoc:weight=1",
        SCHED_DEFAULT_POOL: "adhoc",
        FAULT_SPEC: "seed:7; fail:0.04",
        RETRY_MAX: 6,
        RETRY_BACKOFF: 0.5,
        LEASE_AUDIT: True,
    }
    with open_session(engine, conf=conf, big=True) as session:
        handles = [
            session.submit(BIG_AGG, pool="etl"),
            session.submit(BIG_SCAN, pool="adhoc"),
            session.submit(BIG_AGG, pool="adhoc"),
        ]
        session.scheduler.drain()
        rows = [repr(handle.result().rows) for handle in handles]
        events = list(session.scheduler.events)
        makespan = session.scheduler.summary()["makespan"]
        lease_events = list(session.scheduler.runtime.leases.ledger.events)
    return rows, events, makespan, lease_events


@pytest.mark.parametrize("engine", ["hadoop", "datampi"])
def test_deterministic_replay(engine):
    """Same seed + same submission schedule ⇒ byte-identical rows, the
    exact same makespan, and the identical scheduling event order."""
    first = _deterministic_run(engine)
    second = _deterministic_run(engine)
    assert first[0] == second[0], "result rows differ between runs"
    assert first[2] == second[2], "makespan differs between runs"
    assert first[1] == second[1], "scheduler event order differs between runs"
    assert first[3] == second[3], "lease audit trail differs between runs"


# ---------------------------------------------------------------------------
# policies: admission control + fair vs fifo
# ---------------------------------------------------------------------------

def test_capacity_pool_rejects_when_queue_full():
    conf = {
        SCHED_POLICY: "capacity",
        SCHED_POOLS: "etl:cap=1,queue=1; adhoc:weight=1",
        SCHED_DEFAULT_POOL: "adhoc",
    }
    with open_session("datampi", conf=conf) as session:
        running = session.submit(SCAN, pool="etl")
        queued = session.submit(SCAN, pool="etl")
        assert running.status() == RUNNING
        assert queued.status() == QUEUED
        with pytest.raises(AdmissionRejectedError) as info:
            session.submit(SCAN, pool="etl")
        assert info.value.pool == "etl"
        assert info.value.running == 1
        assert info.value.queued == 1
        assert info.value.max_concurrent == 1
        assert info.value.max_queue == 1
        # a full pool never blocks other pools
        bystander = session.submit(SCAN)
        assert bystander.status() == RUNNING
        assert queued.result().rows == running.result().rows


def test_global_concurrency_cap_queues_without_rejecting():
    conf = {SCHED_MAX_CONCURRENT: 1}
    with open_session("datampi", conf=conf) as session:
        first = session.submit(SCAN)
        second = session.submit(SCAN)
        assert first.status() == RUNNING
        assert second.status() == QUEUED  # bounded only by pool queues
        assert second.result().rows == first.result().rows
        admits = [e for e in session.scheduler.events if e[1] == "admit"]
        assert [e[2] for e in admits] == [first.query_id, second.query_id]
        # the second query was admitted only when the first finished
        finish_first = next(e[0] for e in session.scheduler.events
                            if e[1] == "finish" and e[2] == first.query_id)
        assert admits[1][0] == finish_first


def test_fair_share_beats_fifo_for_short_query():
    """The paper-motivating scenario: a short scan submitted behind long
    aggregations finishes far earlier under fair-share than FIFO."""
    latencies = {}
    for policy in ("fifo", "fair"):
        with open_session("hadoop", conf={SCHED_POLICY: policy}, big=True) as session:
            longs = [session.submit(BIG_AGG) for _ in range(3)]
            short = session.submit(BIG_SCAN)
            session.scheduler.drain()
            for handle in longs:
                handle.result()
            latencies[policy] = short.latency
    assert latencies["fair"] < latencies["fifo"], latencies


def test_fifo_and_fair_policies_change_event_order_not_results():
    rows = {}
    for policy in ("fifo", "fair"):
        with open_session("hadoop", conf={SCHED_POLICY: policy}, big=True) as session:
            handles = [session.submit(BIG_AGG), session.submit(BIG_SCAN)]
            rows[policy] = [repr(h.result().rows) for h in handles]
    assert rows["fifo"] == rows["fair"]


# ---------------------------------------------------------------------------
# lifecycle: cancel, failure isolation, closed sessions
# ---------------------------------------------------------------------------

def test_cancel_before_admission():
    conf = {SCHED_MAX_CONCURRENT: 1}
    with open_session("datampi", conf=conf) as session:
        first = session.submit(SCAN)
        second = session.submit(SCAN)
        assert second.cancel() is True
        assert second.cancel() is False  # idempotent: already cancelled
        assert second.status() == CANCELLED
        assert first.cancel() is False  # running queries are not preempted
        assert first.result().rows
        with pytest.raises(QueryCancelledError):
            second.result()
        assert [e[1] for e in session.scheduler.events
                if e[2] == second.query_id] == ["submit", "cancel"]


def test_one_failing_query_does_not_sink_the_batch():
    with open_session("datampi") as session:
        good = session.submit(AGG)
        bad = session.submit("SELECT nonexistent_column FROM emp")
        other = session.submit(SCAN)
        assert good.result().rows
        assert other.result().rows
        assert bad.status() == FAILED
        with pytest.raises(Exception):
            bad.result()


def test_submit_statuses_and_timings():
    with open_session("datampi") as session:
        handle = session.submit(AGG)
        assert handle.status() == RUNNING  # admitted, zero simulated time yet
        assert handle.latency is None
        result = handle.result()
        assert handle.status() == SUCCEEDED
        assert handle.queue_wait == 0.0
        assert handle.latency > 0
        assert result.trace is not None
        assert result.trace.attributes["pool"] == "default"
        assert result.trace.attributes["policy"] == "fifo"
        usage = session.scheduler.runtime.leases.ledger.owner_usage(
            handle.query_id
        )
        assert usage.slot_seconds > 0


def test_local_engine_refuses_scheduling():
    with open_session("local") as session:
        with pytest.raises(ConfigError):
            session.submit(SCAN)


def test_closed_session_refuses_submit():
    session = open_session("datampi")
    session.close()
    with pytest.raises(Exception):
        session.submit(SCAN)


def test_unknown_pool_is_an_error():
    with open_session("datampi") as session:
        with pytest.raises(ConfigError):
            session.submit(SCAN, pool="nope")


# ---------------------------------------------------------------------------
# property: random interleavings never deadlock or lose work
# ---------------------------------------------------------------------------

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.sampled_from(["etl", "adhoc"])),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("result"), st.integers(min_value=0, max_value=9)),
    ),
    min_size=1,
    max_size=10,
)


@settings(max_examples=12, deadline=None)
@given(ops=OPS)
def test_random_interleavings_terminate(ops):
    """Any submit/cancel/result interleaving drains cleanly: every
    admitted query reaches a terminal state, pending-work counters
    return to zero, and no slots leak."""
    conf = {
        SCHED_POLICY: "capacity",
        SCHED_POOLS: "etl:cap=1,queue=2; adhoc:weight=1",
        SCHED_DEFAULT_POOL: "adhoc",
        LEASE_AUDIT: True,
    }
    with open_session("datampi", conf=conf) as session:
        handles = []
        rejected = 0
        for op in ops:
            if op[0] == "submit":
                try:
                    handles.append(session.submit(SCAN, pool=op[1]))
                except AdmissionRejectedError:
                    rejected += 1
            elif op[0] == "cancel" and handles:
                handles[op[1] % len(handles)].cancel()
            elif op[0] == "result" and handles:
                handle = handles[op[1] % len(handles)]
                try:
                    handle.result()
                except (QueryCancelledError, AdmissionRejectedError):
                    pass
        scheduler = session.scheduler
        scheduler.drain()
        for handle in handles:
            assert handle.done(), f"{handle} never terminated"
            if handle.status() == SUCCEEDED:
                assert handle.results
        assert scheduler._running_total == 0
        assert not scheduler._waiting
        terminal = {SUCCEEDED, FAILED, CANCELLED}
        assert {h.status() for h in handles} <= terminal
        assert len(handles) + rejected == sum(
            1 for op in ops if op[0] == "submit"
        )
        replay_audit_trail(scheduler.runtime.leases.ledger)
