"""Reporting: the paper's tables/figures rendered from engine results.

* :mod:`repro.reporting.breakdown` — startup / Map-Shuffle / others
  per-job breakdowns (Figs 1, 10, 11) from :class:`JobTiming` records.
* :mod:`repro.reporting.figures` — ASCII/CSV series renderers shared by
  the benchmark harness.
* :mod:`repro.reporting.productivity` — Table III equivalent: counts
  the code lines of the plug-in layer vs. the engine substrates.
"""

from repro.reporting.breakdown import (
    QueryBreakdown,
    breakdown_query,
    format_breakdown_table,
)
from repro.reporting.figures import (
    format_series_table,
    format_comparison_table,
    write_csv,
    ascii_bar_chart,
)
from repro.reporting.productivity import (
    count_code_lines,
    productivity_report,
    format_productivity_table,
)
from repro.reporting.timeline import (
    render_task_timeline,
    render_job_gantt,
    phase_ruler,
)

__all__ = [
    "QueryBreakdown",
    "breakdown_query",
    "format_breakdown_table",
    "format_series_table",
    "format_comparison_table",
    "write_csv",
    "ascii_bar_chart",
    "count_code_lines",
    "productivity_report",
    "format_productivity_table",
    "render_task_timeline",
    "render_job_gantt",
    "phase_ruler",
]
