"""Tests for the discrete-event kernel and resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ExecutionError
from repro.simulate import Simulator, SlotPool, Bandwidth, MemoryAccount
from repro.simulate.events import AllOf, AnyOf


class TestEventLoop:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        done = []

        def proc():
            yield sim.timeout(5.0)
            done.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert done == [5.0]

    def test_deterministic_tie_order(self):
        sim = Simulator()
        order = []

        def proc(name):
            yield sim.timeout(1.0)
            order.append(name)

        for name in "abc":
            sim.spawn(proc(name))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_process_join(self):
        sim = Simulator()
        trace = []

        def child():
            yield sim.timeout(2.0)
            trace.append("child")
            return 42

        def parent():
            value = yield sim.spawn(child())
            trace.append(("parent", value, sim.now))

        sim.spawn(parent())
        sim.run()
        assert trace == ["child", ("parent", 42, 2.0)]

    def test_all_of(self):
        sim = Simulator()
        seen = []

        def proc():
            values = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(3, "b")])
            seen.append((sim.now, values))

        sim.spawn(proc())
        sim.run()
        assert seen == [(3.0, ["a", "b"])]

    def test_all_of_empty_triggers_immediately(self):
        sim = Simulator()
        event = AllOf(sim, [])
        assert event.triggered

    def test_any_of(self):
        sim = Simulator()
        seen = []

        def proc():
            index, value = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(1, "fast")])
            seen.append((sim.now, index, value))

        sim.spawn(proc())
        sim.run()
        assert seen == [(1.0, 1, "fast")]

    def test_run_until(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(100.0)

        sim.spawn(proc())
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_event_trigger_twice_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.trigger(1)
        with pytest.raises(ExecutionError):
            event.trigger(2)

    def test_daemon_callbacks_do_not_keep_sim_alive(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.call_at(sim.now + 1.0, tick, daemon=True)

        sim.call_at(1.0, tick, daemon=True)

        def proc():
            yield sim.timeout(3.5)

        sim.spawn(proc())
        sim.run()
        assert sim.now == 3.5
        assert ticks == [1.0, 2.0, 3.0]

    def test_cancelled_call_skipped_without_clock_advance(self):
        sim = Simulator()
        handle = sim.call_at(100.0, lambda: None)

        def proc():
            yield sim.timeout(1.0)

        sim.spawn(proc())
        sim.cancel(handle)
        sim.run()
        assert sim.now == 1.0

    def test_schedule_in_past_rejected(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5.0)
            sim.call_at(1.0, lambda: None)

        sim.spawn(proc())
        with pytest.raises(ExecutionError):
            sim.run()

    def test_interrupt(self):
        from repro.simulate.events import Interrupt

        sim = Simulator()
        trace = []

        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                trace.append((sim.now, interrupt.cause))

        def killer(process):
            yield sim.timeout(2.0)
            process.interrupt("stop")

        process = sim.spawn(victim())
        sim.spawn(killer(process))
        sim.run()
        assert trace == [(2.0, "stop")]

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def victim():
            yield sim.timeout(1.0)
            return "done"

        def killer(process):
            yield sim.timeout(5.0)
            process.interrupt("too late")

        process = sim.spawn(victim())
        sim.spawn(killer(process))
        sim.run()
        assert not process.alive
        assert process.value == "done"

    def test_uncaught_interrupt_terminates_with_none(self):
        sim = Simulator()
        joined = []

        def victim():
            yield sim.timeout(100.0)
            joined.append("victim survived")  # never reached

        def parent(process):
            value = yield process
            joined.append((sim.now, value))

        def killer(process):
            yield sim.timeout(3.0)
            process.interrupt("crash")

        process = sim.spawn(victim())
        sim.spawn(parent(process))
        sim.spawn(killer(process))
        sim.run()
        assert joined == [(3.0, None)]

    def test_stale_wakeup_after_interrupt(self):
        """The event a process was parked on when interrupted must not
        re-awaken it when that event later fires."""
        from repro.simulate.events import Interrupt

        sim = Simulator()
        wakeups = []

        def victim():
            try:
                yield sim.timeout(10.0)
                wakeups.append(("timer", sim.now))
            except Interrupt:
                yield sim.timeout(5.0)  # recover on a fresh timer
                wakeups.append(("recovered", sim.now))

        def killer(process):
            yield sim.timeout(2.0)
            process.interrupt("fault")

        process = sim.spawn(victim())
        sim.spawn(killer(process))
        sim.run()
        # the original t=10 timer fires while the process waits on the
        # t=7 recovery timer; only the recovery wakeup may be delivered
        assert wakeups == [("recovered", 7.0)]
        assert sim.now == 10.0  # the stale timer still ran the clock out

    def test_any_of_losing_child_still_completes(self):
        sim = Simulator()
        trace = []

        def slow():
            yield sim.timeout(8.0)
            trace.append(("slow", sim.now))
            return "slow-value"

        def racer():
            winner = yield sim.any_of([sim.spawn(slow()), sim.timeout(2.0, "fast")])
            trace.append(("winner", sim.now, winner))

        sim.spawn(racer())
        sim.run()
        # index 1 (the timeout) wins; the losing process is not cancelled
        # and still runs to completion
        assert trace == [("winner", 2.0, (1, "fast")), ("slow", 8.0)]

    def test_cancel_pending_call_from_process(self):
        sim = Simulator()
        fired = []

        def monitor():
            handle = sim.call_at(50.0, lambda: fired.append("monitor"))
            yield sim.timeout(1.0)
            sim.cancel(handle)

        sim.spawn(monitor())
        sim.run()
        assert fired == []
        assert sim.now == 1.0


class TestSlotPool:
    def test_capacity_enforced(self):
        sim = Simulator()
        pool = SlotPool(sim, 2)
        finish = []

        def task(name):
            yield pool.acquire()
            yield sim.timeout(1.0)
            pool.release()
            finish.append((name, sim.now))

        for index in range(4):
            sim.spawn(task(index))
        sim.run()
        assert [time for _n, time in finish] == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_handoff(self):
        sim = Simulator()
        pool = SlotPool(sim, 1)
        order = []

        def task(name, hold):
            yield pool.acquire()
            order.append(name)
            yield sim.timeout(hold)
            pool.release()

        sim.spawn(task("first", 1))
        sim.spawn(task("second", 1))
        sim.spawn(task("third", 1))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_cancel_acquire_while_queued(self):
        """Withdrawing a queued acquire lets later waiters through."""
        sim = Simulator()
        pool = SlotPool(sim, 1)
        order = []

        def holder():
            yield pool.acquire()
            yield sim.timeout(5.0)
            pool.release()

        def quitter():
            ticket = pool.acquire()
            yield sim.timeout(1.0)  # give up before the slot frees
            pool.cancel_acquire(ticket)

        def patient():
            yield pool.acquire()
            order.append(("patient", sim.now))
            pool.release()

        sim.spawn(holder())
        sim.spawn(quitter())
        sim.spawn(patient())
        sim.run()
        assert order == [("patient", 5.0)]
        assert pool.queued == 0

    def test_cancel_acquire_after_grant_releases_slot(self):
        """If the waiter died after the slot was handed over, cancelling
        the grant releases it instead of leaking."""
        sim = Simulator()
        pool = SlotPool(sim, 1)
        granted = []

        def winner():
            ticket = pool.acquire()
            yield ticket
            pool.cancel_acquire(ticket)  # abandoned post-grant

        def next_in_line():
            yield pool.acquire()
            granted.append(sim.now)
            pool.release()

        sim.spawn(winner())
        sim.spawn(next_in_line())
        sim.run()
        assert granted == [0.0]
        assert pool.in_use == 0

    def test_release_idle_rejected(self):
        sim = Simulator()
        pool = SlotPool(sim, 1)
        with pytest.raises(ExecutionError):
            pool.release()

    def test_bad_capacity(self):
        with pytest.raises(ExecutionError):
            SlotPool(Simulator(), 0)


class TestBandwidth:
    def test_single_transfer_time(self):
        sim = Simulator()
        link = Bandwidth(sim, 100.0)
        done = []

        def proc():
            yield link.transfer(500.0)
            done.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert done == [pytest.approx(5.0)]

    def test_processor_sharing(self):
        sim = Simulator()
        link = Bandwidth(sim, 100.0)
        done = []

        def proc(name):
            yield link.transfer(500.0)
            done.append((name, sim.now))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        # two equal transfers share the link: both finish at 10s
        assert done[0][1] == pytest.approx(10.0)
        assert done[1][1] == pytest.approx(10.0)

    def test_late_joiner(self):
        sim = Simulator()
        link = Bandwidth(sim, 100.0)
        done = {}

        def first():
            yield link.transfer(1000.0)
            done["first"] = sim.now

        def second():
            yield sim.timeout(5.0)
            yield link.transfer(250.0)
            done["second"] = sim.now

        sim.spawn(first())
        sim.spawn(second())
        sim.run()
        # first runs alone for 5s (500 bytes), then shares; second needs
        # 250 bytes at 50/s -> done at 10s; first finishes its remaining
        # 500-250=250... : at t=10 first has 250 left, alone again -> 12.5
        assert done["second"] == pytest.approx(10.0)
        assert done["first"] == pytest.approx(12.5)

    def test_set_rate_mid_transfer(self):
        """Degrading the link keeps already-moved bytes and finishes the
        remainder at the new rate."""
        sim = Simulator()
        link = Bandwidth(sim, 100.0)
        done = []

        def mover():
            yield link.transfer(1000.0)
            done.append(sim.now)

        def degrade():
            yield sim.timeout(5.0)  # 500 bytes moved so far
            link.set_rate(50.0)  # remaining 500 bytes at 50/s -> +10s

        sim.spawn(mover())
        sim.spawn(degrade())
        sim.run()
        assert done == [pytest.approx(15.0)]

    def test_zero_bytes_immediate(self):
        sim = Simulator()
        link = Bandwidth(sim, 100.0)
        event = link.transfer(0)
        assert event.triggered

    def test_bytes_accounting(self):
        sim = Simulator()
        link = Bandwidth(sim, 100.0)

        def proc():
            yield link.transfer(300.0)

        sim.spawn(proc())
        sim.run()
        assert link.progressed_bytes() == pytest.approx(300.0)

    def test_bad_rate(self):
        with pytest.raises(ExecutionError):
            Bandwidth(Simulator(), 0)


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8),
    starts=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=8),
)
def test_property_bandwidth_conservation(sizes, starts):
    """All transfers complete; bytes moved equals bytes requested; the
    clock never ends before total_bytes/rate."""
    sim = Simulator()
    link = Bandwidth(sim, 1000.0)
    completed = []

    def proc(delay, nbytes):
        yield sim.timeout(delay)
        yield link.transfer(nbytes)
        completed.append(nbytes)

    pairs = list(zip(starts, sizes))
    for delay, nbytes in pairs:
        sim.spawn(proc(delay, nbytes))
    sim.run()
    assert len(completed) == len(pairs)
    total = sum(nbytes for _d, nbytes in pairs)
    assert link.progressed_bytes() == pytest.approx(total, rel=1e-6)
    earliest_possible = max(d + s / 1000.0 for d, s in pairs)
    assert sim.now >= earliest_possible - 1e-6


class TestMemoryAccount:
    def test_allocate_free_peak(self):
        memory = MemoryAccount(100.0)
        memory.allocate(60)
        memory.allocate(30)
        memory.free(50)
        assert memory.used == pytest.approx(40)
        assert memory.peak == pytest.approx(90)
        assert memory.available == pytest.approx(60)

    def test_over_free_rejected(self):
        memory = MemoryAccount(10.0)
        memory.allocate(5)
        with pytest.raises(ExecutionError):
            memory.free(6)

    def test_utilization(self):
        memory = MemoryAccount(200.0)
        memory.allocate(50)
        assert memory.utilization == pytest.approx(0.25)
