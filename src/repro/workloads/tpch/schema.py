"""TPC-H table schemas and the fixed nation/region content."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.rows import Schema

TPCH_SCHEMAS: Dict[str, Schema] = {
    "region": Schema.parse("r_regionkey int, r_name string, r_comment string"),
    "nation": Schema.parse(
        "n_nationkey int, n_name string, n_regionkey int, n_comment string"
    ),
    "supplier": Schema.parse(
        "s_suppkey int, s_name string, s_address string, s_nationkey int, "
        "s_phone string, s_acctbal double, s_comment string"
    ),
    "customer": Schema.parse(
        "c_custkey int, c_name string, c_address string, c_nationkey int, "
        "c_phone string, c_acctbal double, c_mktsegment string, c_comment string"
    ),
    "part": Schema.parse(
        "p_partkey int, p_name string, p_mfgr string, p_brand string, "
        "p_type string, p_size int, p_container string, p_retailprice double, "
        "p_comment string"
    ),
    "partsupp": Schema.parse(
        "ps_partkey int, ps_suppkey int, ps_availqty int, "
        "ps_supplycost double, ps_comment string"
    ),
    "orders": Schema.parse(
        "o_orderkey int, o_custkey int, o_orderstatus string, "
        "o_totalprice double, o_orderdate date, o_orderpriority string, "
        "o_clerk string, o_shippriority int, o_comment string"
    ),
    "lineitem": Schema.parse(
        "l_orderkey int, l_partkey int, l_suppkey int, l_linenumber int, "
        "l_quantity double, l_extendedprice double, l_discount double, "
        "l_tax double, l_returnflag string, l_linestatus string, "
        "l_shipdate date, l_commitdate date, l_receiptdate date, "
        "l_shipinstruct string, l_shipmode string, l_comment string"
    ),
}

REGIONS: List[str] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: (nationkey, name, regionkey) — spec Appendix A.
NATIONS: List[Tuple[int, str, int]] = [
    (0, "ALGERIA", 0), (1, "ARGENTINA", 1), (2, "BRAZIL", 1), (3, "CANADA", 1),
    (4, "EGYPT", 4), (5, "ETHIOPIA", 0), (6, "FRANCE", 3), (7, "GERMANY", 3),
    (8, "INDIA", 2), (9, "INDONESIA", 2), (10, "IRAN", 4), (11, "IRAQ", 4),
    (12, "JAPAN", 2), (13, "JORDAN", 4), (14, "KENYA", 0), (15, "MOROCCO", 0),
    (16, "MOZAMBIQUE", 0), (17, "PERU", 1), (18, "CHINA", 2),
    (19, "ROMANIA", 3), (20, "SAUDI ARABIA", 4), (21, "VIETNAM", 2),
    (22, "RUSSIA", 3), (23, "UNITED KINGDOM", 3), (24, "UNITED STATES", 1),
]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
CONTAINERS_1 = ["SM", "MED", "LG", "JUMBO", "WRAP"]
CONTAINERS_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]
TYPES_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPES_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPES_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive",
    "orange", "orchid", "pale", "papaya", "peach", "peru", "pink", "plum",
    "powder", "puff", "purple", "red", "rose", "rosy", "royal", "saddle",
    "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow",
    "spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet",
    "wheat", "white", "yellow",
]
NOISE_WORDS = [
    "carefully", "quickly", "furiously", "slyly", "blithely", "even",
    "regular", "final", "ironic", "pending", "bold", "express", "special",
    "silent", "daring", "unusual", "idle", "busy", "packages", "deposits",
    "requests", "accounts", "instructions", "theodolites", "platelets",
    "foxes", "pinto", "beans", "asymptotes", "dependencies", "waters",
    "sleep", "haggle", "nag", "boost", "cajole", "detect", "wake", "sauternes",
]
