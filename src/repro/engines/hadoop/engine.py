"""The Hadoop 1.2.1 MapReduce engine, simulated.

Models exactly the behaviours the paper contrasts with DataMPI:

* **Heavy job control** — JobClient stages the job to the JobTracker,
  TaskTrackers pick tasks up on heartbeats, and *every* task launch pays
  a JVM spawn (per wave — the "process management overhead" the paper's
  JOB3 breakdown highlights).
* **Coarse-grained shuffle** — map tasks sort/spill their output to
  local disk (io.sort.mb buffer), merge the spills, and reducers *copy*
  each finished map's partition over HTTP after the map completes;
  reducers launch after a slow-start fraction of maps are done.
* **Separate map/reduce slots** — 4 + 4 per node, as configured on the
  paper's testbed.

The functional work (operator pipelines, partition/sort/group/reduce) is
the shared code in :mod:`repro.engines.base`; this module adds *when*
and *at what cost* through the discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import Configuration, FAILURE_RATE
from repro.common.kv import KeyValue
from repro.common.units import MB
from repro.engines.base import (
    Engine,
    JobTiming,
    PlanResult,
    TaskTiming,
    TaggedSplit,
    assign_splits_locality,
    close_job_span,
    close_task_span,
    hdfs_write_pipeline,
    decide_num_reducers,
    expand_job_splits,
    final_sorted_rows,
    job_input_scale,
    load_broadcast_tables,
    open_job_span,
    open_task_span,
    record_job_metrics,
    run_reducer_functionally,
    scan_split,
    write_task_output,
)
from repro.exec.mapper import ExecMapper
from repro.exec.operators import Collector
from repro.obs import Tracer, get_metrics
from repro.plan.physical import MRJob, PhysicalPlan
from repro.simulate import Cluster, ClusterSpec, MetricsSampler, Simulator, SlotPool
from repro.storage.hdfs import HDFS


@dataclass
class HadoopCosts:
    """Calibrated latencies/rates for the Hadoop engine (testbed §V-A)."""

    job_submit: float = 2.2  # JobClient staging + JobTracker admission
    schedule_delay: float = 1.4  # TaskTracker heartbeat pickup, per wave start
    task_jvm_start: float = 1.3  # child JVM spawn per task attempt
    job_cleanup: float = 0.8  # commit + JobTracker retirement
    cpu_map_ms_per_mb: float = 35.0  # deserialize + operator pipeline, text-rate
    cpu_reduce_ms_per_mb: float = 14.0
    cpu_sort_ms_per_mb: float = 7.0  # per merge pass
    cpu_orc_decode_ms_per_mb: float = 14.0  # extra per encoded MB (decompression)
    io_sort_mb: float = 100.0  # map-output buffer before spill (logical MB)
    shuffle_memory_mb: float = 450.0  # reducer in-memory shuffle budget (logical MB)
    slowstart_fraction: float = 0.05  # maps done before reducers launch
    batch_target_mb: float = 8.0  # compute/I-O interleave granularity
    min_batch_rows: int = 200
    # mapred.compress.map.output=true: intermediate data shrinks to this
    # fraction on disk/wire at a CPU cost per (uncompressed) MB
    compress_ratio: float = 0.40
    cpu_compress_ms_per_mb: float = 4.0
    cpu_decompress_ms_per_mb: float = 1.5
    parallel_copies: int = 5  # mapred.reduce.parallel.copies


class _MapOutputCollector(Collector):
    """Per-map collector bucketing pairs by reduce partition."""

    def __init__(self, num_partitions: int):
        self.partitions: List[List[KeyValue]] = [[] for _ in range(num_partitions)]
        self.partition_bytes: List[int] = [0] * num_partitions
        self.total_bytes = 0

    def collect(self, partition: int, pair: KeyValue) -> None:
        self.partitions[partition].append(pair)
        size = pair.serialized_size()
        self.partition_bytes[partition] += size
        self.total_bytes += size


class _JobState:
    """Mutable coordination state shared by a job's task processes."""

    def __init__(self, sim: Simulator, num_maps: int, num_reducers: int):
        self.sim = sim
        self.maps_done = 0
        self.num_maps = num_maps
        self.num_reducers = num_reducers
        # map_index -> (node, collector, scale); filled as maps finish
        self.map_outputs: Dict[int, Tuple[int, _MapOutputCollector, float]] = {}
        self.map_completion_events: List = []  # one Event per map
        self.slowstart_event = sim.event()
        self.all_maps_event = sim.event()
        self.last_copy_done = 0.0
        self.compress_ratio = 1.0  # <1 when mapred.compress.map.output

    def map_finished(self, map_index: int, node: int,
                     collector: _MapOutputCollector, scale: float) -> None:
        self.map_outputs[map_index] = (node, collector, scale)
        self.maps_done += 1
        self.map_completion_events[map_index].trigger(None)
        if not self.slowstart_event.triggered:
            self.slowstart_event.trigger(None)
        if self.maps_done == self.num_maps and not self.all_maps_event.triggered:
            self.all_maps_event.trigger(None)


class HadoopEngine(Engine):
    name = "hadoop"

    def __init__(
        self,
        hdfs: HDFS,
        spec: Optional[ClusterSpec] = None,
        costs: Optional[HadoopCosts] = None,
    ):
        self.hdfs = hdfs
        self.spec = spec or ClusterSpec()
        self.costs = costs or HadoopCosts()

    # -- public API ---------------------------------------------------------
    def run_plan(
        self,
        plan: PhysicalPlan,
        conf: Optional[Configuration] = None,
        with_metrics: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> PlanResult:
        conf = conf or Configuration()
        sim = Simulator()
        tracer = tracer or Tracer()
        tracer.set_clock(lambda: sim.now)
        cluster = Cluster(sim, self.spec, metrics=get_metrics())
        reduce_slots = [
            SlotPool(sim, self.spec.slots_per_node, f"{node.name}.rslots")
            for node in cluster.workers
        ]
        sampler = MetricsSampler(cluster) if with_metrics else None
        if sampler:
            sampler.start()
        timings: List[JobTiming] = []

        def driver():
            for index, job in enumerate(plan.jobs):
                is_last = index == len(plan.jobs) - 1
                timing = yield from self._run_job(
                    sim, cluster, reduce_slots, job, conf, is_last, tracer
                )
                timings.append(timing)

        sim.spawn(driver(), "hive-driver")
        sim.run()
        if sampler:
            sampler.stop()
        rows = final_sorted_rows(plan, self.hdfs)
        return PlanResult(
            rows=rows,
            schema=plan.output_schema,
            jobs=timings,
            total_seconds=sim.now,
            engine=self.name,
            metrics=sampler.samples if sampler else [],
            spans=[timing.span for timing in timings if timing.span is not None],
        )

    # -- job execution -----------------------------------------------------------
    def _run_job(self, sim: Simulator, cluster: Cluster,
                 reduce_slots: List[SlotPool], job: MRJob,
                 conf: Configuration, is_last: bool, tracer: Tracer):
        costs = self.costs
        hdfs = self.hdfs
        workers = cluster.workers
        splits = expand_job_splits(job, hdfs)
        small_tables = load_broadcast_tables(job, hdfs)
        scale = job_input_scale(job, hdfs)
        total_bytes = sum(s.logical_bytes for s in splits)
        num_reducers = decide_num_reducers(
            job, len(splits), total_bytes, conf, is_last, self.spec.total_slots
        )
        timing = JobTiming(
            job_id=job.job_id,
            submitted=sim.now,
            num_maps=len(splits),
            num_reducers=num_reducers,
        )
        timing.span = open_job_span(tracer, self.name, job, sim.now)

        # JobClient -> JobTracker staging
        yield sim.timeout(costs.job_submit)

        if not splits:
            write_task_output(job, hdfs, 0, [], scale)
            timing.first_task_started = sim.now
            timing.shuffle_done = sim.now
            yield sim.timeout(costs.job_cleanup)
            timing.finished = sim.now
            close_job_span(timing)
            record_job_metrics(self.name, timing, self.spec.total_slots)
            return timing

        state = _JobState(sim, len(splits), num_reducers)
        state.map_completion_events = [sim.event() for _ in splits]
        assignment = assign_splits_locality(splits, len(workers))
        first_start_event = sim.event()

        failure_rate = conf.get_float(FAILURE_RATE, 0.0)
        compress = conf.get_bool("mapred.compress.map.output", False)
        state.compress_ratio = self.costs.compress_ratio if compress else 1.0
        map_processes = [
            sim.spawn(
                self._map_task(
                    sim, cluster, job, state, timing, index, tagged,
                    assignment[index], small_tables, num_reducers,
                    first_start_event, scale, failure_rate,
                ),
                f"{job.job_id}-m{index}",
            )
            for index, tagged in enumerate(splits)
        ]

        reduce_processes = []
        if not job.is_map_only:
            for partition in range(num_reducers):
                node_index = partition % len(workers)
                reduce_processes.append(
                    sim.spawn(
                        self._reduce_task(
                            sim, cluster, reduce_slots, job, state, timing,
                            partition, node_index, small_tables, scale,
                        ),
                        f"{job.job_id}-r{partition}",
                    )
                )

        yield sim.all_of(map_processes + reduce_processes)
        if job.is_map_only:
            timing.shuffle_done = sim.now
        else:
            timing.shuffle_done = max(timing.shuffle_done, state.last_copy_done)
        yield sim.timeout(costs.job_cleanup)
        timing.finished = sim.now
        timing.shuffle_logical_bytes = sum(
            collector.total_bytes * map_scale
            for _node, collector, map_scale in state.map_outputs.values()
        )
        yield first_start_event  # already triggered by the first map
        timing.first_task_started = first_start_event.value
        close_job_span(timing)
        record_job_metrics(self.name, timing, self.spec.total_slots)
        return timing

    # -- map task -------------------------------------------------------------------
    def _map_task(self, sim: Simulator, cluster: Cluster, job: MRJob,
                  state: _JobState, timing: JobTiming, index: int,
                  tagged: TaggedSplit, node_index: int, small_tables,
                  num_reducers: int, first_start_event, job_scale: float,
                  failure_rate: float = 0.0):
        costs = self.costs
        node = cluster.workers[node_index]
        task = TaskTiming(task_id=f"m{index}", kind="map", node=node_index,
                          scheduled=sim.now)
        timing.tasks.append(task)
        open_task_span(timing, task)

        yield node.slots.acquire()
        node.memory.allocate(self.spec.heap_per_task)  # child JVM footprint
        try:
            # heartbeat pickup + JVM spawn
            yield sim.timeout(costs.schedule_delay)
            yield from node.compute(costs.task_jvm_start)
            task.started = sim.now
            if not first_start_event.triggered:
                first_start_event.trigger(sim.now)

            rows, bytes_to_read = scan_split(tagged)
            local = node_index in [h % len(cluster.workers) for h in tagged.split.hosts]

            # fault injection: failed attempts burn real (partial) work and
            # pay the re-launch machinery; MapReduce retries per task (its
            # fault-tolerance advantage over plain MPI jobs)
            for fraction in _failed_attempt_fractions(
                failure_rate, f"{job.job_id}-m{index}"
            ):
                partial = bytes_to_read * fraction
                if local:
                    yield from node.disk_read(partial)
                else:
                    source = cluster.workers[
                        tagged.split.hosts[0] % len(cluster.workers)
                    ]
                    yield from source.disk_read(partial)
                    yield from cluster.network_transfer(source, node, partial)
                yield from node.compute(
                    partial / MB * costs.cpu_map_ms_per_mb / 1000.0
                )
                yield sim.timeout(costs.schedule_delay)  # TaskTracker re-run
                yield from node.compute(costs.task_jvm_start)
            collector = _MapOutputCollector(num_reducers)
            mapper = ExecMapper(
                tagged.operators,
                collector=collector if not job.is_map_only else None,
                num_partitions=num_reducers,
                small_tables=small_tables,
            )

            scale = tagged.split.scale
            orc = tagged.split.stored.__class__.__name__.startswith("Orc")
            batches = _make_batches(rows, bytes_to_read, costs)
            spilled_mark = 0.0
            spills = 0
            for batch_rows, batch_bytes in batches:
                # read this chunk (locally or from a replica over the net)
                if local:
                    yield from node.disk_read(batch_bytes)
                else:
                    source = cluster.workers[tagged.split.hosts[0] % len(cluster.workers)]
                    yield from source.disk_read(batch_bytes)
                    yield from cluster.network_transfer(source, node, batch_bytes)
                cpu_ms = batch_bytes / MB * costs.cpu_map_ms_per_mb
                if orc:
                    cpu_ms += batch_bytes / MB * costs.cpu_orc_decode_ms_per_mb
                yield from node.compute(cpu_ms / 1000.0)
                mapper.process_batch(batch_rows)
                emitted = collector.total_bytes * scale
                task.collect_samples.append((sim.now, collector.total_bytes))
                # spill when the in-memory map-output buffer overflows
                while emitted - spilled_mark > costs.io_sort_mb * MB:
                    spill_bytes = costs.io_sort_mb * MB
                    spilled_mark += spill_bytes
                    spills += 1
                    spill_span = (
                        task.span.start_child("spill", sim.now, category="spill",
                                              bytes=spill_bytes, node=node_index)
                        if task.span is not None else None
                    )
                    get_metrics().counter("hadoop.spill.bytes").add(spill_bytes)
                    cpu_ms = spill_bytes / MB * costs.cpu_sort_ms_per_mb
                    if state.compress_ratio < 1.0:
                        cpu_ms += spill_bytes / MB * costs.cpu_compress_ms_per_mb
                    yield from node.compute(cpu_ms / 1000.0)
                    yield from node.disk_write(spill_bytes * state.compress_ratio)
                    if spill_span is not None:
                        spill_span.finish(sim.now)

            result = mapper.close()
            emitted = collector.total_bytes * scale
            ratio = state.compress_ratio
            final_spill = emitted - spilled_mark
            if final_spill > 0 and not job.is_map_only:
                cpu_ms = final_spill / MB * costs.cpu_sort_ms_per_mb
                if ratio < 1.0:
                    cpu_ms += final_spill / MB * costs.cpu_compress_ms_per_mb
                yield from node.compute(cpu_ms / 1000.0)
                yield from node.disk_write(final_spill * ratio)
            if spills > 0 and not job.is_map_only:
                # merge the spill files into the final map output
                yield from node.disk_read(emitted * ratio)
                yield from node.compute(emitted / MB * costs.cpu_sort_ms_per_mb / 1000.0)
                yield from node.disk_write(emitted * ratio)

            if job.is_map_only:
                data_file = write_task_output(
                    job, self.hdfs, index, result.output_rows, job_scale,
                    writer_node=node_index,
                )
                yield from self._hdfs_write(cluster, node, data_file)

            task.rows_read = result.rows_read
            task.kv_pairs = result.kv_pairs
            task.kv_bytes = result.kv_bytes * scale
        finally:
            node.memory.free(self.spec.heap_per_task)
            node.slots.release()
        task.finished = sim.now
        close_task_span(task)
        state.map_finished(index, node_index, collector, tagged.split.scale)

    # -- reduce task -----------------------------------------------------------------
    def _reduce_task(self, sim: Simulator, cluster: Cluster,
                     reduce_slots: List[SlotPool], job: MRJob, state: _JobState,
                     timing: JobTiming, partition: int, node_index: int,
                     small_tables, scale: float):
        costs = self.costs
        node = cluster.workers[node_index]
        task = TaskTiming(task_id=f"r{partition}", kind="reduce", node=node_index,
                          scheduled=sim.now)
        timing.tasks.append(task)
        open_task_span(timing, task)

        yield state.slowstart_event  # launch after the first maps complete
        yield reduce_slots[node_index].acquire()
        node.memory.allocate(self.spec.heap_per_task)  # reduce JVM footprint
        try:
            yield sim.timeout(costs.schedule_delay)
            yield from node.compute(costs.task_jvm_start)
            task.started = sim.now

            # copy phase: mapred.reduce.parallel.copies concurrent fetcher
            # threads pull each map's partition as the map completes
            shuffle_span = (
                task.span.start_child("shuffle", sim.now, category="shuffle",
                                      node=node_index)
                if task.span is not None else None
            )
            fetch_slots = SlotPool(sim, costs.parallel_copies,
                                   f"{task.task_id}.fetchers")
            copied_cell = [0.0]
            fetchers = [
                sim.spawn(
                    self._fetch_map_output(
                        sim, cluster, state, node, partition, map_index,
                        fetch_slots, copied_cell,
                    ),
                    f"{task.task_id}-f{map_index}",
                )
                for map_index in range(state.num_maps)
            ]
            yield sim.all_of(fetchers)
            copied = copied_cell[0]
            state.last_copy_done = max(state.last_copy_done, sim.now)
            task.kv_bytes = copied
            if shuffle_span is not None:
                shuffle_span.finish(sim.now, bytes=copied, maps=state.num_maps)

            # merge-sort phase
            if copied > 0:
                yield from node.compute(copied / MB * costs.cpu_sort_ms_per_mb / 1000.0)
                if copied > costs.shuffle_memory_mb * MB:
                    # read back spilled (compressed) runs
                    yield from node.disk_read(copied * state.compress_ratio)

            pairs: List[KeyValue] = []
            for map_index in range(state.num_maps):
                _node, collector, _scale = state.map_outputs[map_index]
                pairs.extend(collector.partitions[partition])
            output_rows = run_reducer_functionally(job, pairs, small_tables)

            yield from node.compute(copied / MB * costs.cpu_reduce_ms_per_mb / 1000.0)
            data_file = write_task_output(
                job, self.hdfs, partition, output_rows, scale, writer_node=node_index
            )
            yield from self._hdfs_write(cluster, node, data_file)
        finally:
            node.memory.free(self.spec.heap_per_task)
            reduce_slots[node_index].release()
        task.finished = sim.now
        close_task_span(task)

    def _fetch_map_output(self, sim: Simulator, cluster: Cluster,
                          state: _JobState, node, partition: int,
                          map_index: int, fetch_slots: SlotPool,
                          copied_cell: List[float]):
        """One fetcher: wait for the map, grab a copier slot, pull the
        partition (disk at the source, network, decompress), spill past
        the in-memory shuffle budget."""
        costs = self.costs
        yield state.map_completion_events[map_index]
        source_index, collector, map_scale = state.map_outputs[map_index]
        raw_chunk = collector.partition_bytes[partition] * map_scale
        chunk = raw_chunk * state.compress_ratio
        if chunk <= 0:
            return
        yield fetch_slots.acquire()
        try:
            source = cluster.workers[source_index]
            yield from source.disk_read(chunk)
            yield from cluster.network_transfer(source, node, chunk)
            if state.compress_ratio < 1.0:
                yield from node.compute(
                    raw_chunk / MB * costs.cpu_decompress_ms_per_mb / 1000.0
                )
            copied_cell[0] += raw_chunk
            if copied_cell[0] > costs.shuffle_memory_mb * MB:
                yield from node.disk_write(chunk)  # overflow to disk
        finally:
            fetch_slots.release()

    # -- HDFS write pipeline -------------------------------------------------------
    def _hdfs_write(self, cluster: Cluster, node, data_file):
        yield from hdfs_write_pipeline(cluster, node, data_file)



_MAX_TASK_ATTEMPTS = 4  # mapred.map.max.attempts


def _failed_attempt_fractions(rate: float, seed: str):
    """Deterministic per-task failure draw: the fractions of work done
    before each failed attempt died (empty list when nothing fails)."""
    if rate <= 0:
        return []
    import random

    rng = random.Random(f"fail:{seed}")
    fractions = []
    while len(fractions) < _MAX_TASK_ATTEMPTS - 1 and rng.random() < rate:
        fractions.append(rng.uniform(0.1, 0.9))
    return fractions


def _make_batches(rows, total_bytes: float, costs: HadoopCosts):
    """Chunk a split's rows into (rows, bytes) batches for interleaved
    read/compute; byte budget follows the batch target."""
    if not rows:
        if total_bytes > 0:
            return [([], total_bytes)]
        return []
    target = costs.batch_target_mb * MB
    num_batches = max(1, int(total_bytes / target))
    batch_rows = max(costs.min_batch_rows, (len(rows) + num_batches - 1) // num_batches)
    batches = []
    for start in range(0, len(rows), batch_rows):
        chunk = rows[start : start + batch_rows]
        batches.append((chunk, total_bytes * len(chunk) / len(rows)))
    return batches
