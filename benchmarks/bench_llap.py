"""LLAP benchmark: persistent daemons + caches vs per-job engines.

A repeated-query TPC-H workload (the interactive / dashboard pattern
LLAP targets) runs on the three cluster engines.  Reported per engine:

* **cold** — first pass over the distinct queries (llap pays its
  one-time daemon spawn here);
* **warm total** — the measured repeated workload, in simulated
  seconds (llap serves repeats from the result cache and re-scans
  from the decoded-stripe cache);
* **mean per-job startup** — hadoop pays JVM spin-up per job, llap
  dispatches fragments into already-running daemons.

Every run cross-checks correctness: each query's rows on every engine
must be byte-identical to the local reference executor.

Standalone (the check.sh gate runs it with ``CHECK_LLAP_FULL=1``)::

    python benchmarks/bench_llap.py [--smoke] [--output OUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))  # benchhelpers
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # runnable without an installed package
    sys.path.insert(0, _SRC)

from benchhelpers import results_path  # noqa: E402

from repro import connect  # noqa: E402
from repro.bench import fresh_tpch  # noqa: E402
from repro.engines.base import compare_result_rows  # noqa: E402
from repro.workloads.tpch import tpch_query  # noqa: E402

# label -> (engine, engine_config); llap-nocache disables the result
# cache so the warm pass exercises fragment dispatch + the stripe cache
VARIANTS = (
    ("hadoop", "hadoop", None),
    ("datampi", "datampi", None),
    ("llap", "llap", None),
    ("llap-nocache", "llap", {"result_cache": False}),
)


def config(smoke: bool):
    if smoke:
        return {"sf": 1, "sample": 800, "queries": (1, 6), "repeats": 3}
    return {"sf": 5, "sample": 3000, "queries": (1, 3, 6, 12), "repeats": 4}


def _fresh(cfg):
    return fresh_tpch(cfg["sf"], lineitem_sample=cfg["sample"],
                      format_name="orc")


def reference_rows(cfg):
    hdfs, metastore = _fresh(cfg)
    rows = {}
    with connect(engine="local", hdfs=hdfs, metastore=metastore) as session:
        for query in cfg["queries"]:
            rows[query] = session.query(tpch_query(query, cfg["sf"])).rows
    return rows


def run_engine(engine: str, cfg, oracle, engine_config=None):
    """Cold pass + measured repeated workload on one engine."""
    hdfs, metastore = _fresh(cfg)
    with connect(engine=engine, hdfs=hdfs, metastore=metastore,
                 engine_config=engine_config) as session:
        cold_seconds = 0.0
        startups = []
        for query in cfg["queries"]:
            result = session.query(tpch_query(query, cfg["sf"]))
            cold_seconds += result.simulated_seconds
            if not compare_result_rows(oracle[query], result.rows,
                                       ordered=True):
                raise AssertionError(
                    f"{engine}: Q{query} cold rows diverged from local")

        warm_seconds = 0.0
        result_hits = 0
        for _round in range(cfg["repeats"]):
            for query in cfg["queries"]:
                result = session.query(tpch_query(query, cfg["sf"]))
                warm_seconds += result.simulated_seconds
                result_hits += int(result.cache_hit)
                if result.execution is not None:
                    startups.extend(j.startup for j in result.execution.jobs)
                if not compare_result_rows(oracle[query], result.rows,
                                           ordered=True):
                    raise AssertionError(
                        f"{engine}: Q{query} warm rows diverged from local")

        caches = session.caches()
        columnar = caches["columnar"]
    return {
        "cold_seconds": round(cold_seconds, 3),
        "warm_total_seconds": round(warm_seconds, 3),
        "mean_job_startup": round(sum(startups) / len(startups), 3)
        if startups else 0.0,
        "result_cache_hits": result_hits,
        "columnar_cache_hits": sum(s["hits"] for s in columnar.values()),
        "columnar_cache_misses": sum(s["misses"] for s in columnar.values()),
    }


def run(cfg):
    oracle = reference_rows(cfg)
    report = {"config": {k: list(v) if isinstance(v, tuple) else v
                         for k, v in cfg.items()}}
    for label, engine, engine_config in VARIANTS:
        report[label] = run_engine(engine, cfg, oracle, engine_config)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small dataset + fewer repeats (CI gate)")
    parser.add_argument("--output", default=results_path("BENCH_llap.json"),
                        help="where to write the JSON report")
    parser.add_argument("--guard-seconds", type=float, default=0.0,
                        metavar="S",
                        help="fail if the whole run takes longer than S "
                             "wall-clock seconds (0 = no guard)")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = run(config(args.smoke))
    elapsed = time.perf_counter() - started
    report["wall_clock_seconds"] = round(elapsed, 3)

    header = (f"{'engine':>13} {'cold':>9} {'warm total':>11} "
              f"{'job startup':>12} {'result hits':>12} {'stripe h/m':>11}")
    print(header)
    for engine, _name, _config in VARIANTS:
        cell = report[engine]
        print(f"{engine:>13} {cell['cold_seconds']:>9.1f} "
              f"{cell['warm_total_seconds']:>11.1f} "
              f"{cell['mean_job_startup']:>12.2f} "
              f"{cell['result_cache_hits']:>12} "
              f"{cell['columnar_cache_hits']:>5}/"
              f"{cell['columnar_cache_misses']}")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")

    # shape checks: the two acceptance properties of the LLAP design.
    # llap-nocache executes every warm query for real, so its per-job
    # startup measures fragment dispatch into live daemons.
    llap, hadoop = report["llap"], report["hadoop"]
    ok = True
    if not report["llap-nocache"]["mean_job_startup"] <= hadoop["mean_job_startup"]:
        print("FAIL: warm llap fragment dispatch did not undercut hadoop "
              "per-job startup", file=sys.stderr)
        ok = False
    if not report["llap-nocache"]["columnar_cache_hits"] > 0:
        print("FAIL: warm llap re-scans never hit the decoded-stripe cache",
              file=sys.stderr)
        ok = False
    floor = 3.0
    for rival_name in ("hadoop", "datampi"):
        rival = report[rival_name]
        speedup = rival["warm_total_seconds"] / max(
            llap["warm_total_seconds"], 1e-9)
        if speedup < floor:
            print(f"FAIL: warm llap only {speedup:.1f}x faster than "
                  f"{rival_name} on the repeated workload (need >={floor}x)",
                  file=sys.stderr)
            ok = False
    if args.guard_seconds and elapsed > args.guard_seconds:
        print(f"FAIL: run took {elapsed:.1f}s wall-clock "
              f"(guard {args.guard_seconds:.0f}s)", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
