#!/usr/bin/env python
"""Exploring the DataMPI engine's tuning knobs (paper §IV-C/D).

Shows the three knobs the paper introduces on top of Hive:

* ``datampi.shuffle.nonblocking``  — blocking vs non-blocking shuffle
  engine (Fig 6);
* ``hive.datampi.memusedpercent``  — heap split between library buffers
  and the application (Fig 8 left);
* ``hive.datampi.parallelism``     — default vs enhanced (#A = #O)
  reduce parallelism against data skew (Fig 11 / §IV-D).

Run with:  python examples/tuning_knobs.py
"""

from repro.bench import fresh_hibench, fresh_tpch, run_hibench_query, run_script
from repro.workloads.tpch import tpch_query


def main():
    print("building HiBench 20 GB (Zipfian visits)...")
    hdfs, metastore = fresh_hibench(20, sample_uservisits=12000)

    print("\n1) blocking vs non-blocking shuffle (HiBench AGGREGATE):")
    for label, flag in (("non-blocking", True), ("blocking", False)):
        run = run_hibench_query(
            "datampi", hdfs, metastore, "aggregate",
            conf={"datampi.shuffle.nonblocking": flag},
        )
        print(f"   {label:<13} {run.breakdown.total:7.1f}s")

    print("\n2) hive.datampi.memusedpercent sweep (HiBench JOIN):")
    for percent in (0.1, 0.4, 0.9):
        run = run_hibench_query(
            "datampi", hdfs, metastore, "join",
            conf={"hive.datampi.memusedpercent": percent},
        )
        note = {0.1: "spills to disk", 0.4: "the paper's sweet spot",
                0.9: "GC pressure"}[percent]
        print(f"   percent={percent:<4} {run.breakdown.total:7.1f}s   ({note})")

    print("\n3) parallelism strategy on a skewed query (TPC-H Q9, 40 GB ORC):")
    hdfs, metastore = fresh_tpch(40, lineitem_sample=6000, format_name="orc")
    for mode in ("default", "enhanced"):
        run = run_script(
            "datampi", hdfs, metastore, tpch_query(9, 40),
            conf={"hive.datampi.parallelism": mode},
        )
        print(f"   {mode:<9} {run.breakdown.total:7.1f}s")


if __name__ == "__main__":
    main()
