"""Fig 1 — motivation: Hive-on-Hadoop job time breakdown.

Paper finding (§III): over a 20 GB HiBench data set, the Map-Shuffle
section averages >50 % of a MapReduce job and startup ~5 %, motivating
the attack on data movement and job startup.
"""

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_hibench, run_hibench_query
from repro.reporting.breakdown import format_breakdown_table
from repro.reporting.figures import write_csv


def _experiment():
    hdfs, metastore = fresh_hibench(20, sample_uservisits=16000)
    breakdowns = {}
    for which in ("aggregate", "join"):
        run = run_hibench_query("hadoop", hdfs, metastore, which)
        breakdowns[f"hibench-{which}"] = run.breakdown
    return breakdowns


def test_fig01_motivation_breakdown(benchmark):
    breakdowns = run_once(benchmark, _experiment)
    emit(format_breakdown_table(breakdowns))

    rows = []
    total_ms_fraction = []
    for label, b in breakdowns.items():
        for job in b.jobs:
            rows.append(
                [label, job.job_id, round(job.startup, 2), round(job.map_shuffle, 2),
                 round(job.others, 2)]
            )
            total_ms_fraction.append(job.map_shuffle / max(1e-9, job.total))
    write_csv(results_path("fig01_motivation.csv"),
              ["query", "job", "startup_s", "map_shuffle_s", "others_s"], rows)

    average_ms = sum(total_ms_fraction) / len(total_ms_fraction)
    emit(f"average Map-Shuffle share across jobs: {100 * average_ms:.1f}% "
         f"(paper: >50% on average)")
    for label, b in breakdowns.items():
        startup_share = b.startup / max(1e-9, b.job_total)
        emit(f"{label}: startup share {100 * startup_share:.1f}% (paper: ~5%)")
    # shape assertions: data movement dominates, startup is small but real
    assert average_ms > 0.35
    assert all(b.startup / b.job_total < 0.25 for b in breakdowns.values())
