"""Tests for the DataMPI engine: O/A structure, knobs, paper behaviours."""

import pytest

from repro import connect
from repro.common.config import Configuration
from repro.core.driver import Driver
from repro.engines.base import compare_result_rows
from repro.engines.datampi import DataMPICosts, DataMPIEngine


GROUP_QUERY = "SELECT grp, count(*) c, sum(val) s FROM facts GROUP BY grp ORDER BY grp"


@pytest.fixture()
def sessions(big_warehouse):
    hdfs, metastore = big_warehouse
    return (
        connect(engine="local", hdfs=hdfs, metastore=metastore),
        connect(engine="datampi", hdfs=hdfs, metastore=metastore),
    )


class TestCorrectness:
    def test_matches_reference(self, sessions):
        local, datampi = sessions
        assert compare_result_rows(
            local.query(GROUP_QUERY).rows, datampi.query(GROUP_QUERY).rows, ordered=True
        )

    def test_blocking_style_same_rows(self, big_warehouse):
        hdfs, metastore = big_warehouse
        local = connect(engine="local", hdfs=hdfs, metastore=metastore)
        expected = local.query(GROUP_QUERY).rows
        conf = Configuration({"datampi.shuffle.nonblocking": "false"})
        blocking = connect(engine="datampi", hdfs=hdfs, metastore=metastore, conf=conf)
        assert compare_result_rows(expected, blocking.query(GROUP_QUERY).rows, ordered=True)

    def test_map_only(self, sessions):
        local, datampi = sessions
        sql = "SELECT k, val FROM facts WHERE grp = 'g3'"
        assert compare_result_rows(
            local.query(sql).rows, datampi.query(sql).rows, ordered=False
        )


class TestBipartiteStructure:
    def test_o_tasks_capped_by_slots(self, sessions):
        _local, datampi = sessions
        result = datampi.query(GROUP_QUERY)
        job = result.execution.jobs[0]
        o_tasks = [t for t in job.tasks if t.kind == "o"]
        assert len(o_tasks) == job.num_maps
        assert len(o_tasks) <= 28  # never more O tasks than slots

    def test_a_after_all_o(self, sessions):
        _local, datampi = sessions
        result = datampi.query(GROUP_QUERY)
        job = result.execution.jobs[0]
        o_end = max(t.finished for t in job.tasks if t.kind == "o")
        a_start = min(t.started for t in job.tasks if t.kind == "a")
        assert a_start >= o_end - 1e-6  # A tasks run only after every O task

    def test_shuffle_overlaps_o_phase(self, sessions):
        _local, datampi = sessions
        result = datampi.query(GROUP_QUERY)
        job = result.execution.jobs[0]
        # shuffle completes essentially when the O phase ends (overlap),
        # not after a separate copy phase
        o_end = max(t.finished for t in job.tasks if t.kind == "o")
        assert job.shuffle_done <= o_end + 1.0

    def test_send_events_recorded(self, sessions):
        _local, datampi = sessions
        result = datampi.query(GROUP_QUERY)
        job = result.execution.jobs[0]
        assert sum(len(t.send_events) for t in job.tasks if t.kind == "o") > 0


class TestPaperBehaviours:
    def test_faster_than_hadoop(self, big_warehouse):
        hdfs, metastore = big_warehouse
        hadoop = connect(engine="hadoop", hdfs=hdfs, metastore=metastore)
        datampi = connect(engine="datampi", hdfs=hdfs, metastore=metastore)
        hadoop_time = hadoop.query(GROUP_QUERY).execution.total_seconds
        datampi_time = datampi.query(GROUP_QUERY).execution.total_seconds
        assert datampi_time < hadoop_time

    def test_startup_shorter_than_hadoop(self, big_warehouse):
        hdfs, metastore = big_warehouse
        hadoop = connect(engine="hadoop", hdfs=hdfs, metastore=metastore)
        datampi = connect(engine="datampi", hdfs=hdfs, metastore=metastore)
        hadoop_startup = hadoop.query(GROUP_QUERY).execution.jobs[0].startup
        datampi_startup = datampi.query(GROUP_QUERY).execution.jobs[0].startup
        assert datampi_startup < hadoop_startup

    def test_blocking_slower_than_nonblocking(self, big_warehouse):
        hdfs, metastore = big_warehouse
        times = {}
        for label, flag in (("nb", "true"), ("blk", "false")):
            conf = Configuration({"datampi.shuffle.nonblocking": flag})
            session = connect(engine="datampi", hdfs=hdfs, metastore=metastore, conf=conf)
            times[label] = session.query(GROUP_QUERY).execution.total_seconds
        assert times["blk"] >= times["nb"]

    def test_extreme_memory_percent_hurts(self, big_warehouse):
        hdfs, metastore = big_warehouse
        times = {}
        for percent in ("0.4", "0.95"):
            conf = Configuration({"hive.datampi.memusedpercent": percent})
            session = connect(engine="datampi", hdfs=hdfs, metastore=metastore, conf=conf)
            times[percent] = session.query(GROUP_QUERY).execution.total_seconds
        assert times["0.95"] > times["0.4"]

    def test_enhanced_parallelism_changes_reducers(self, big_warehouse):
        hdfs, metastore = big_warehouse
        counts = {}
        for mode in ("default", "enhanced"):
            conf = Configuration({"hive.datampi.parallelism": mode})
            session = connect(engine="datampi", hdfs=hdfs, metastore=metastore, conf=conf)
            result = session.query(GROUP_QUERY)
            jobs = result.execution.jobs
            counts[mode] = (jobs[0].num_reducers, jobs[-1].num_reducers)
        # enhanced: #A = #O on intermediate stages, 1 on the last stage
        assert counts["enhanced"][1] == 1
        assert counts["enhanced"][0] >= counts["default"][0]

    def test_deterministic(self, big_warehouse_factory):
        """Identically seeded warehouses give identical simulated times."""
        times = []
        for _ in range(2):
            hdfs, metastore = big_warehouse_factory()
            session = connect(engine="datampi", hdfs=hdfs, metastore=metastore)
            times.append(session.query(GROUP_QUERY).execution.total_seconds)
        assert times[0] == times[1]


class TestCostKnobs:
    def test_send_setup_slows_shuffle(self, big_warehouse):
        hdfs, metastore = big_warehouse
        fast = DataMPIEngine(hdfs, costs=DataMPICosts(send_setup_seconds=0.0))
        slow = DataMPIEngine(hdfs, costs=DataMPICosts(send_setup_seconds=0.05))
        fast_time = Driver(hdfs, metastore, fast).query(GROUP_QUERY).execution.total_seconds
        slow_time = Driver(hdfs, metastore, slow).query(GROUP_QUERY).execution.total_seconds
        assert slow_time >= fast_time

    def test_gc_factor_shape(self, big_warehouse):
        hdfs, _metastore = big_warehouse
        engine = DataMPIEngine(hdfs)
        low = engine._gc_factor(0.1)
        mid = engine._gc_factor(0.4)
        high = engine._gc_factor(0.95)
        assert low < mid < high
        assert high <= 2.5  # capped

    def test_partition_buffer_scales_with_percent(self, big_warehouse):
        hdfs, _metastore = big_warehouse
        engine = DataMPIEngine(hdfs)
        assert engine._partition_buffer_bytes(0.05) < engine._partition_buffer_bytes(0.4)
        assert engine._partition_buffer_bytes(0.4) == pytest.approx(512 * 1024)
        assert engine._partition_buffer_bytes(0.99) <= 2 * 1024 * 1024
