"""Shared configuration for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper.
Simulated seconds are printed (and written as CSV under ``results/``);
pytest-benchmark records the wall-clock cost of regenerating each
artifact.  Keep ``-s`` in mind: run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables inline.
"""

import os
import sys

# allow `from benchhelpers import ...` inside the benchmark modules
sys.path.insert(0, os.path.dirname(__file__))


def pytest_configure(config):
    os.makedirs(results_dir(), exist_ok=True)


def results_dir() -> str:
    return os.path.join(os.path.dirname(os.path.dirname(__file__)), "results")
