"""Hive Driver: statement execution on top of a pluggable engine.

Responsibilities (Hive's Driver + DDL task equivalents):

* parse multi-statement scripts;
* DDL — ``CREATE TABLE``, ``DROP TABLE``, ``SET``;
* DML/queries — analyze, physically compile, run the job DAG on the
  session's engine, register CTAS outputs, clean temp directories;
* bookkeeping — per-statement :class:`QueryResult` with the engine's job
  timings plus the (modeled) query-compile time that the paper's Fig 10
  breakdown reports as the "compile" section.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.config import (
    Configuration,
    EXEC_VECTORIZED,
    HIVE_FILE_FORMAT,
    HIVE_MAPJOIN_SMALLTABLE_BYTES,
    RESULT_CACHE_ENABLED,
    RESULT_CACHE_ENTRIES,
    RETRY_FALLBACK,
    SKEWJOIN_FANOUT,
    SKEWJOIN_THRESHOLD,
    STATS_AUTO,
    STATS_ENABLED,
)
from repro.common.errors import RetryExhaustedError, SemanticError
from repro.common.rows import LAYOUT_VERSION, Schema, Column, DataType
from repro.engines.base import Engine, PlanResult
from repro.obs import Span
from repro.plan.analyzer import Analyzer
from repro.plan.optimizer import prune_columns
from repro.plan.physical import PhysicalCompiler, PhysicalPlan
from repro.sql import ast, parse_script
from repro.stats.model import collect_table_stats
from repro.storage.hdfs import DEFAULT_BLOCK_SIZE, HDFS
from repro.storage.metastore import Metastore

# modeled HiveQL compile latency (identical for both engines: the
# compiler is shared; §IV-A principle 1)
COMPILE_BASE_SECONDS = 0.6
COMPILE_PER_JOB_SECONDS = 0.15


@dataclass
class QueryResult:
    """Outcome of one statement.

    ``statement`` names what ran: ``'select'``, ``'create'``, ``'ctas'``,
    ``'insert'``, ``'drop'``, ``'set'``, ``'analyze'`` or ``'explain'``.
    Behaves like a cursor over its result rows: iterate it directly,
    ``len()`` it, or use :meth:`fetchall` / :meth:`to_pydict`.
    ``trace`` holds the statement's span tree (``query`` → ``compile`` →
    ``job`` → ``task``/``shuffle``/``spill``) in simulated seconds from
    statement start; ``None`` for statements that execute nothing
    (``SET``, DDL).

    ``engine`` names the engine that produced the rows (the fallback
    engine when graceful degradation kicked in; ``None`` for host-only
    statements).  ``cache_hit`` is ``True`` when the rows were served
    from the driver's result cache without touching the cluster — the
    statement then costs ~0 simulated seconds and ``execution`` is
    ``None``.
    """

    statement: str  # 'select' | 'create' | 'ctas' | 'insert' | 'drop' | 'set' | 'explain'
    rows: List[tuple] = field(default_factory=list)
    schema: Optional[Schema] = None
    plan: Optional[PhysicalPlan] = None
    execution: Optional[PlanResult] = None
    compile_seconds: float = 0.0
    trace: Optional[Span] = None
    cache_hit: bool = False
    engine: Optional[str] = None

    @property
    def simulated_seconds(self) -> float:
        run = self.execution.total_seconds if self.execution else 0.0
        return self.compile_seconds + run

    # -- fault/recovery visibility ------------------------------------------
    @property
    def attempts(self) -> int:
        """Task executions across the query (failures + successes)."""
        return self.execution.total_attempts if self.execution else 0

    @property
    def restarts(self) -> int:
        """Whole-job resubmissions (DataMPI gang recovery)."""
        if self.execution is None:
            return 0
        return sum(job.restarts for job in self.execution.jobs)

    @property
    def fault_events(self) -> List[object]:
        """Injected fault edges delivered while the query ran."""
        return list(self.execution.fault_events) if self.execution else []

    @property
    def fallback_engine(self) -> Optional[str]:
        """Engine that actually ran the plan after graceful degradation
        (``None`` when the session's engine completed it)."""
        if self.execution is None or self.execution.fallback_from is None:
            return None
        return self.execution.engine

    # -- cursor-style result access -----------------------------------------
    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def fetchall(self) -> List[tuple]:
        """All result rows as a list (DB-API flavor)."""
        return list(self.rows)

    def column_names(self) -> List[str]:
        if self.schema is not None:
            return list(self.schema.names)
        width = len(self.rows[0]) if self.rows else 0
        return [f"_c{i}" for i in range(width)]

    def to_pydict(self) -> Dict[str, List[object]]:
        """Columnar dict view: column name -> list of values."""
        names = self.column_names()
        return {
            name: [row[i] for row in self.rows] for i, name in enumerate(names)
        }


@dataclass
class ResultCacheEntry:
    """One cached SELECT: the rows plus everything needed to prove they
    are still current (metastore version + input-file fingerprint)."""

    plan: PhysicalPlan
    query_id: str
    version: int
    snapshot: tuple
    rows: List[tuple]
    schema: Optional[Schema]
    engine: str


class ResultCache:
    """Driver-level LRU cache of complete SELECT results.

    Hive's ``hive.query.results.cache`` equivalent: a repeated identical
    query whose inputs are untouched is answered without scheduling
    anything, in ~0 simulated seconds.  Entries are keyed by the same
    key as the compiled-plan cache (AST + engine + the config the
    compiler reads) and validated on every hit against the live
    metastore version and input snapshot; results observed while a
    writer overlapped the query are never admitted (the caller checks
    the version/snapshot it captured at compile time against the state
    at completion before storing).
    """

    def __init__(self, capacity: int):
        self.capacity = max(1, capacity)
        self._entries: Dict[tuple, ResultCacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple, version: int,
               snapshot_of: Callable[[PhysicalPlan], tuple]
               ) -> Optional[ResultCacheEntry]:
        entry = self._entries.get(key)
        if entry is not None:
            if entry.version != version or entry.snapshot != snapshot_of(entry.plan):
                # the catalog or the input files moved under the entry
                del self._entries[key]
                self.invalidations += 1
                entry = None
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: tuple, entry: ResultCacheEntry) -> None:
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1

    def stats(self) -> Dict[str, object]:
        """Counters for ``Session.caches()`` (public introspection)."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


@dataclass
class PreparedStatement:
    """A compiled engine-bound statement, split from its execution.

    The solo path (:meth:`Driver._execute_statement`) runs the plan
    immediately; the workload scheduler (:mod:`repro.sched`) instead
    carries many of these into one shared simulation and calls
    ``finalize`` when each plan's jobs complete.  ``finalize`` performs
    the host-side epilogue (register a CTAS table, drop the temp result
    directory) and builds the :class:`QueryResult`.
    """

    kind: str  # 'ctas' | 'insert' | 'select'
    plan: PhysicalPlan
    query_id: str
    clear_output: bool
    compile_seconds: float
    finalize: Callable[[Optional[PlanResult], Optional[Span]], QueryResult]


def _append_constant_items(query, values):
    """Wrap/extend a SELECT so it also emits the given constant columns
    (used to widen INSERT ... PARTITION queries to full-width rows)."""
    import dataclasses

    extra = [ast.SelectItem(ast.Literal(value)) for value in values]
    if isinstance(query, ast.Select):
        return dataclasses.replace(query, items=list(query.items) + extra)
    if isinstance(query, ast.UnionAll):
        return ast.UnionAll(
            [_append_constant_items(branch, values) for branch in query.branches]
        )
    raise SemanticError("INSERT source must be a SELECT")


def make_warehouse(
    num_workers: int = 7, block_size: Optional[float] = None
) -> Tuple[HDFS, Metastore]:
    """Convenience: a fresh (hdfs, metastore) pair for the default testbed."""
    hdfs = HDFS(
        num_workers=num_workers,
        block_size=DEFAULT_BLOCK_SIZE if block_size is None else block_size,
    )
    return hdfs, Metastore(hdfs)


class Driver:
    """One Hive session bound to an execution engine."""

    def __init__(
        self,
        hdfs: HDFS,
        metastore: Metastore,
        engine: Engine,
        conf: Optional[Configuration] = None,
    ):
        self.hdfs = hdfs
        self.metastore = metastore
        self.engine = engine
        self.conf = conf or Configuration()
        self.analyzer = Analyzer(metastore)
        self._query_counter = 0
        # compiled-plan cache for repeated SELECTs: key -> (plan, query_id,
        # metastore version, input snapshot).  Compilation is deterministic,
        # so a hit skips only host-side work; the modeled compile latency
        # is still charged, keeping simulated seconds identical.
        self._plan_cache: Dict[tuple, tuple] = {}
        # result cache (capability-gated): built on first use so the
        # configured capacity is read after any SET statements ran
        self._result_cache: Optional[ResultCache] = None

    # -- public API ---------------------------------------------------------
    def execute(self, sql: str, with_metrics: bool = False) -> List[QueryResult]:
        """Run a (possibly multi-statement) HiveQL script."""
        results = []
        for statement in parse_script(sql):
            results.append(self._execute_statement(statement, with_metrics))
        return results

    def query(self, sql: str, with_metrics: bool = False) -> QueryResult:
        """Run a script and return the last result that produced rows
        (or the last result overall)."""
        results = self.execute(sql, with_metrics)
        for result in reversed(results):
            if result.statement in ("select",):
                return result
        return results[-1]

    # -- statement dispatch ------------------------------------------------------
    def _execute_statement(
        self, statement: ast.Statement, with_metrics: bool
    ) -> QueryResult:
        host = self._execute_host_statement(statement)
        if host is not None:
            return host
        cached = self.result_cache_lookup(statement)
        if cached is not None:
            return cached
        version_at_compile = self.metastore.version
        prepared = self.prepare(statement)
        snapshot_at_compile = self._plan_snapshot(prepared.plan)
        execution = self._run_plan(
            prepared.plan, prepared.query_id, with_metrics,
            clear_output=prepared.clear_output,
        )
        trace = self._assemble_trace(
            prepared.kind, prepared.query_id, prepared.compile_seconds, execution
        )
        result = prepared.finalize(execution, trace)
        self.result_cache_store(
            statement, prepared, result, version_at_compile, snapshot_at_compile
        )
        return result

    def _execute_host_statement(
        self, statement: ast.Statement
    ) -> Optional[QueryResult]:
        """Run a statement that never touches the engine (``SET``, DDL,
        ``EXPLAIN``); ``None`` means the statement needs a cluster."""
        if isinstance(statement, ast.SetOption):
            self.conf.set(statement.key, statement.value.strip())
            return QueryResult(statement="set")

        if isinstance(statement, ast.DropTable):
            self.metastore.drop_table(statement.name, if_exists=statement.if_exists)
            return QueryResult(statement="drop")

        if isinstance(statement, ast.CreateTable):
            if statement.if_not_exists and self.metastore.has_table(statement.name):
                return QueryResult(statement="create")
            schema = Schema(
                [
                    Column(col.name, DataType.from_name(col.type_name))
                    for col in statement.columns
                ]
            )
            partition_columns = [
                Column(col.name, DataType.from_name(col.type_name))
                for col in statement.partition_columns
            ]
            fmt = statement.format_name or self._default_format()
            self.metastore.create_table(
                statement.name, schema, format_name=fmt,
                partition_columns=partition_columns,
            )
            return QueryResult(statement="create")

        if isinstance(statement, ast.AnalyzeTable):
            return self._run_analyze(statement)

        if isinstance(statement, ast.Explain):
            return self._run_explain(statement)

        if isinstance(
            statement,
            (ast.CreateTableAsSelect, ast.InsertOverwrite, ast.Select, ast.UnionAll),
        ):
            return None

        raise SemanticError(f"unsupported statement {type(statement).__name__}")

    def prepare(self, statement: ast.Statement,
                use_cache: bool = True) -> PreparedStatement:
        """Compile an engine-bound statement without running it.

        The workload scheduler passes ``use_cache=False``: a cache hit
        would hand two in-flight copies of one query the same plan —
        and the same result directory — so concurrent submissions each
        compile a fresh plan under their own query id.
        """
        if isinstance(statement, ast.CreateTableAsSelect):
            return self._prepare_ctas(statement)
        if isinstance(statement, ast.InsertOverwrite):
            return self._prepare_insert(statement)
        if isinstance(statement, (ast.Select, ast.UnionAll)):
            return self._prepare_select(statement, use_cache=use_cache)
        raise SemanticError(
            f"statement {type(statement).__name__} does not run on an engine"
        )

    # -- helpers ------------------------------------------------------------------
    def _default_format(self) -> str:
        return self.conf.get(HIVE_FILE_FORMAT, "text") or "text"

    def _next_query_id(self) -> str:
        self._query_counter += 1
        return f"{self.engine.name}-q{self._query_counter}"

    def _compile(self, select: ast.Select, output_location: str,
                 output_format: str, query_id: str) -> PhysicalPlan:
        logical = self.analyzer.analyze(select)
        logical = prune_columns(logical)
        compiler = PhysicalCompiler(
            self.metastore, self.hdfs, self.conf, query_id=query_id
        )
        return compiler.compile(logical, output_location, output_format)

    def _run_plan(self, plan: PhysicalPlan, query_id: str,
                  with_metrics: bool, clear_output: bool = True) -> PlanResult:
        if clear_output:  # INSERT OVERWRITE / fresh result dir semantics
            self.hdfs.delete(plan.output_location)
        try:
            execution = self.engine.run_plan(
                plan, self.conf, with_metrics=with_metrics
            )
        except RetryExhaustedError:
            fallback = (self.conf.get(RETRY_FALLBACK, "") or "").strip()
            if not fallback:
                raise
            execution = self._run_plan_fallback(plan, fallback, with_metrics)
        self.hdfs.delete(f"/tmp/hive/{query_id}")  # intermediate job outputs
        return execution

    def _run_plan_fallback(self, plan: PhysicalPlan, fallback: str,
                           with_metrics: bool) -> PlanResult:
        """Graceful degradation (``repro.retry.fallback``): a job whose
        gang-scheduled resubmissions are exhausted re-runs the whole plan
        on a task-granular engine from the registry.  Part-files written
        by the failed run's earlier jobs are removed first so the re-run
        can commit them again."""
        from repro import engines as engine_registry
        from repro.obs import get_metrics

        self._discard_partial_outputs(plan)
        get_metrics().counter("engine.fallbacks").add(1)
        engine = engine_registry.create(
            fallback, self.hdfs, spec=getattr(self.engine, "spec", None)
        )
        execution = engine.run_plan(plan, self.conf, with_metrics=with_metrics)
        execution.fallback_from = self.engine.name
        return execution

    def _discard_partial_outputs(self, plan: PhysicalPlan) -> None:
        """Remove part-files a failed run's earlier jobs committed so a
        re-run (fallback engine, resubmission) can commit them again."""
        for job in plan.jobs:
            prefix = f"{job.output_location.rstrip('/')}/{job.job_id}-part-"
            for data_file in self.hdfs.list_dir(job.output_location):
                if data_file.path.startswith(prefix):
                    self.hdfs.delete(data_file.path)

    @staticmethod
    def _compile_seconds(plan: PhysicalPlan) -> float:
        return COMPILE_BASE_SECONDS + COMPILE_PER_JOB_SECONDS * plan.num_jobs

    def _assemble_trace(self, statement: str, query_id: str,
                        compile_seconds: float,
                        execution: Optional[PlanResult]) -> Span:
        """Fold the modeled compile section and the engine's job spans
        into one query-rooted tree on a common simulated clock (seconds
        from statement start)."""
        root = Span(
            "query", start=0.0, category="query",
            attributes={
                "engine": self.engine.name,
                "query_id": query_id,
                "statement": statement,
            },
        )
        root.start_child("compile", 0.0, category="compile").finish(compile_seconds)
        run_seconds = 0.0
        if execution is not None:
            run_seconds = execution.total_seconds
            for job_span in execution.spans:
                # engine spans start at their own t=0; shift past compile
                root.adopt(job_span.shift(compile_seconds))
        return root.finish(compile_seconds + run_seconds)

    def _prepare_ctas(
        self, statement: ast.CreateTableAsSelect
    ) -> PreparedStatement:
        if self.metastore.has_table(statement.name):
            raise SemanticError(f"table already exists: {statement.name}")
        query_id = self._next_query_id()
        fmt = statement.format_name or self._default_format()
        location = f"/warehouse/{statement.name.lower()}"
        plan = self._compile(statement.query, location, fmt, query_id)
        compile_seconds = self._compile_seconds(plan)

        def finalize(execution: Optional[PlanResult],
                     trace: Optional[Span]) -> QueryResult:
            self.metastore.create_table(
                statement.name, plan.output_schema, format_name=fmt,
                location=location,
            )
            if execution is not None:
                self._autogather_stats(statement.name)
            return QueryResult(
                statement="ctas",
                schema=plan.output_schema,
                plan=plan,
                execution=execution,
                compile_seconds=compile_seconds,
                trace=trace,
                engine=execution.engine if execution else self.engine.name,
            )

        return PreparedStatement(
            "ctas", plan, query_id, True, compile_seconds, finalize
        )

    def _prepare_insert(
        self, statement: ast.InsertOverwrite
    ) -> PreparedStatement:
        table = self.metastore.get_table(statement.table)
        query_id = self._next_query_id()

        query = statement.query
        location = table.location
        target_schema = table.schema
        partition_values = None
        if table.is_partitioned:
            if not statement.partition:
                raise SemanticError(
                    f"table {table.name} is partitioned; use "
                    "INSERT ... PARTITION (col=value, ...)"
                )
            spec = {name.lower(): value for name, value in statement.partition}
            expected = [column.name.lower() for column in table.partition_columns]
            if sorted(spec) != sorted(expected):
                raise SemanticError(
                    f"PARTITION spec must name exactly {expected}, got {sorted(spec)}"
                )
            values = tuple(spec[name] for name in expected)
            location = table.add_partition(values)
            self.metastore.version += 1  # partition set changed
            partition_values = dict(zip(expected, values))
            # stored rows carry the partition values (full-width files);
            # the constant columns are appended to the query output
            query = _append_constant_items(query, list(values))
            target_schema = table.full_schema
        elif statement.partition:
            raise SemanticError(f"table {table.name} is not partitioned")

        plan = self._compile(query, location, table.format_name, query_id)
        if len(plan.output_schema) != len(target_schema):
            raise SemanticError(
                f"INSERT column count mismatch: query produces "
                f"{len(plan.output_schema)}, table {table.name} expects "
                f"{len(target_schema)}"
            )
        # positional insert: the table's declared schema wins (Hive semantics)
        plan.jobs[-1].output_schema = target_schema
        plan.jobs[-1].output_partition_values = partition_values
        plan.output_schema = target_schema
        compile_seconds = self._compile_seconds(plan)

        def finalize(execution: Optional[PlanResult],
                     trace: Optional[Span]) -> QueryResult:
            if execution is not None:
                self._autogather_stats(table.name)
            return QueryResult(
                statement="insert",
                schema=target_schema,
                plan=plan,
                execution=execution,
                compile_seconds=compile_seconds,
                trace=trace,
                engine=execution.engine if execution else self.engine.name,
            )

        return PreparedStatement(
            "insert", plan, query_id, statement.overwrite, compile_seconds,
            finalize,
        )

    def _run_analyze(self, statement: ast.AnalyzeTable) -> QueryResult:
        """ANALYZE TABLE: collect stats host-side and store them.

        Scanning happens on the simulated namenode's row store, so no
        cluster time is charged — like Hive's metastore-backed quick
        stats.  ``FOR COLUMNS`` adds the NDV / heavy-hitter sketches the
        optimizer's selectivity and skew decisions read.
        """
        table = self.metastore.get_table(statement.name)
        stats = collect_table_stats(
            self.hdfs, table, with_columns=statement.with_columns
        )
        self.metastore.put_table_stats(stats)
        rows = [
            (
                table.name,
                stats.row_count,
                float(round(stats.total_bytes, 1)),
                len(stats.columns),
            )
        ]
        schema = Schema(
            [
                Column("table_name", DataType.STRING),
                Column("row_count", DataType.BIGINT),
                Column("total_bytes", DataType.DOUBLE),
                Column("column_stats", DataType.INT),
            ]
        )
        return QueryResult(statement="analyze", rows=rows, schema=schema)

    def _autogather_stats(self, table_name: str) -> None:
        """Basic-stats autogather after INSERT/CTAS (Hive's
        ``hive.stats.autogather``): row count + bytes from file metadata
        only — no row scan, no column sketches — so estimates equal raw
        sizes and plan decisions are unchanged until an explicit
        ANALYZE ... FOR COLUMNS."""
        if not (
            self.conf.get_bool(STATS_ENABLED, True)
            and self.conf.get_bool(STATS_AUTO, True)
        ):
            return
        try:
            table = self.metastore.get_table(table_name)
            stats = collect_table_stats(self.hdfs, table, with_columns=False)
            self.metastore.put_table_stats(stats)
        except Exception:
            pass  # stats are advisory; never fail the write

    def _run_explain(self, statement: ast.Explain) -> QueryResult:
        """EXPLAIN: compile the target and render its physical plan
        without executing anything."""
        from repro.plan.physical import explain_plan

        target = statement.target
        query_id = self._next_query_id()
        if isinstance(target, ast.CreateTableAsSelect):
            fmt = target.format_name or self._default_format()
            plan = self._compile(
                target.query, f"/warehouse/{target.name.lower()}", fmt, query_id
            )
        elif isinstance(target, ast.InsertOverwrite):
            table = self.metastore.get_table(target.table)
            plan = self._compile(
                target.query, table.location, table.format_name, query_id
            )
        elif isinstance(target, (ast.Select, ast.UnionAll)):
            plan = self._compile(target, f"/tmp/results/{query_id}", "text", query_id)
        else:
            raise SemanticError("EXPLAIN supports SELECT / CTAS / INSERT")
        lines = explain_plan(plan).splitlines()
        compile_seconds = self._compile_seconds(plan)
        return QueryResult(
            statement="explain",
            rows=[(line,) for line in lines],
            schema=Schema([Column("plan", DataType.STRING)]),
            plan=plan,
            trace=self._assemble_trace("explain", query_id, compile_seconds, None),
        )

    # -- result cache -------------------------------------------------------
    def result_cache(self) -> Optional[ResultCache]:
        """The driver's result cache, or ``None`` when the session's
        engine does not advertise the ``result_cache`` capability or
        ``repro.result.cache.enabled`` is off."""
        if not self.engine.capabilities.result_cache:
            return None
        if not self.conf.get_bool(RESULT_CACHE_ENABLED, True):
            return None
        if self._result_cache is None:
            self._result_cache = ResultCache(
                self.conf.get_int(RESULT_CACHE_ENTRIES, 64)
            )
        return self._result_cache

    def result_cache_lookup(self, statement) -> Optional[QueryResult]:
        """A finished :class:`QueryResult` for *statement* if the result
        cache holds a still-valid entry, else ``None``.  A hit costs no
        compile time and no cluster work (~0 simulated seconds)."""
        cache = self.result_cache()
        if cache is None or not isinstance(statement, (ast.Select, ast.UnionAll)):
            return None
        entry = cache.lookup(
            self._plan_cache_key(statement), self.metastore.version,
            self._plan_snapshot,
        )
        if entry is None:
            return None
        trace = Span(
            "query", start=0.0, category="query",
            attributes={
                "engine": entry.engine,
                "query_id": entry.query_id,
                "statement": "select",
                "cache_hit": True,
            },
        ).finish(0.0)
        return QueryResult(
            statement="select",
            rows=list(entry.rows),
            schema=entry.schema,
            plan=entry.plan,
            execution=None,
            compile_seconds=0.0,
            trace=trace,
            cache_hit=True,
            engine=entry.engine,
        )

    def result_cache_store(self, statement, prepared: "PreparedStatement",
                           result: QueryResult, version_at_compile: int,
                           snapshot_at_compile: tuple) -> None:
        """Admit a completed SELECT, unless a writer overlapped it.

        The metastore version and input snapshot captured at compile
        time must still hold now that the query finished — otherwise the
        rows may reflect a half-updated input (a concurrent INSERT under
        ``Session.submit``) and are not safe to replay.
        """
        cache = self.result_cache()
        if cache is None or result.statement != "select" or result.cache_hit:
            return
        if result.execution is None:
            return
        if self.metastore.version != version_at_compile:
            return
        if self._plan_snapshot(prepared.plan) != snapshot_at_compile:
            return
        cache.store(
            self._plan_cache_key(statement),
            ResultCacheEntry(
                plan=prepared.plan,
                query_id=prepared.query_id,
                version=version_at_compile,
                snapshot=snapshot_at_compile,
                rows=list(result.rows),
                schema=result.schema,
                engine=result.engine or self.engine.name,
            ),
        )

    # -- plan cache ---------------------------------------------------------
    def _plan_cache_key(self, statement) -> tuple:
        """Cache key: query structure plus everything compilation reads.

        The AST repr stands in for normalized query text; the
        configuration the physical compiler consults is the map-join
        small-table threshold (``hive.mapjoin.smalltable.filesize``),
        stats-driven planning and skew-join knobs, and the execution
        mode decides which pipeline the cached plan's descriptors get
        compiled into at task start.  The metastore ``stats_epoch`` is
        part of the key so a plan costed under old statistics can never
        be replayed after an ANALYZE (or autogather) changed what the
        optimizer would decide — the input-snapshot check alone cannot
        see ANALYZE, which touches no data files.  The ColumnBatch
        ``LAYOUT_VERSION`` pins the physical column representation the
        vectorized kernels were compiled against, so entries persisted
        across a layout change can never serve a plan whose kernels
        assume the other layout.
        """
        return (
            repr(statement),
            self.engine.name,
            self.conf.get(HIVE_MAPJOIN_SMALLTABLE_BYTES, None),
            self.conf.get(EXEC_VECTORIZED, None),
            self.conf.get(STATS_ENABLED, None),
            self.conf.get(SKEWJOIN_THRESHOLD, None),
            self.conf.get(SKEWJOIN_FANOUT, None),
            self.metastore.stats_epoch,
            LAYOUT_VERSION,
        )

    def _plan_snapshot(self, plan: PhysicalPlan) -> tuple:
        """Fingerprint of the plan's input data at compile time.

        Compilation depends on the inputs only through file listings and
        byte sizes (split planning, the map-join decision), so a cached
        plan stays valid while those are unchanged.  The plan's own
        intermediate locations (under ``/tmp/hive/``) are excluded — they
        exist only while the plan runs.
        """
        locations = set()
        for job in plan.jobs:
            for map_input in job.inputs:
                locations.add(map_input.location)
            for broadcast in job.broadcasts:
                locations.add(broadcast.location)
        snapshot = []
        for location in sorted(locations):
            if location.startswith("/tmp/hive/"):
                continue
            for data_file in self.hdfs.list_dir(location):
                stored = data_file.stored
                snapshot.append(
                    (data_file.path, data_file.scale,
                     stored.row_count, stored.total_bytes)
                )
        return tuple(snapshot)

    def _cached_select_plan(self, statement) -> Tuple[tuple, Optional[PhysicalPlan], str]:
        key = self._plan_cache_key(statement)
        entry = self._plan_cache.get(key)
        if entry is not None:
            plan, query_id, version, snapshot = entry
            if (version == self.metastore.version
                    and snapshot == self._plan_snapshot(plan)):
                return key, plan, query_id
            del self._plan_cache[key]  # stale: catalog or input data moved
        return key, None, ""

    def _prepare_select(self, statement,
                        use_cache: bool = True) -> PreparedStatement:
        plan = None
        if use_cache:
            key, plan, query_id = self._cached_select_plan(statement)
        if plan is None:
            query_id = self._next_query_id()
            location = f"/tmp/results/{query_id}"
            plan = self._compile(statement, location, "text", query_id)
            if use_cache:
                self._plan_cache[key] = (
                    plan, query_id, self.metastore.version,
                    self._plan_snapshot(plan),
                )
        compile_seconds = self._compile_seconds(plan)
        bound_plan = plan

        def finalize(execution: Optional[PlanResult],
                     trace: Optional[Span]) -> QueryResult:
            self.hdfs.delete(bound_plan.output_location)
            return QueryResult(
                statement="select",
                rows=execution.rows if execution else [],
                schema=bound_plan.output_schema,
                plan=bound_plan,
                execution=execution,
                compile_seconds=compile_seconds,
                trace=trace,
                engine=execution.engine if execution else self.engine.name,
            )

        return PreparedStatement(
            "select", bound_plan, query_id, True, compile_seconds, finalize
        )
