"""The workload scheduler: admission control + shared-cluster execution.

Layering (top to bottom):

* **admission** (here) — whether a submitted query may run at all:
  global ``max_concurrent``, per-pool concurrency caps, bounded wait
  queues with typed rejection;
* **slot arbitration** (:class:`repro.simulate.LeaseManager`) — which
  *admitted* query's task gets the next free slot, per the ``fifo`` or
  ``fair`` policy;
* **execution** (:meth:`repro.engines.base.Engine.plan_process`) — each
  query's job DAG runs as a coroutine inside one shared
  :class:`~repro.engines.base.EngineRuntime`.

``submit`` never advances simulated time; it parses, compiles nothing,
and spawns the query's driver process into the shared simulator.  A
handle's :meth:`QueryHandle.result` (or :meth:`WorkloadScheduler.drain`)
runs the simulation until every runnable query completes.  Everything is
deterministic: same seed + same submission sequence replays the exact
same event order, timings and results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro import engines as engine_registry
from repro.common.config import (
    BREAKER_COOLDOWN,
    BREAKER_THRESHOLD,
    Configuration,
    QUERY_DEADLINE,
    RETRY_FALLBACK,
    RETRY_MAX,
)
from repro.common.errors import (
    AdmissionRejectedError,
    ConfigError,
    ExecutionError,
    QueryCancelledError,
    QueryTimeoutError,
    RetryExhaustedError,
)
from repro.core.driver import Driver, PreparedStatement, QueryResult
from repro.engines.base import Engine, EngineRuntime, PlanResult, collect_plan_result
from repro.obs import Span, get_metrics
from repro.simulate import Interrupt, LeaseOwner
from repro.sql import parse_script

POLICIES = ("fifo", "fair", "capacity")

QUEUED = "queued"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"


@dataclass
class Pool:
    """One scheduling pool: a weight for fair sharing plus optional
    admission limits (``max_concurrent`` running queries, ``max_queue``
    waiting ones; ``None`` = unlimited)."""

    name: str
    weight: float = 1.0
    max_concurrent: Optional[int] = None
    max_queue: Optional[int] = None

    def __post_init__(self):
        if self.weight <= 0:
            raise ConfigError(f"pool {self.name!r}: weight must be positive")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ConfigError(f"pool {self.name!r}: cap must be >= 1")
        if self.max_queue is not None and self.max_queue < 0:
            raise ConfigError(f"pool {self.name!r}: queue must be >= 0")


def parse_pools(spec: str) -> Dict[str, Pool]:
    """Parse the ``repro.sched.pools`` grammar.

    >>> pools = parse_pools("etl:weight=2,cap=1,queue=4; adhoc:weight=1")
    >>> pools["etl"].max_concurrent
    1
    """
    pools: Dict[str, Pool] = {}
    for chunk in (spec or "").split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, options = chunk.partition(":")
        name = name.strip()
        if not name:
            raise ConfigError(f"pool spec {chunk!r}: missing pool name")
        if name in pools:
            raise ConfigError(f"pool {name!r} declared twice")
        kwargs: Dict[str, object] = {}
        for option in options.split(","):
            option = option.strip()
            if not option:
                continue
            key, eq, raw = option.partition("=")
            key = key.strip().lower()
            if not eq:
                raise ConfigError(f"pool {name!r}: malformed option {option!r}")
            try:
                if key == "weight":
                    kwargs["weight"] = float(raw)
                elif key == "cap":
                    kwargs["max_concurrent"] = int(raw)
                elif key == "queue":
                    kwargs["max_queue"] = int(raw)
                else:
                    raise ConfigError(
                        f"pool {name!r}: unknown option {key!r} "
                        "(expected weight/cap/queue)"
                    )
            except ValueError as exc:
                raise ConfigError(
                    f"pool {name!r}: {key}={raw!r} is not a number"
                ) from exc
        pools[name] = Pool(name, **kwargs)
    return pools


class EngineBreaker:
    """Consecutive-failure circuit breaker for one engine.

    Closed until ``threshold`` consecutive query failures, then open for
    ``cooldown`` simulated seconds (the scheduler degrades new queries
    along the engine's declared ``degrades_to`` chain).  After the
    cooldown one half-open probe query is let through: success closes
    the breaker, failure re-opens it with a fresh cooldown.  A
    ``threshold`` of 0 disables the breaker entirely.
    """

    __slots__ = ("threshold", "cooldown", "failures", "opened_at",
                 "half_open_probe", "trips")

    def __init__(self, threshold: int, cooldown: float):
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.half_open_probe = False
        self.trips = 0

    @property
    def open(self) -> bool:
        return self.opened_at is not None

    def allows(self, now: float) -> bool:
        if self.threshold <= 0 or self.opened_at is None:
            return True
        if now - self.opened_at >= self.cooldown and not self.half_open_probe:
            self.half_open_probe = True  # exactly one probe per cooldown
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
        self.half_open_probe = False

    def record_failure(self, now: float) -> bool:
        """Count a failure; returns True when the breaker (re-)trips."""
        self.failures += 1
        if self.opened_at is not None:
            # failed half-open probe (or failure while already open)
            self.opened_at = now
            self.half_open_probe = False
            self.trips += 1
            return True
        if self.threshold > 0 and self.failures >= self.threshold:
            self.opened_at = now
            self.half_open_probe = False
            self.trips += 1
            return True
        return False


def jain_fairness_index(values: List[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` — 1.0 when
    every query got the same share, ``1/n`` when one got everything."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares <= 0:
        return 1.0
    return (total * total) / (len(values) * squares)


class QueryHandle:
    """One submitted query (possibly a multi-statement script).

    ``submit`` returns immediately in simulated time; :meth:`result`
    drains the shared simulation and returns the script's primary
    :class:`~repro.core.driver.QueryResult` (the last SELECT's, matching
    ``Driver.query``), re-raising the query's failure if it had one.
    """

    def __init__(self, scheduler: "WorkloadScheduler", query_id: str,
                 pool: Pool, statements: List[object],
                 deadline: Optional[float] = None,
                 retry_budget: Optional[int] = None):
        self._scheduler = scheduler
        self.query_id = query_id
        self.pool = pool.name
        self.owner = LeaseOwner(query_id, pool=pool.name, weight=pool.weight)
        self.statements = statements
        self.results: List[QueryResult] = []
        self.error: Optional[BaseException] = None
        self.submitted_at = scheduler.runtime.sim.now
        self.admitted_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: wall-clock budget in simulated seconds from submission; the
        #: scheduler cancels the query with QueryTimeoutError past it
        self.deadline = deadline
        self.deadline_missed = False
        #: per-query override of ``repro.retry.max`` (None = session conf)
        self.retry_budget = retry_budget
        self._status = QUEUED
        self._start_event = scheduler.runtime.sim.event()
        self._cancel_requested = False

    # -- public API ---------------------------------------------------------
    def status(self) -> str:
        return self._status

    def done(self) -> bool:
        return self._status in (SUCCEEDED, FAILED, CANCELLED)

    def cancel(self) -> bool:
        """Withdraw the query if it has not been admitted yet.  Returns
        ``True`` when cancelled; ``False`` once it is running or done
        (no preemption — the cluster finishes what it started)."""
        return self._scheduler._cancel(self)

    def result(self) -> QueryResult:
        self._scheduler.drain()
        if self._status == CANCELLED:
            raise QueryCancelledError(
                f"query {self.query_id} was cancelled before admission",
                query_id=self.query_id,
            )
        if self.error is not None:
            raise self.error
        for result in reversed(self.results):
            if result.statement == "select":
                return result
        return self.results[-1]

    # -- timings (simulated seconds on the shared clock) ---------------------
    @property
    def latency(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def queue_wait(self) -> Optional[float]:
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    def __repr__(self) -> str:
        return (
            f"QueryHandle({self.query_id!r}, pool={self.pool!r}, "
            f"status={self._status!r})"
        )


class WorkloadScheduler:
    """Admits queries from one :class:`~repro.core.driver.Driver` into a
    shared :class:`~repro.engines.base.EngineRuntime`."""

    def __init__(
        self,
        driver: Driver,
        policy: str = "fifo",
        max_concurrent: int = 0,
        pools: Optional[Dict[str, Pool]] = None,
        default_pool: str = "default",
    ):
        if policy not in POLICIES:
            raise ConfigError(
                f"unknown scheduler policy {policy!r} (expected one of {POLICIES})"
            )
        if max_concurrent < 0:
            raise ConfigError("repro.sched.max.concurrent must be >= 0")
        self._require_plan_process(driver.engine)
        self.driver = driver
        self.policy = policy
        self.max_concurrent = max_concurrent
        self.pools: Dict[str, Pool] = dict(pools or {})
        self.default_pool = default_pool
        self.pools.setdefault(default_pool, Pool(default_pool))
        self.runtime = EngineRuntime(
            driver.engine.spec,
            driver.conf,
            lease_policy="fair" if policy == "fair" else "fifo",
        )
        #: deterministic audit trail: (time, action, query, pool) in
        #: scheduling order — the concurrency suite replays and compares it
        self.events: List[Tuple[float, str, str, str]] = []
        self.handles: List[QueryHandle] = []
        self._waiting: Deque[QueryHandle] = deque()
        self._queued_by_pool: Dict[str, int] = {}
        self._running_by_pool: Dict[str, int] = {}
        self._running_total = 0
        self._counter = 0
        self.rejected = 0
        self.peak_queue_depth = 0
        self._fallback_engines: Dict[str, Engine] = {}
        self._breaker_threshold = max(
            0, driver.conf.get_int(BREAKER_THRESHOLD, 0)
        )
        self._breaker_cooldown = max(
            0.0, driver.conf.get_float(BREAKER_COOLDOWN, 30.0)
        )
        self._breakers: Dict[str, EngineBreaker] = {}

    @staticmethod
    def _require_plan_process(engine: Engine) -> None:
        if not engine.capabilities.shared_runtime:
            raise ConfigError(
                f"engine {engine.name!r} does not support shared-runtime "
                "execution; concurrent scheduling needs a cluster engine "
                "(one whose capabilities advertise shared_runtime, e.g. "
                "hadoop / datampi / llap)"
            )

    # -- submission ----------------------------------------------------------
    def submit(self, sql: str, pool: Optional[str] = None,
               deadline: Optional[float] = None,
               retry_budget: Optional[int] = None) -> QueryHandle:
        """Queue a script for execution; non-blocking in simulated time.

        *deadline* is a wall-clock budget in simulated seconds from
        submission (defaults to ``repro.query.deadline``; 0/unset = no
        deadline): past it the query's work is interrupted, its leases
        and executor slots freed, and :class:`QueryTimeoutError` becomes
        the handle's error.  *retry_budget* overrides ``repro.retry.max``
        for this query only.

        Raises :class:`AdmissionRejectedError` when the target pool's
        concurrency cap is reached *and* its bounded wait queue is full.
        """
        statements = parse_script(sql)
        if not statements:
            raise ExecutionError("submit needs at least one statement")
        if deadline is None:
            configured = self.driver.conf.get_float(QUERY_DEADLINE, 0.0)
            deadline = configured if configured > 0 else None
        elif deadline <= 0:
            raise ConfigError(f"deadline must be positive: {deadline}")
        if retry_budget is not None and retry_budget < 0:
            raise ConfigError(f"retry budget must be >= 0: {retry_budget}")
        pool_obj = self._resolve_pool(pool)
        self._counter += 1
        handle = QueryHandle(self, f"wq{self._counter}", pool_obj, statements,
                             deadline=deadline, retry_budget=retry_budget)
        self._check_admission(pool_obj, handle)
        self.handles.append(handle)
        self._waiting.append(handle)
        self._queued_by_pool[pool_obj.name] = (
            self._queued_by_pool.get(pool_obj.name, 0) + 1
        )
        self._log("submit", handle)
        self.runtime.sim.spawn(self._query_process(handle), handle.query_id)
        self._pump()
        return handle

    @property
    def queue_depth(self) -> int:
        """Queries submitted but not yet admitted (nor cancelled)."""
        return len(self._waiting)

    def _resolve_pool(self, pool: Optional[str]) -> Pool:
        name = pool or self.default_pool
        pool_obj = self.pools.get(name)
        if pool_obj is None:
            raise ConfigError(
                f"unknown pool {name!r} (declared: {sorted(self.pools)})"
            )
        return pool_obj

    def _check_admission(self, pool: Pool, handle: QueryHandle) -> None:
        if pool.max_concurrent is None:
            return
        running = self._running_by_pool.get(pool.name, 0)
        if running < pool.max_concurrent:
            return
        queued = self._queued_by_pool.get(pool.name, 0)
        if pool.max_queue is not None and queued >= pool.max_queue:
            self.rejected += 1
            get_metrics().counter("sched.admission.rejected").add(1)
            self.events.append(
                (self.runtime.sim.now, "reject", handle.query_id, pool.name)
            )
            raise AdmissionRejectedError(
                f"pool {pool.name!r} is full: {running} running "
                f"(cap {pool.max_concurrent}), {queued} queued "
                f"(queue limit {pool.max_queue})",
                pool=pool.name,
                running=running,
                queued=queued,
                max_concurrent=pool.max_concurrent,
                max_queue=pool.max_queue,
            )

    # -- draining ------------------------------------------------------------
    def drain(self) -> None:
        """Run the shared simulation until every runnable query is done."""
        self._pump()
        self.runtime.sim.run()

    def close(self) -> None:
        self.runtime.close()

    # -- admission pump --------------------------------------------------------
    def _fits(self, pool: Pool) -> bool:
        if self.max_concurrent and self._running_total >= self.max_concurrent:
            return False
        if pool.max_concurrent is not None:
            if self._running_by_pool.get(pool.name, 0) >= pool.max_concurrent:
                return False
        return True

    def _pump(self) -> None:
        """Admit waiting queries, in submission order, as capacity allows
        (a full pool never blocks a later submission to another pool).

        The waiting list is a deque: the common serving case — head of
        the queue admitted, or nothing admissible — never rebuilds the
        whole list, and the loop stops as soon as the *global* cap is
        reached instead of re-checking every queued query.
        """
        depth = len(self._waiting)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        if not self._waiting:
            return
        waiting = self._waiting
        skipped: Deque[QueryHandle] = deque()
        while waiting:
            if self.max_concurrent and self._running_total >= self.max_concurrent:
                break  # global cap: nothing more fits until a finish
            handle = waiting.popleft()
            pool = self.pools[handle.pool]
            if not self._fits(pool):
                skipped.append(handle)  # pool-capped; later pools may fit
                continue
            self._queued_by_pool[pool.name] -= 1
            self._running_by_pool[pool.name] = (
                self._running_by_pool.get(pool.name, 0) + 1
            )
            self._running_total += 1
            handle.admitted_at = self.runtime.sim.now
            handle._status = RUNNING
            self._log("admit", handle)
            handle._start_event.trigger(None)
        if skipped:
            skipped.extend(waiting)
            self._waiting = skipped
        get_metrics().gauge("sched.queue.depth").set(len(self._waiting))

    def _cancel(self, handle: QueryHandle) -> bool:
        if handle._status != QUEUED:
            return False
        handle._cancel_requested = True
        handle._status = CANCELLED
        handle.finished_at = self.runtime.sim.now
        if handle in self._waiting:
            self._waiting.remove(handle)
            self._queued_by_pool[handle.pool] -= 1
        self._log("cancel", handle)
        handle._start_event.trigger(None)  # wake the process so it exits
        return True

    def _finish(self, handle: QueryHandle) -> None:
        self._running_by_pool[handle.pool] -= 1
        self._running_total -= 1
        if handle.latency is not None:
            get_metrics().histogram("sched.query.latency").observe(handle.latency)
        self._pump()

    def _log(self, action: str, handle: QueryHandle) -> None:
        self.events.append(
            (self.runtime.sim.now, action, handle.query_id, handle.pool)
        )

    # -- the per-query driver process ------------------------------------------
    def _query_process(self, handle: QueryHandle):
        yield handle._start_event
        if handle._cancel_requested:
            return
        sim = self.runtime.sim
        try:
            if handle.deadline is None:
                # no deadline: run the statements inline — structurally
                # identical to the pre-deadline scheduler, so clean
                # workloads replay byte-identically
                yield from self._guarded_body(handle)
            else:
                yield from self._deadline_guard(handle)
        finally:
            handle.finished_at = sim.now
            self._log("finish" if handle._status == SUCCEEDED else "fail", handle)
            self._finish(handle)

    def _guarded_body(self, handle: QueryHandle):
        """Run the statements, recording outcome on the handle; a
        deadline interrupt passes through to the guard untouched."""
        try:
            yield from self._statements_body(handle)
            handle._status = SUCCEEDED
        except Interrupt:
            raise  # deadline abort: the guard records the timeout
        except Exception as exc:  # one query's failure never sinks the rest
            handle._status = FAILED
            handle.error = exc

    def _deadline_guard(self, handle: QueryHandle):
        """Race the statement work against the query's deadline.

        The work runs in a child process so the guard can interrupt it:
        engine-level ``finally`` blocks unwind (crash subscriptions,
        queued lease/gang requests are withdrawn), while already-running
        task processes finish on their own and release the slots they
        hold — the ledger stays balanced on every abort path.
        """
        sim = self.runtime.sim
        child = sim.spawn(self._guarded_body(handle),
                          f"{handle.query_id}-body")
        remaining = max(0.0, handle.submitted_at + handle.deadline - sim.now)
        timer = sim.timeout(remaining)
        yield sim.any_of([child, timer])
        if child.triggered:
            # withdraw the losing deadline timer: an orphaned timer is
            # regular pending work, so across thousands of queries it
            # both bloats the agenda and pins the simulation clock to
            # the *last* deadline instead of the last real finish
            timer.cancel()
            return
        handle.deadline_missed = True
        get_metrics().counter("sched.deadline.misses").add(1)
        self._log("deadline", handle)
        child.interrupt(("deadline", handle.query_id))
        yield child  # let the finallys unwind before reporting
        handle._status = FAILED
        handle.error = QueryTimeoutError(
            f"query {handle.query_id} exceeded its deadline of "
            f"{handle.deadline:g}s (submitted at t={handle.submitted_at:g})",
            query_id=handle.query_id,
            deadline=handle.deadline,
        )

    def _statements_body(self, handle: QueryHandle):
        sim = self.runtime.sim
        for statement in handle.statements:
            host = self.driver._execute_host_statement(statement)
            if host is not None:
                handle.results.append(host)
                continue
            # result cache: checked on the shared clock at the
            # moment this query gets to run, so a hit reflects
            # every write that committed before it (and a bump
            # mid-workload invalidates stale entries right here)
            cached = self.driver.result_cache_lookup(statement)
            if cached is not None:
                self._log("cache-hit", handle)
                handle.results.append(cached)
                continue
            statement_start = sim.now
            version_at_compile = self.driver.metastore.version
            prepared = self.driver.prepare(statement, use_cache=False)
            snapshot_at_compile = self.driver._plan_snapshot(
                prepared.plan
            )
            yield sim.timeout(prepared.compile_seconds)
            execution = yield from self._run_prepared(handle, prepared)
            trace = self._build_trace(
                handle, prepared, execution, statement_start
            )
            result = prepared.finalize(execution, trace)
            handle.results.append(result)
            self.driver.result_cache_store(
                statement, prepared, result, version_at_compile,
                snapshot_at_compile,
            )

    # -- circuit breaker -------------------------------------------------------
    def _breaker(self, engine_name: str) -> EngineBreaker:
        breaker = self._breakers.get(engine_name)
        if breaker is None:
            breaker = EngineBreaker(self._breaker_threshold,
                                    self._breaker_cooldown)
            self._breakers[engine_name] = breaker
        return breaker

    def _select_engine(self, handle: QueryHandle) -> Engine:
        """Breaker-aware engine choice: the session engine unless its
        breaker is open, else the first closed engine along the declared
        ``degrades_to`` chain (shared-runtime engines only)."""
        primary = self.driver.engine
        if self._breaker_threshold <= 0:
            return primary
        now = self.runtime.sim.now
        if self._breaker(primary.name).allows(now):
            return primary
        spec = engine_registry.get_spec(primary.name)
        for name in spec.degrades_to:
            if not engine_registry.capabilities(name).shared_runtime:
                continue
            if not self._breaker(name).allows(now):
                continue
            get_metrics().counter("sched.breaker.degraded").add(1)
            self.events.append(
                (now, "breaker-degrade", handle.query_id, name)
            )
            return self._fallback_engine(name)
        return primary  # whole chain open: last resort is the primary

    def _fallback_engine(self, name: str) -> Engine:
        engine = self._fallback_engines.get(name)
        if engine is None:
            engine = engine_registry.create(
                name, self.driver.hdfs, spec=self.driver.engine.spec
            )
            self._require_plan_process(engine)
            self._fallback_engines[name] = engine
        return engine

    def _query_conf(self, handle: QueryHandle) -> Configuration:
        if handle.retry_budget is None:
            return self.driver.conf
        conf = self.driver.conf.copy()
        conf.set(RETRY_MAX, handle.retry_budget)
        return conf

    def _run_prepared(self, handle: QueryHandle, prepared: PreparedStatement):
        driver = self.driver
        engine = self._select_engine(handle)
        sim = self.runtime.sim
        conf = self._query_conf(handle)
        if prepared.clear_output:
            driver.hdfs.delete(prepared.plan.output_location)
        started_at = sim.now
        try:
            timings = yield from engine.plan_process(
                self.runtime, prepared.plan, conf, handle.owner
            )
            execution = collect_plan_result(
                engine, self.runtime, prepared.plan, timings,
                started_at=started_at, include_injector_span=False,
            )
            self._breaker(engine.name).record_success()
        except Interrupt:
            raise  # deadline abort: not the engine's failure
        except Exception as exc:
            now = sim.now
            if self._breaker(engine.name).record_failure(now):
                get_metrics().counter("sched.breaker.trips").add(1)
                self.events.append(
                    (now, "breaker-open", handle.query_id, engine.name)
                )
            fallback = (conf.get(RETRY_FALLBACK, "") or "").strip()
            if not isinstance(exc, RetryExhaustedError) or not fallback:
                raise
            execution = yield from self._run_fallback(
                handle, prepared, engine, fallback, started_at, conf
            )
        if engine is not driver.engine and execution.fallback_from is None:
            execution.fallback_from = driver.engine.name
        driver.hdfs.delete(f"/tmp/hive/{prepared.query_id}")
        return execution

    def _run_fallback(self, handle: QueryHandle, prepared: PreparedStatement,
                      failed_engine: Engine, fallback: str, started_at: float,
                      conf: Configuration):
        """Graceful degradation *inside the shared simulation*: the plan
        re-runs on the fallback engine against the same cluster, so
        bystander queries keep their slots and timeline."""
        driver = self.driver
        driver._discard_partial_outputs(prepared.plan)
        get_metrics().counter("engine.fallbacks").add(1)
        engine = self._fallback_engine(fallback)
        timings = yield from engine.plan_process(
            self.runtime, prepared.plan, conf, handle.owner
        )
        execution = collect_plan_result(
            engine, self.runtime, prepared.plan, timings,
            started_at=started_at, include_injector_span=False,
        )
        execution.fallback_from = failed_engine.name
        return execution

    def _build_trace(self, handle: QueryHandle, prepared: PreparedStatement,
                     execution: PlanResult, statement_start: float) -> Span:
        """Per-statement span tree on the *shared* simulated clock (the
        solo driver rebases to statement-relative time; here absolute
        times are the point — overlap between queries is visible)."""
        root = Span(
            "query", start=statement_start, category="query",
            attributes={
                "engine": execution.engine,
                "query_id": prepared.query_id,
                "statement": prepared.kind,
                "query": handle.query_id,
                "pool": handle.pool,
                "policy": self.policy,
                "queue_wait": handle.queue_wait or 0.0,
            },
        )
        root.start_child("compile", statement_start, category="compile").finish(
            statement_start + prepared.compile_seconds
        )
        for job_span in execution.spans:
            root.adopt(job_span)  # already on the shared clock: no shift
        return root.finish(self.runtime.sim.now)

    # -- reporting -------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Workload-level numbers for the bench harness and tests."""
        finished = [h for h in self.handles if h.finished_at is not None]
        latencies = sorted(
            h.latency for h in finished if h._status == SUCCEEDED
        )
        ledger = self.runtime.leases.ledger

        def nearest_rank(q: float) -> Optional[float]:
            if not latencies:
                return None
            rank = min(len(latencies) - 1,
                       max(0, int(round(q / 100.0 * (len(latencies) - 1)))))
            return latencies[rank]

        return {
            "policy": self.policy,
            "queries": len(self.handles),
            "succeeded": sum(1 for h in self.handles if h._status == SUCCEEDED),
            "failed": sum(1 for h in self.handles if h._status == FAILED),
            "cancelled": sum(1 for h in self.handles if h._status == CANCELLED),
            "rejected": self.rejected,
            "makespan": self.runtime.sim.now,
            "latencies": latencies,
            "latency_p50": nearest_rank(50),
            "latency_p95": nearest_rank(95),
            "latency_p99": nearest_rank(99),
            "peak_queue_depth": self.peak_queue_depth,
            "fairness": jain_fairness_index(latencies),
            "deadline_misses": sum(
                1 for h in self.handles if h.deadline_missed
            ),
            "breaker_trips": {
                name: breaker.trips
                for name, breaker in sorted(self._breakers.items())
                if breaker.trips
            },
            "oversubscribed_pools": ledger.oversubscribed_pools(),
            "slot_seconds": {
                h.query_id: ledger.owner_usage(h.query_id).slot_seconds
                for h in self.handles
            },
        }


def scheduler_from_conf(driver: Driver,
                        conf: Optional[Configuration] = None) -> WorkloadScheduler:
    """Build a scheduler from the ``repro.sched.*`` configuration keys."""
    from repro.common.config import (
        SCHED_DEFAULT_POOL,
        SCHED_MAX_CONCURRENT,
        SCHED_POLICY,
        SCHED_POOLS,
    )

    conf = conf or driver.conf
    return WorkloadScheduler(
        driver,
        policy=(conf.get(SCHED_POLICY, "fifo") or "fifo").strip().lower(),
        max_concurrent=conf.get_int(SCHED_MAX_CONCURRENT, 0),
        pools=parse_pools(conf.get(SCHED_POOLS, "") or ""),
        default_pool=conf.get(SCHED_DEFAULT_POOL, "default") or "default",
    )
