"""The pure compute half of a map task, shared by inline and pooled modes.

A simulated map attempt does two separable things: it *computes* (scan a
split, push batches through the operator pipeline, encode ReduceSink
output) and it *accounts* (charge simulated disk/CPU/network seconds,
spill, emit buffers, sample progress).  The computation is a pure
function of ``(split, compiled plan spec)`` — no simulator state — so it
can run on a pool worker process while the single-threaded DES keeps
sole authority over simulated time.

:func:`run_map_compute` is that pure function.  The engine coroutine
replays the returned per-batch *records* against the simulator, charging
exactly the seconds the inline path would have: the record protocol
captures every mid-task quantity the engine's accounting reads (per-batch
byte shares, cumulative collector bytes, filled send buffers), and
:func:`make_batches` reproduces the engines' chunking bit for bit, so
simulated seconds and result digests are identical whether the compute
ran inline (``repro.parallel.workers=0``), on a worker, or inline again
after a worker crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.common.units import MB
from repro.engines.base import MapOutputCollector
from repro.engines.datampi.buffers import SendBuffer, SendPartitionList
from repro.exec.mapper import ExecMapper

#: Spec fields holding heavy, identity-sensitive objects.  The pool ships
#: them once per worker as *blobs* and replaces them with stable uids on
#: the per-task wire message; the worker rehydrates from its blob cache,
#: so every task over the same table/plan sees the *same* objects — which
#: is what lets the ``id()``-keyed vectorized kernel cache hit across
#: tasks inside one worker.
BLOB_FIELDS = ("stored", "operators", "small_tables")


@dataclass
class MapComputeSpec:
    """Everything :func:`run_map_compute` needs; picklable end to end."""

    kind: str  # "hadoop" | "datampi" | "llap"
    stored: object  # StoredFile (blob)
    row_start: int
    row_count: int
    scale: float
    columns: Optional[Sequence[str]]
    stats_conjuncts: Optional[Sequence[Tuple[str, str, object]]]
    operators: Sequence[object]  # map-side operator descriptors (blob)
    small_tables: Optional[dict]  # broadcast tables (blob)
    num_partitions: int
    map_only: bool
    vectorized: bool
    batch_target_mb: float = 8.0
    min_batch_rows: int = 200
    # datampi only: SPL per-partition capacity in *actual* bytes (the
    # engine's conf/scale arithmetic happens before submission)
    partition_capacity: float = 0.0


@dataclass
class MapComputeOutcome:
    """What the engine coroutine replays against the simulator.

    ``records`` is engine-specific, one entry per input batch in
    processing order:

    * hadoop — ``(batch_bytes, cumulative_collector_bytes)``
    * datampi — ``(batch_bytes, cumulative_spl_bytes, filled_buffers)``
    * llap — empty (one fragment-sized batch, no mid-task accounting)
    """

    bytes_to_read: float
    records: List[tuple] = field(default_factory=list)
    collector: Optional[MapOutputCollector] = None
    final_buffers: Optional[List[SendBuffer]] = None
    result: object = None  # repro.exec.mapper.MapTaskResult


def spec_for_split(
    kind: str,
    tagged,
    *,
    num_partitions: int,
    small_tables: Optional[dict],
    vectorized: bool,
    map_only: bool,
    batch_target_mb: float = 8.0,
    min_batch_rows: int = 200,
    partition_capacity: float = 0.0,
) -> MapComputeSpec:
    """Build a compute spec from an engine's :class:`TaggedSplit`."""
    split = tagged.split
    hints = tagged.map_input.hints
    return MapComputeSpec(
        kind=kind,
        stored=split.stored,
        row_start=split.row_start,
        row_count=split.row_count,
        scale=split.scale,
        columns=hints.columns,
        stats_conjuncts=hints.stats_conjuncts or None,
        operators=tagged.operators,
        small_tables=small_tables,
        num_partitions=num_partitions,
        map_only=map_only,
        vectorized=vectorized,
        batch_target_mb=batch_target_mb,
        min_batch_rows=min_batch_rows,
        partition_capacity=partition_capacity,
    )


def make_batches(rows, total_bytes: float, target_mb: float, min_rows: int):
    """Chunk a split's payload exactly as the engines always have.

    ``rows`` is a row list or a dense :class:`ColumnBatch` (both support
    ``len`` and contiguous slicing); each chunk carries a byte share
    proportional to its row count.  The arithmetic — including the
    empty-payload literal and the float division — is the engines'
    original ``_make_batches`` verbatim, so simulated charges cannot
    drift between inline and pooled execution.
    """
    if not rows:
        return [([], total_bytes)] if total_bytes > 0 else []
    target = target_mb * MB
    num_batches = max(1, int(total_bytes / target))
    batch_rows = max(min_rows, (len(rows) + num_batches - 1) // num_batches)
    batches = []
    for start in range(0, len(rows), batch_rows):
        chunk = rows[start : start + batch_rows]
        batches.append((chunk, total_bytes * len(chunk) / len(rows)))
    return batches


def _scan(spec: MapComputeSpec):
    """Scan the spec's row range; mirrors ``engines.base.scan_split``."""
    if spec.vectorized:
        result = spec.stored.scan_batch(
            spec.row_start,
            spec.row_count,
            columns=spec.columns,
            stats_conjuncts=spec.stats_conjuncts,
        )
        return result.batch, result.bytes_read * spec.scale
    result = spec.stored.scan(
        spec.row_start,
        spec.row_count,
        columns=spec.columns,
        stats_conjuncts=spec.stats_conjuncts,
    )
    return result.rows, result.bytes_read * spec.scale


def run_map_compute(spec: MapComputeSpec) -> MapComputeOutcome:
    """Run one split's scan + operator pipeline; no simulator access."""
    payload, bytes_to_read = _scan(spec)
    if spec.kind == "datampi":
        return _run_datampi(spec, payload, bytes_to_read)
    collector = MapOutputCollector(spec.num_partitions)
    mapper = ExecMapper(
        spec.operators,
        collector=collector if not spec.map_only else None,
        num_partitions=spec.num_partitions,
        small_tables=spec.small_tables,
        vectorized=spec.vectorized,
    )
    records: List[tuple] = []
    if spec.kind == "hadoop":
        for chunk, chunk_bytes in make_batches(
            payload, bytes_to_read, spec.batch_target_mb, spec.min_batch_rows
        ):
            mapper.process_batch(chunk)
            records.append((chunk_bytes, collector.total_bytes))
    else:  # llap: the whole fragment is one batch
        mapper.process_batch(payload)
    result = mapper.close()
    return MapComputeOutcome(
        bytes_to_read=bytes_to_read,
        records=records,
        collector=collector,
        result=result,
    )


def _run_datampi(
    spec: MapComputeSpec, payload, bytes_to_read: float
) -> MapComputeOutcome:
    # lazy: datampi.engine imports repro.parallel at module scope
    from repro.engines.datampi.engine import DataMPICollector

    spl = SendPartitionList(max(1, spec.num_partitions), spec.partition_capacity)
    collector = DataMPICollector(spl)
    mapper = ExecMapper(
        spec.operators,
        collector=collector if not spec.map_only else None,
        num_partitions=spec.num_partitions,
        small_tables=spec.small_tables,
        vectorized=spec.vectorized,
    )
    records: List[tuple] = []
    for chunk, chunk_bytes in make_batches(
        payload, bytes_to_read, spec.batch_target_mb, spec.min_batch_rows
    ):
        mapper.process_batch(chunk)
        # the filled buffers this batch produced, in emission order —
        # the O task stamps and emits them at the same simulated point
        # the inline path did
        records.append((chunk_bytes, spl.bytes_added, collector.take_full()))
    result = mapper.close()
    final_buffers = collector.take_full() + spl.drain()
    return MapComputeOutcome(
        bytes_to_read=bytes_to_read,
        records=records,
        final_buffers=final_buffers,
        result=result,
    )


def lean_spec(spec: MapComputeSpec) -> MapComputeSpec:
    """Copy of *spec* with the blob fields stripped (wire form)."""
    return replace(spec, **{name: None for name in BLOB_FIELDS})
