"""Regression tests for DES-kernel and buffer accounting bugs.

Each test here pins a specific accounting fix:

* ``Simulator.cancel`` after the callback fired must not decrement the
  pending-work counter a second time (the counter was consumed when the
  call executed);
* ``Bandwidth._on_timer`` must credit the float residue of *every*
  transfer finishing in the tick, not just the timer target;
* ``SendQueue`` capacity must count buffers popped by the sender but not
  yet transmitting (the get -> transfer_started window);
* ``ReceiveManager.deliver`` must split a buffer straddling the cache
  budget and ``release_partition`` must free exactly what was cached;
* a stale wakeup from an abandoned wait target must not double-resume a
  process;
* the same-instant FIFO fast path must preserve scheduling order.
"""

import pytest

from repro.common.errors import ExecutionError
from repro.common.kv import KeyValue
from repro.engines.datampi.buffers import ReceiveManager, SendBuffer, SendQueue
from repro.simulate import Cluster, ClusterSpec, Interrupt, Simulator
from repro.simulate.resources import Bandwidth


class TestCancelAfterFire:
    def test_cancel_of_executed_handle_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.call_at(1.0, lambda: fired.append("a"))
        sim.run()
        assert fired == ["a"]
        # the buggy kernel decremented the pending counter here ...
        sim.cancel(handle)
        sim.cancel(handle)  # idempotent too
        # ... which made the next run() stop with regular work pending
        sim.call_at(2.0, lambda: fired.append("b"))
        sim.call_at(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_cancel_before_fire_still_cancels(self):
        sim = Simulator()
        fired = []
        handle = sim.call_at(1.0, lambda: fired.append("a"))
        sim.call_at(2.0, lambda: fired.append("b"))
        sim.cancel(handle)
        sim.run()
        assert fired == ["b"]


class TestBandwidthResidue:
    def test_equal_transfers_finish_together(self):
        sim = Simulator()
        link = Bandwidth(sim, rate_bytes_per_s=100.0)
        done = []
        for label in ("x", "y"):
            link.transfer(50.0, category=label).add_callback(
                lambda _v, _l=label: done.append((_l, sim.now))
            )
        sim.run()
        # two equal flows sharing the link finish at the same instant;
        # the buggy timer left the non-target flow with a float residue
        # and an extra (later) timer tick
        assert [t for _l, t in done] == [1.0, 1.0]
        assert link.active_transfers == 0

    def test_residue_credited_to_byte_counters(self):
        sim = Simulator()
        link = Bandwidth(sim, rate_bytes_per_s=64.0)
        # three unequal flows whose shares produce float residues
        for nbytes in (10.0, 20.0, 30.0):
            link.transfer(nbytes, category="c")
        sim.run()
        assert link.bytes_moved == pytest.approx(60.0, abs=1e-9)
        assert link.categorized["c"] == pytest.approx(60.0, abs=1e-9)


class TestSendQueueHandedWindow:
    def test_put_blocked_between_get_and_transfer_started(self):
        sim = Simulator()
        queue = SendQueue(sim, capacity=1)
        first, second = SendBuffer(0), SendBuffer(1)
        assert queue.put(first).triggered
        taken = queue.get()
        assert taken.triggered and taken.value is first
        # the slot is NOT free yet: the sender holds the buffer but has
        # not started transmitting — the buggy backlog ignored this
        blocked = queue.put(second)
        assert not blocked.triggered
        assert queue.backlog == 1
        queue.transfer_started()
        assert not blocked.triggered
        queue.transfer_finished()
        sim.run()
        assert blocked.triggered

    def test_transfer_started_requires_pending_get(self):
        queue = SendQueue(Simulator(), capacity=2)
        with pytest.raises(ExecutionError):
            queue.transfer_started()


@pytest.fixture()
def cluster():
    sim = Simulator()
    return Cluster(sim, ClusterSpec())


class TestReceivePartialSpill:
    def _deliver(self, sim, manager, buffers):
        def proc():
            for buffer in buffers:
                yield from manager.deliver(buffer.partition, buffer)

        sim.spawn(proc())
        sim.run()

    def test_straddling_buffer_split_between_cache_and_disk(self, cluster):
        sim = cluster.sim
        manager = ReceiveManager(
            sim, [cluster.workers[0]], cache_budget_per_node=100.0
        )
        pairs = [KeyValue((1,), ("v",))]
        self._deliver(sim, manager, [
            SendBuffer(0, pairs=pairs, actual_bytes=70, scale=1.0),
            SendBuffer(0, pairs=pairs, actual_bytes=70, scale=1.0),
        ])
        # the all-or-nothing version spilled the whole second buffer (70);
        # the fix caches the 30 bytes that still fit and spills 40
        assert manager.cached_partition_bytes[0] == pytest.approx(100.0)
        assert manager.spilled_bytes[0] == pytest.approx(40.0)
        assert manager.received_bytes[0] == pytest.approx(140.0)

    def test_release_partition_is_exact(self, cluster):
        sim = cluster.sim
        node = cluster.workers[0]
        # two partitions sharing one node's cache budget
        manager = ReceiveManager(sim, [node, node], cache_budget_per_node=100.0)
        pairs = [KeyValue((1,), ("v",))]
        self._deliver(sim, manager, [
            SendBuffer(0, pairs=pairs, actual_bytes=60, scale=1.0),
            SendBuffer(1, pairs=pairs, actual_bytes=60, scale=1.0),
        ])
        # partition 1 straddled: only 40 of its 60 bytes are cached
        assert manager.cached_bytes[node] == pytest.approx(100.0)
        manager.release_partition(1)
        assert manager.cached_bytes[node] == pytest.approx(60.0)
        assert manager.cached_partition_bytes[1] == 0.0
        manager.release_partition(0)
        assert manager.cached_bytes[node] == pytest.approx(0.0)

    def test_double_release_is_noop(self, cluster):
        sim = cluster.sim
        node = cluster.workers[0]
        manager = ReceiveManager(sim, [node], cache_budget_per_node=1000.0)
        pairs = [KeyValue((1,), ("v",))]
        self._deliver(
            sim, manager,
            [SendBuffer(0, pairs=pairs, actual_bytes=80, scale=1.0)],
        )
        manager.release_partition(0)
        assert manager.cached_bytes[node] == pytest.approx(0.0)
        manager.release_partition(0)  # nothing cached anymore: no-op
        assert manager.cached_bytes[node] == pytest.approx(0.0)

    def test_over_free_raises(self, cluster):
        sim = cluster.sim
        node = cluster.workers[0]
        manager = ReceiveManager(sim, [node], cache_budget_per_node=1000.0)
        pairs = [KeyValue((1,), ("v",))]
        self._deliver(
            sim, manager,
            [SendBuffer(0, pairs=pairs, actual_bytes=80, scale=1.0)],
        )
        # corrupt the node-level ledger: the release now frees more than
        # the node holds, which must surface as an error, not be clamped
        manager.cached_bytes[node] = 30.0
        with pytest.raises(ExecutionError):
            manager.release_partition(0)


class TestStaleWakeup:
    def test_abandoned_event_does_not_double_resume(self):
        sim = Simulator()
        abandoned = sim.event()
        log = []

        def waiter():
            try:
                yield abandoned
                log.append("unexpected")
            except Interrupt as exc:
                log.append(type(exc).__name__)
            # new wait target; the stale wakeup from `abandoned` must not
            # resume us early out of this timeout
            yield sim.timeout(5.0)
            log.append(sim.now)

        process = sim.spawn(waiter())

        def driver():
            yield sim.timeout(1.0)
            process.interrupt("test")
            yield sim.timeout(1.0)
            # fires the abandoned event while the process waits elsewhere
            abandoned.trigger("late")

        sim.spawn(driver())
        sim.run()
        assert log == ["Interrupt", 6.0]

    def test_wakeup_after_normal_resume_is_ignored(self):
        sim = Simulator()
        first = sim.event()
        second = sim.event()
        log = []

        def waiter():
            value = yield first
            log.append(value)
            value = yield second
            log.append(value)

        sim.spawn(waiter())

        def driver():
            yield sim.timeout(1.0)
            first.trigger("one")
            yield sim.timeout(1.0)
            second.trigger("two")

        sim.spawn(driver())
        sim.run()
        assert log == ["one", "two"]


class TestSameInstantFifo:
    def test_call_soon_preserves_issue_order(self):
        sim = Simulator()
        order = []

        def root():
            for label in "abc":
                sim.call_soon(order.append, label)
            sim.call_at(sim.now, order.append, "d")  # same instant -> FIFO
            sim.call_soon(order.append, "e")

        sim.call_soon(root)
        sim.run()
        assert order == list("abcde")

    def test_due_heap_entries_run_before_soon_entries(self):
        sim = Simulator()
        order = []
        # scheduled strictly in the future -> goes through the heap
        sim.call_at(1.0, order.append, "heap")

        def at_one():
            # runs at t=1.0 *before* the heap entry?  No: the heap entry
            # carries an earlier sequence, so it must run first once due.
            order.append("starter")
            sim.call_soon(order.append, "soon")

        # both due at 1.0; the call_at above was scheduled first
        sim.call_at(1.0, at_one)
        sim.run()
        assert order == ["heap", "starter", "soon"]

    def test_nested_same_instant_callbacks_keep_clock(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.call_soon(lambda: seen.append(sim.now))
            sim.call_at(sim.now, lambda: seen.append(sim.now))

        sim.call_at(2.5, outer)
        sim.run()
        assert seen == [2.5, 2.5]
        assert sim.now == 2.5


class TestAgendaCompaction:
    """Lazily-cancelled heap entries must not bloat the agenda forever
    (a cancel-heavy deadline workload used to hold every dead timer
    until its original fire time — and pin the clock there)."""

    def test_cancel_heavy_agenda_stays_bounded(self):
        sim = Simulator()
        fired = []
        handles = [
            sim.call_at(1000.0 + tick, fired.append, tick)
            for tick in range(10_000)
        ]
        # a deadline workload: almost every timer is cancelled long
        # before it fires (the query finished first)
        survivors = set(range(0, 10_000, 100))
        for tick, handle in enumerate(handles):
            if tick not in survivors:
                sim.cancel(handle)
        assert sim.agenda_size < 2_000, (
            "cancelled entries were never compacted out of the agenda"
        )
        sim.run()
        assert fired == sorted(survivors)
        assert sim.now == 1000.0 + max(survivors)
        # only the sub-threshold residue of dead entries may remain
        assert sim.agenda_size < 200

    def test_compaction_keeps_pop_order_and_clock(self):
        sim = Simulator()
        order = []
        keep = [sim.call_at(when, order.append, when)
                for when in (5.0, 1.0, 3.0)]
        drop = [sim.call_at(2.0 + n * 0.001, order.append, -1.0)
                for n in range(200)]
        for handle in drop:
            sim.cancel(handle)
        sim.run()
        assert order == [1.0, 3.0, 5.0]
        assert sim.now == 5.0
        assert keep[0].cancelled is False

    def test_orphaned_timeout_no_longer_pins_the_clock(self):
        """A deadline raced and lost: cancelling its Timeout must let the
        run finish at the real last event, not at the dead deadline."""
        sim = Simulator()

        def winner():
            yield sim.timeout(1.0)

        def racer():
            deadline = sim.timeout(500.0)
            yield sim.any_of([sim.spawn(winner()), deadline])
            deadline.cancel()

        sim.spawn(racer())
        sim.run()
        assert sim.now == 1.0


class TestCallbackDetach:
    """Losing wait targets must not accumulate dead callbacks on
    long-lived shared events (thousands of queries racing deadlines
    against one shutdown event used to leak one callback each)."""

    def test_any_of_detaches_from_losing_children(self):
        sim = Simulator()
        shutdown = sim.event()  # long-lived: never triggers

        def worker():
            for _ in range(50):
                yield sim.any_of([sim.timeout(1.0), shutdown])

        sim.spawn(worker())
        sim.run()
        assert shutdown.callback_count == 0, (
            "AnyOf left stale callbacks on the losing child"
        )

    def test_interrupted_process_detaches_from_wait_target(self):
        sim = Simulator()
        shutdown = sim.event()
        waits = []

        def worker():
            for _ in range(50):
                try:
                    waits.append(sim.now)
                    yield shutdown
                except Interrupt:
                    pass

        process = sim.spawn(worker())

        def driver():
            for _ in range(50):
                yield sim.timeout(1.0)
                process.interrupt("rebalance")

        sim.spawn(driver())
        sim.run()
        assert len(waits) == 50
        assert shutdown.callback_count == 0, (
            "interrupted process left its stale wakeup registered"
        )

    def test_all_of_still_collects_every_child(self):
        sim = Simulator()
        events = [sim.event() for _ in range(3)]
        seen = []

        def waiter():
            values = yield sim.all_of(events)
            seen.append(values)

        sim.spawn(waiter())

        def driver():
            for n, event in enumerate(events):
                yield sim.timeout(1.0)
                event.trigger(n)

        sim.spawn(driver())
        sim.run()
        assert seen == [[0, 1, 2]]
