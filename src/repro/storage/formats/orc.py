"""ORCFile-style columnar format (paper §V-C, Table II).

Faithful to the parts of ORC that matter for the evaluation:

* rows are grouped into **stripes**;
* within a stripe every column is stored as its own stream with a
  type-appropriate encoding — run-length / zigzag-varint-delta for
  integers, dictionary or direct for strings, raw IEEE-754 for doubles,
  bit-packing for booleans — plus a null bitmap;
* each stream is zlib-compressed (ORC's default codec);
* stripes carry min/max **statistics** per column, enabling predicate
  pushdown (stripe skipping), and readers fetch only the **columns the
  query needs**.

The reproduction really encodes (and can decode — round-trip tested) the
column streams, so the bytes charged to the simulated disk reflect the
true compressibility of the data, which is where the ~22 % Text→ORC win
in Table II comes from.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from array import array

from repro.common.errors import StorageError
from repro.common.rows import ColumnBatch, DataType, Schema, pack_column
from repro.storage.formats.base import (
    BatchScanResult,
    FileFormat,
    Row,
    ScanResult,
    StatsConjunct,
    StoredFile,
    evaluate_stats_conjunct,
    register_format,
)

_F64 = struct.Struct(">d")
_STRIPE_FOOTER_BYTES = 64  # stream directory + encodings
_FILE_FOOTER_BYTES = 256  # schema, stripe index, file stats
_DICT_THRESHOLD = 0.5  # dictionary-encode when ndv/rows is below this


# ---------------------------------------------------------------------------
# varint / zigzag primitives
# ---------------------------------------------------------------------------

def write_varint(value: int, out: bytearray) -> None:
    if value < 0:
        raise StorageError("varint requires non-negative value")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def zigzag(value: int) -> int:
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    return value >> 1 if value % 2 == 0 else -((value + 1) >> 1)


# ---------------------------------------------------------------------------
# column encoders (operate on the non-null values; nulls go in a bitmap)
# ---------------------------------------------------------------------------

def _encode_null_bitmap(values: Sequence[object]) -> bytes:
    bits = bytearray((len(values) + 7) // 8)
    for position, value in enumerate(values):
        if value is None:
            bits[position // 8] |= 1 << (position % 8)
    return bytes(bits)


def _decode_null_bitmap(bitmap: bytes, count: int) -> List[bool]:
    return [bool(bitmap[i // 8] & (1 << (i % 8))) for i in range(count)]


def _encode_int_stream(values: List[int]) -> Tuple[str, bytes]:
    """RLE when runs dominate, zigzag-delta varints otherwise."""
    if not values:
        return "delta", b""
    runs = 1
    for previous, current in zip(values, values[1:]):
        if current != previous:
            runs += 1
    out = bytearray()
    if len(values) / runs >= 2.0:  # average run length >= 2 -> RLE pays off
        run_value = values[0]
        run_length = 1
        for current in values[1:]:
            if current == run_value:
                run_length += 1
            else:
                write_varint(run_length, out)
                write_varint(zigzag(run_value), out)
                run_value, run_length = current, 1
        write_varint(run_length, out)
        write_varint(zigzag(run_value), out)
        return "rle", bytes(out)
    previous = 0
    for current in values:
        write_varint(zigzag(current - previous), out)
        previous = current
    return "delta", bytes(out)


def _decode_int_stream(encoding: str, data: bytes, count: int) -> List[int]:
    values: List[int] = []
    offset = 0
    if encoding == "rle":
        while len(values) < count:
            run_length, offset = read_varint(data, offset)
            encoded, offset = read_varint(data, offset)
            values.extend([unzigzag(encoded)] * run_length)
        return values[:count]
    previous = 0
    for _ in range(count):
        encoded, offset = read_varint(data, offset)
        previous += unzigzag(encoded)
        values.append(previous)
    return values


def _encode_string_stream(values: List[str]) -> Tuple[str, bytes]:
    """Dictionary encoding when the column repeats enough, else direct."""
    distinct = sorted(set(values))
    out = bytearray()
    if values and len(distinct) / len(values) < _DICT_THRESHOLD:
        index_of = {text: position for position, text in enumerate(distinct)}
        write_varint(len(distinct), out)
        for text in distinct:
            data = text.encode("utf-8")
            write_varint(len(data), out)
            out += data
        for text in values:
            write_varint(index_of[text], out)
        return "dict", bytes(out)
    for text in values:
        data = text.encode("utf-8")
        write_varint(len(data), out)
        out += data
    return "direct", bytes(out)


def _decode_string_stream(encoding: str, data: bytes, count: int) -> List[str]:
    offset = 0
    if encoding == "dict":
        size, offset = read_varint(data, offset)
        dictionary = []
        for _ in range(size):
            length, offset = read_varint(data, offset)
            dictionary.append(data[offset : offset + length].decode("utf-8"))
            offset += length
        values = []
        for _ in range(count):
            index, offset = read_varint(data, offset)
            values.append(dictionary[index])
        return values
    values = []
    for _ in range(count):
        length, offset = read_varint(data, offset)
        values.append(data[offset : offset + length].decode("utf-8"))
        offset += length
    return values


def _encode_double_stream(values: List[float]) -> Tuple[str, bytes]:
    return "raw", b"".join(_F64.pack(value) for value in values)


def _decode_double_stream(data: bytes, count: int) -> List[float]:
    return [_F64.unpack_from(data, i * 8)[0] for i in range(count)]


def _encode_bool_stream(values: List[bool]) -> Tuple[str, bytes]:
    bits = bytearray((len(values) + 7) // 8)
    for position, value in enumerate(values):
        if value:
            bits[position // 8] |= 1 << (position % 8)
    return "bitpack", bytes(bits)


def _decode_bool_stream(data: bytes, count: int) -> List[bool]:
    return [bool(data[i // 8] & (1 << (i % 8))) for i in range(count)]


# ---------------------------------------------------------------------------
# stripes
# ---------------------------------------------------------------------------

@dataclass
class ColumnChunk:
    """One column's streams within a stripe."""

    encoding: str
    null_bitmap: bytes
    compressed: bytes
    uncompressed_bytes: int

    @property
    def stored_bytes(self) -> int:
        return len(self.compressed) + len(self.null_bitmap)


@dataclass
class Stripe:
    row_start: int
    row_count: int
    chunks: Dict[str, ColumnChunk] = field(default_factory=dict)
    stats: Dict[str, Tuple[object, object]] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(chunk.stored_bytes for chunk in self.chunks.values()) + _STRIPE_FOOTER_BYTES

    def bytes_for_columns(self, columns: Optional[Sequence[str]]) -> int:
        if columns is None:
            return self.total_bytes
        wanted = {name.lower() for name in columns}
        selected = sum(
            chunk.stored_bytes
            for name, chunk in self.chunks.items()
            if name.lower() in wanted
        )
        return selected + _STRIPE_FOOTER_BYTES

    def may_contain(self, conjuncts: Optional[Sequence[StatsConjunct]]) -> bool:
        if not conjuncts:
            return True
        for conjunct in conjuncts:
            column = conjunct[0].lower()
            if column not in self.stats:
                continue
            minimum, maximum = self.stats[column]
            if not evaluate_stats_conjunct(conjunct, minimum, maximum):
                return False
        return True


def _encode_column(dtype: DataType, values: List[object]) -> ColumnChunk:
    null_bitmap = _encode_null_bitmap(values)
    present = [value for value in values if value is not None]
    if dtype in (DataType.INT, DataType.BIGINT):
        encoding, raw = _encode_int_stream(present)
    elif dtype is DataType.DOUBLE:
        encoding, raw = _encode_double_stream(present)
    elif dtype in (DataType.STRING, DataType.DATE):
        encoding, raw = _encode_string_stream(present)
    elif dtype is DataType.BOOLEAN:
        encoding, raw = _encode_bool_stream(present)
    else:
        raise StorageError(f"ORC cannot encode {dtype}")
    compressed = zlib.compress(raw, 6)
    if len(compressed) >= len(raw):
        compressed = raw  # ORC stores incompressible chunks uncompressed
    return ColumnChunk(encoding, null_bitmap, compressed, len(raw))


def _decode_column(dtype: DataType, chunk: ColumnChunk, count: int) -> List[object]:
    nulls = _decode_null_bitmap(chunk.null_bitmap, count)
    present_count = count - sum(nulls)
    raw = chunk.compressed
    if chunk.uncompressed_bytes != len(raw):
        raw = zlib.decompress(raw)
    if dtype in (DataType.INT, DataType.BIGINT):
        present = _decode_int_stream(chunk.encoding, raw, present_count)
    elif dtype is DataType.DOUBLE:
        present = _decode_double_stream(raw, present_count)
    elif dtype in (DataType.STRING, DataType.DATE):
        present = _decode_string_stream(chunk.encoding, raw, present_count)
    elif dtype is DataType.BOOLEAN:
        present = _decode_bool_stream(raw, present_count)
    else:
        raise StorageError(f"ORC cannot decode {dtype}")
    iterator = iter(present)
    return [None if is_null else next(iterator) for is_null in nulls]


# ---------------------------------------------------------------------------
# the stored file
# ---------------------------------------------------------------------------

def _concat_column(pieces: List[Sequence]) -> Sequence:
    """Join per-stripe column slices, preserving typed buffers when every
    contributing stripe packed to the same typecode."""
    if not pieces:
        return []
    if len(pieces) == 1:
        return pieces[0]
    first = pieces[0]
    if isinstance(first, array) and all(
        isinstance(piece, array) and piece.typecode == first.typecode
        for piece in pieces[1:]
    ):
        out = array(first.typecode)
        for piece in pieces:
            out.extend(piece)
        return out
    out_list: list = []
    for piece in pieces:
        out_list.extend(piece)
    return out_list


class OrcStoredFile(StoredFile):
    """Stripe-organized columnar file with stats and real encoded streams."""

    def __init__(self, schema: Schema, rows: List[Row], stripe_rows: int):
        super().__init__(schema, rows)
        self.stripe_rows = stripe_rows
        self.stripes: List[Stripe] = []
        # decoded column streams, one list-of-columns per stripe — the
        # per-column value lists computed while encoding ARE the decoded
        # representation (packed into typed buffers where the values
        # allow, see pack_column), so the columnar scan (scan_batch)
        # serves them directly without ever materializing intermediate
        # row tuples
        self._stripe_columns: List[List[Sequence]] = []
        for start in range(0, len(rows), stripe_rows):
            block = rows[start : start + stripe_rows]
            stripe = Stripe(row_start=start, row_count=len(block))
            decoded: List[Sequence] = []
            for position, column in enumerate(schema.columns):
                values = [row[position] for row in block]
                decoded.append(pack_column(values))
                stripe.chunks[column.name.lower()] = _encode_column(column.dtype, values)
                present = [value for value in values if value is not None]
                if present:
                    stripe.stats[column.name.lower()] = (min(present), max(present))
                else:
                    stripe.stats[column.name.lower()] = (None, None)
            self.stripes.append(stripe)
            self._stripe_columns.append(decoded)

    @property
    def total_bytes(self) -> int:
        return sum(stripe.total_bytes for stripe in self.stripes) + _FILE_FOOTER_BYTES

    def bytes_for_range(self, row_start: int, row_count: int) -> int:
        """Bytes for a row range; partially-overlapped stripes charge
        proportionally (sampled rows stand for many logical rows, so a
        "split" may cover a fraction of one encoded stripe)."""
        row_end = row_start + row_count
        total = 0.0
        for stripe in self.stripes:
            if stripe.row_start >= row_end:
                break
            overlap = self._overlap_fraction(stripe, row_start, row_end)
            if overlap > 0:
                total += stripe.total_bytes * overlap
        return int(total)

    @staticmethod
    def _overlap_fraction(stripe: Stripe, row_start: int, row_end: int) -> float:
        if stripe.row_count == 0:
            return 0.0
        lo = max(stripe.row_start, row_start)
        hi = min(stripe.row_start + stripe.row_count, row_end)
        return max(0, hi - lo) / stripe.row_count

    def stripes_in_range(self, row_start: int, row_count: int) -> List[Stripe]:
        row_end = row_start + row_count
        return [
            stripe
            for stripe in self.stripes
            if stripe.row_start < row_end
            and stripe.row_start + stripe.row_count > row_start
        ]

    def scan(
        self,
        row_start: int,
        row_count: int,
        columns: Optional[Sequence[str]] = None,
        stats_conjuncts: Optional[Sequence[StatsConjunct]] = None,
    ) -> ScanResult:
        rows: List[Row] = []
        bytes_read = 0.0
        skipped = 0
        row_end = row_start + row_count
        for stripe in self.stripes_in_range(row_start, row_count):
            lo = max(stripe.row_start, row_start)
            hi = min(stripe.row_start + stripe.row_count, row_end)
            if not stripe.may_contain(stats_conjuncts):
                skipped += hi - lo
                continue  # predicate pushdown: stripe eliminated via stats
            overlap = self._overlap_fraction(stripe, row_start, row_end)
            bytes_read += stripe.bytes_for_columns(columns) * overlap
            rows.extend(self.rows[lo:hi])
        return ScanResult(rows=rows, bytes_read=int(bytes_read), rows_skipped=skipped)

    def scan_batch(
        self,
        row_start: int,
        row_count: int,
        columns: Optional[Sequence[str]] = None,
        stats_conjuncts: Optional[Sequence[StatsConjunct]] = None,
    ) -> BatchScanResult:
        """Columnar scan straight from the decoded stripe streams.

        No intermediate row tuples: surviving stripes contribute slices
        of their per-column value streams (typed ``array`` slices stay
        typed, so the output batch keeps the cheap-to-pickle layout).
        Stripe skipping and the byte-charge arithmetic are the same
        statements as :meth:`scan`, so the cost model cannot diverge
        between the two paths.
        """
        width = len(self.schema)
        parts: List[List[Sequence]] = [[] for _ in range(width)]
        size = 0
        bytes_read = 0.0
        skipped = 0
        row_end = row_start + row_count
        for stripe_index, stripe in enumerate(self.stripes):
            if stripe.row_start >= row_end:
                break
            lo = max(stripe.row_start, row_start)
            hi = min(stripe.row_start + stripe.row_count, row_end)
            if hi <= lo:
                continue
            if not stripe.may_contain(stats_conjuncts):
                skipped += hi - lo
                continue  # predicate pushdown: stripe eliminated via stats
            overlap = self._overlap_fraction(stripe, row_start, row_end)
            bytes_read += stripe.bytes_for_columns(columns) * overlap
            decoded = self._stripe_columns[stripe_index]
            local_lo = lo - stripe.row_start
            local_hi = hi - stripe.row_start
            for position in range(width):
                parts[position].append(decoded[position][local_lo:local_hi])
            size += hi - lo
        out_columns = [_concat_column(pieces) for pieces in parts]
        return BatchScanResult(
            batch=ColumnBatch(out_columns, size),
            bytes_read=int(bytes_read),
            rows_skipped=skipped,
        )

    def stripe_cache_key(
        self,
        path: str,
        stripe_index: int,
        columns: Optional[Sequence[str]] = None,
    ) -> Tuple[str, int, Optional[Tuple[str, ...]]]:
        """Stable identity of one stripe's decoded streams for node-local
        caching (the LLAP engine's columnar cache).

        Keyed by *(file path, stripe row offset, requested-column
        signature)*: the path names the file, the row offset names the
        stripe within it, and the column signature distinguishes
        projections (ORC caches column chunks, not whole rows).  Cache
        consumers must additionally verify the stored-file identity —
        a path rewritten after DROP/INSERT OVERWRITE reuses keys but
        not data (see ``repro.engines.llap.cache``).
        """
        stripe = self.stripes[stripe_index]
        if columns is None:
            signature = None
        else:
            signature = tuple(sorted({name.lower() for name in columns}))
        return (path, stripe.row_start, signature)

    def decoded_stripe_columns(self, stripe_index: int) -> List[Sequence]:
        """One stripe's decoded per-column value lists (shared,
        read-only).  This is the object a daemon cache retains so a hit
        skips both the simulated disk read and the decode work."""
        return self._stripe_columns[stripe_index]

    def decode_stripe(self, stripe_index: int) -> List[Row]:
        """Fully decode one stripe from its encoded streams (round-trip
        path; the fast path above serves rows from memory)."""
        stripe = self.stripes[stripe_index]
        columns = []
        for column in self.schema.columns:
            chunk = stripe.chunks[column.name.lower()]
            columns.append(_decode_column(column.dtype, chunk, stripe.row_count))
        return [tuple(column[i] for column in columns) for i in range(stripe.row_count)]


class OrcFormat(FileFormat):
    name = "orc"

    def __init__(self, stripe_rows: int = 1024):
        if stripe_rows < 1:
            raise StorageError("stripe_rows must be >= 1")
        self.stripe_rows = stripe_rows

    def build(self, schema: Schema, rows: List[Row]) -> OrcStoredFile:
        return OrcStoredFile(schema, rows, self.stripe_rows)


register_format(OrcFormat())
