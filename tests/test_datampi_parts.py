"""Unit tests for the DataMPI building blocks: MPI layer, SPL, queues."""

import pytest

from repro.common.errors import ExecutionError
from repro.common.kv import KeyValue
from repro.common.units import MB
from repro.engines.datampi.buffers import (
    ReceiveManager,
    SendBuffer,
    SendPartitionList,
    SendQueue,
)
from repro.engines.datampi.mpi import DynamicBarrier, SimulatedMPI
from repro.simulate import Cluster, ClusterSpec, Simulator


@pytest.fixture()
def cluster():
    sim = Simulator()
    return Cluster(sim, ClusterSpec())


class TestSimulatedMPI:
    def test_isend_transfers_bytes(self, cluster):
        sim = cluster.sim
        mpi = SimulatedMPI(cluster)
        done = []

        def proc():
            request = mpi.isend(cluster.workers[0], cluster.workers[1], 117 * MB)
            assert not request.done
            yield request.event
            done.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert done[0] == pytest.approx(1.0, rel=1e-2)
        assert mpi.messages_sent == 1

    def test_same_node_send_immediate(self, cluster):
        mpi = SimulatedMPI(cluster)
        request = mpi.isend(cluster.workers[0], cluster.workers[0], 10 * MB)
        assert request.done

    def test_waitall(self, cluster):
        sim = cluster.sim
        mpi = SimulatedMPI(cluster)
        done = []

        def proc():
            requests = [
                mpi.isend(cluster.workers[0], cluster.workers[i], 58.5 * MB)
                for i in (1, 2)
            ]
            yield mpi.waitall(requests)
            done.append(sim.now)

        sim.spawn(proc())
        sim.run()
        # two transfers share the sender's TX: each 58.5 MB -> together 1s
        assert done[0] == pytest.approx(1.0, rel=1e-2)


class TestDynamicBarrier:
    def test_all_members_release_together(self):
        sim = Simulator()
        barrier = DynamicBarrier(sim)
        release_times = []

        def member(delay):
            yield sim.timeout(delay)
            yield barrier.arrive()
            release_times.append(sim.now)

        for delay in (1.0, 5.0, 2.0):
            barrier.register()
            sim.spawn(member(delay))
        sim.run()
        assert release_times == [5.0, 5.0, 5.0]  # everyone waits for the slowest

    def test_deregister_releases_waiters(self):
        sim = Simulator()
        barrier = DynamicBarrier(sim)
        released = []

        def waiter():
            yield barrier.arrive()
            released.append(sim.now)

        def leaver():
            yield sim.timeout(3.0)
            barrier.deregister()

        barrier.register()
        barrier.register()
        sim.spawn(waiter())
        sim.spawn(leaver())
        sim.run()
        assert released == [3.0]

    def test_deregister_empty_rejected(self):
        with pytest.raises(ExecutionError):
            DynamicBarrier(Simulator()).deregister()


def kv(i):
    return KeyValue((i,), ("payload" * 4,))


class TestSendPartitionList:
    def test_fills_and_rotates(self):
        spl = SendPartitionList(num_partitions=2, partition_capacity_bytes=100)
        filled = []
        for i in range(12):
            buffer = spl.add(i % 2, kv(i))
            if buffer is not None:
                filled.append(buffer)
        assert filled, "partitions must fill at 100-byte capacity"
        assert all(buffer.actual_bytes >= 100 for buffer in filled)
        leftovers = spl.drain()
        total_pairs = sum(len(b.pairs) for b in filled + leftovers)
        assert total_pairs == 12

    def test_drain_resets(self):
        spl = SendPartitionList(2, 1e9)
        spl.add(0, kv(1))
        assert spl.drain()
        assert spl.drain() == []
        assert spl.buffered_bytes == 0

    def test_zero_partitions_rejected(self):
        with pytest.raises(ExecutionError):
            SendPartitionList(0, 100)


class TestSendQueue:
    def test_put_get_fifo(self):
        sim = Simulator()
        queue = SendQueue(sim, capacity=2)
        a, b = SendBuffer(0), SendBuffer(1)
        assert queue.put(a).triggered
        assert queue.put(b).triggered
        got = queue.get()
        assert got.triggered and got.value is a

    def test_backpressure_until_transfer_finished(self):
        sim = Simulator()
        queue = SendQueue(sim, capacity=1)
        first = SendBuffer(0)
        second = SendBuffer(1)
        assert queue.put(first).triggered
        blocked = queue.put(second)
        assert not blocked.triggered  # queue full
        taken = queue.get()
        assert taken.value is first
        queue.transfer_started()
        assert not blocked.triggered  # still in flight
        queue.transfer_finished()
        sim.run()
        assert blocked.triggered

    def test_get_waits_for_item(self):
        sim = Simulator()
        queue = SendQueue(sim, capacity=4)
        pending = queue.get()
        assert not pending.triggered
        buffer = SendBuffer(0)
        queue.put(buffer)
        assert pending.triggered and pending.value is buffer

    def test_finish_without_start_rejected(self):
        with pytest.raises(ExecutionError):
            SendQueue(Simulator(), 1).transfer_finished()

    def test_tracks_backlog(self):
        sim = Simulator()
        queue = SendQueue(sim, capacity=4)
        queue.put(SendBuffer(0))
        queue.put(SendBuffer(1))
        assert queue.backlog == 2


class TestReceiveManager:
    def run(self, generator, sim):
        sim.spawn(generator)
        sim.run()

    def test_cache_until_budget_then_spill(self, cluster):
        sim = cluster.sim
        manager = ReceiveManager(sim, [cluster.workers[0]], cache_budget_per_node=100.0)

        def deliver():
            small = SendBuffer(0, pairs=[kv(1)], actual_bytes=60, scale=1.0)
            big = SendBuffer(0, pairs=[kv(2)], actual_bytes=60, scale=1.0)
            yield from manager.deliver(0, small)
            yield from manager.deliver(0, big)  # straddles the budget

        self.run(deliver(), sim)
        assert manager.received_bytes[0] == 120
        # the second buffer is split: 40 bytes still fit, 20 spill
        assert manager.cached_partition_bytes[0] == 100
        assert manager.spilled_bytes[0] == 20
        assert len(manager.pairs[0]) == 2
        assert sim.now > 0  # the spill paid disk time

    def test_release_partition_frees_cache(self, cluster):
        sim = cluster.sim
        node = cluster.workers[0]
        manager = ReceiveManager(sim, [node], cache_budget_per_node=1000.0)

        def deliver():
            yield from manager.deliver(0, SendBuffer(0, pairs=[kv(1)], actual_bytes=80, scale=1.0))

        self.run(deliver(), sim)
        assert manager.cached_bytes[node] == 80
        manager.release_partition(0)
        assert manager.cached_bytes[node] == 0
