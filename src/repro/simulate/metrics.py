"""dstat-style resource sampler (paper, Fig 13).

Samples the cluster once per simulated second: CPU utilization, I/O-wait,
disk read/write bandwidth, network TX bandwidth and memory footprint,
aggregated over the worker nodes exactly as the paper's `dstat` runs were.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.simulate.cluster import Cluster


@dataclass(frozen=True)
class ResourceSample:
    """One 1 Hz observation of cluster-wide resource usage."""

    time: float
    cpu_utilization: float  # busy slots / total slots, 0..1
    io_wait: float  # tasks blocked on disk / total slots, 0..1
    disk_read_bps: float
    disk_write_bps: float
    net_tx_bps: float
    memory_used: float


class MetricsSampler:
    """Periodically samples a :class:`Cluster` into a list of samples.

    Driven by simulator callbacks (not a process) so stopping it never
    leaves a dangling event in the agenda.
    """

    def __init__(self, cluster: Cluster, interval: float = 1.0):
        self.cluster = cluster
        self.interval = interval
        self.samples: List[ResourceSample] = []
        self._running = False
        self._generation = 0
        self._last_disk_read = 0.0
        self._last_disk_write = 0.0
        self._last_net_tx = 0.0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._generation += 1
        self._last_disk_read = self._disk_read_total()
        self._last_disk_write = self._disk_write_total()
        self._last_net_tx = self._net_tx_total()
        self.cluster.sim.call_at(
            self.cluster.sim.now + self.interval,
            self._tick,
            self._generation,
            daemon=True,
        )

    def stop(self) -> None:
        self._running = False

    # -- internals ------------------------------------------------------------
    def _disk_read_total(self) -> float:
        return sum(node.disk_bytes_read for node in self.cluster.workers)

    def _disk_write_total(self) -> float:
        return sum(node.disk_bytes_written for node in self.cluster.workers)

    def _net_tx_total(self) -> float:
        return sum(node.nic_tx.progressed_bytes() for node in self.cluster.workers)

    def _tick(self, generation: int) -> None:
        if not self._running or generation != self._generation:
            return
        cluster = self.cluster
        total_slots = cluster.spec.total_slots
        disk_read = self._disk_read_total()
        disk_write = self._disk_write_total()
        net_tx = self._net_tx_total()
        self.samples.append(
            ResourceSample(
                time=cluster.sim.now,
                cpu_utilization=min(1.0, cluster.total_computing() / total_slots),
                io_wait=min(1.0, cluster.total_io_waiting() / total_slots),
                disk_read_bps=(disk_read - self._last_disk_read) / self.interval,
                disk_write_bps=(disk_write - self._last_disk_write) / self.interval,
                net_tx_bps=(net_tx - self._last_net_tx) / self.interval,
                memory_used=cluster.total_memory_used(),
            )
        )
        self._last_disk_read = disk_read
        self._last_disk_write = disk_write
        self._last_net_tx = net_tx
        cluster.sim.call_at(
            cluster.sim.now + self.interval, self._tick, generation, daemon=True
        )

    # -- aggregates (used by the Fig 13 report) --------------------------------
    def average(self, attribute: str, since: float = 0.0) -> Optional[float]:
        values = [
            getattr(sample, attribute)
            for sample in self.samples
            if sample.time >= since
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def peak(self, attribute: str) -> Optional[float]:
        if not self.samples:
            return None
        return max(getattr(sample, attribute) for sample in self.samples)
