"""Slot leasing: multi-query arbitration over the cluster's slot pools.

A solo query owns its whole simulated cluster, so :class:`SlotPool`'s
built-in FIFO wait queue is all the scheduling it needs.  Once several
queries share one cluster (``repro.sched``), every slot acquisition goes
through a :class:`LeaseManager` instead, which adds three things the raw
pools cannot provide:

* **arbitration** — when a slot frees up, a pluggable policy decides
  *which query's* pending request gets it (``fifo``: strict arrival
  order with backfill; ``fair``: weighted per-pool shares, then
  per-query max-min, see :meth:`LeaseManager._fair_key`);
* **gang allocation** — DataMPI schedules one O task per slot and has
  no task waves, so a job needs its whole slot set *atomically*:
  :meth:`LeaseManager.acquire_gang` grants all-or-nothing (a partial
  hold is never observable, so two gangs can never deadlock each other);
* **attribution** — a :class:`LeaseLedger` records per-query slot
  occupancy (slot-seconds, peaks, queue wait) and per-pool usage peaks,
  which the scheduler exposes through ``repro.obs`` span attributes and
  the concurrency tests use to assert ``in_use <= capacity`` invariants.

Single-lease behaviour is event-order identical to the bare
``SlotPool`` protocol (immediate synchronous grant when capacity is
free, synchronous hand-over to the head waiter on release), so a solo
``run_plan`` through the manager replays byte-identical simulations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError
from repro.simulate.events import Event, Simulator
from repro.simulate.resources import SlotPool


class LeaseOwner:
    """Identity of a lease holder: one query, in one scheduling pool."""

    __slots__ = ("query_id", "pool", "weight")

    def __init__(self, query_id: str, pool: str = "default", weight: float = 1.0):
        if weight <= 0:
            raise ExecutionError(f"lease owner weight must be positive: {weight}")
        self.query_id = query_id
        self.pool = pool
        self.weight = weight

    def __repr__(self) -> str:
        return f"LeaseOwner({self.query_id!r}, pool={self.pool!r}, weight={self.weight})"


_ANONYMOUS = LeaseOwner("-", pool="default", weight=1.0)


class OwnerUsage:
    """Slot occupancy integral for one query (ledger attribution row)."""

    __slots__ = ("held", "peak", "slot_seconds", "queue_wait_seconds",
                 "grants", "_last")

    def __init__(self):
        self.held = 0
        self.peak = 0
        self.slot_seconds = 0.0
        self.queue_wait_seconds = 0.0
        self.grants = 0
        self._last = 0.0

    def _touch(self, now: float) -> None:
        if self.held:
            self.slot_seconds += self.held * (now - self._last)
        self._last = now


class LeaseLedger:
    """Everything the lease manager observed, for tests and attribution.

    Aggregate accounting is always on and O(1) per grant/release:
    ``grant_counts`` / ``release_counts`` per pool, a running
    outstanding balance whose first dip below zero is captured in
    ``negative_balance`` (a release-before-grant), ``max_in_use`` per
    pool never exceeding ``capacity`` (the no-oversubscription
    invariant), per-owner :class:`OwnerUsage` rows, and ``gang_grants``
    recording each atomic gang grant with its full slot set
    (all-or-nothing evidence).

    The full per-slot event trail — ``events`` as (time, action, pool,
    query) tuples in grant/release order — is **opt-in** via
    ``audit=True`` (config key ``repro.lease.audit``): a serving run
    completing tens of thousands of queries would otherwise grow the
    list without bound.  ``assert_clean_ledger`` checks the aggregates,
    so the invariants hold with auditing off.
    """

    def __init__(self, audit: bool = False):
        self.audit = audit
        self.events: List[Tuple[float, str, str, str]] = []
        self.max_in_use: Dict[str, int] = {}
        self.capacity: Dict[str, int] = {}
        self.usage: Dict[str, OwnerUsage] = {}
        self.gang_grants: List[Tuple[float, str, Tuple[Tuple[str, int], ...]]] = []
        self.grant_counts: Dict[str, int] = {}
        self.release_counts: Dict[str, int] = {}
        self.negative_balance: Optional[str] = None
        self._outstanding: Dict[str, int] = {}

    def owner_usage(self, query_id: str) -> OwnerUsage:
        usage = self.usage.get(query_id)
        if usage is None:
            usage = self.usage[query_id] = OwnerUsage()
        return usage

    def note_pool(self, pool: SlotPool) -> None:
        self.capacity.setdefault(pool.name, pool.capacity)
        if pool.in_use > self.max_in_use.get(pool.name, 0):
            self.max_in_use[pool.name] = pool.in_use

    def record_grant(self, now: float, pool_name: str, query_id: str,
                     count: int = 1) -> None:
        self.grant_counts[pool_name] = self.grant_counts.get(pool_name, 0) + count
        self._outstanding[pool_name] = self._outstanding.get(pool_name, 0) + count
        if self.audit:
            # one event per slot so grants and releases balance exactly
            # when the trail is replayed (gang grants take several at once)
            for _ in range(count):
                self.events.append((now, "grant", pool_name, query_id))

    def record_release(self, now: float, pool_name: str, query_id: str) -> None:
        self.release_counts[pool_name] = self.release_counts.get(pool_name, 0) + 1
        outstanding = self._outstanding.get(pool_name, 0) - 1
        self._outstanding[pool_name] = outstanding
        if outstanding < 0 and self.negative_balance is None:
            self.negative_balance = (
                f"pool {pool_name!r} released more slots than were granted "
                f"(at t={now:g}, owner {query_id!r})"
            )
        if self.audit:
            self.events.append((now, "release", pool_name, query_id))

    def oversubscribed_pools(self) -> List[str]:
        """Pools whose observed peak exceeded capacity (always empty
        unless the manager is broken — the concurrency suite asserts it)."""
        return sorted(
            name for name, peak in self.max_in_use.items()
            if peak > self.capacity.get(name, peak)
        )


class _LeaseRequest:
    __slots__ = ("seq", "owner", "wants", "event", "requested_at", "gang")

    def __init__(self, seq: int, owner: LeaseOwner,
                 wants: List[Tuple[SlotPool, int]], event: Event,
                 requested_at: float, gang: bool):
        self.seq = seq
        self.owner = owner
        self.wants = wants
        self.event = event
        self.requested_at = requested_at
        self.gang = gang


class GangLease:
    """An atomically granted slot set (one DataMPI job submission's O slots).

    The grant happens in the job driver, before the O tasks are spawned;
    each task :meth:`checkout`\\ s its slot when it starts running and
    releases it through the manager when it exits.  A task interrupted
    *before its first step* never runs its ``finally`` block, so its slot
    stays checked-in — :meth:`release_unclaimed` in the job driver's own
    cleanup returns exactly those, keeping every slot released exactly
    once on every abort path.
    """

    __slots__ = ("owner", "_manager", "_unclaimed")

    def __init__(self, manager: "LeaseManager", owner: LeaseOwner,
                 wants: Sequence[Tuple[SlotPool, int]]):
        self.owner = owner
        self._manager = manager
        self._unclaimed: Dict[SlotPool, int] = {}
        for pool, count in wants:
            self._unclaimed[pool] = self._unclaimed.get(pool, 0) + count

    def claimable(self, pool: SlotPool) -> int:
        return self._unclaimed.get(pool, 0)

    def checkout(self, pool: SlotPool) -> None:
        """Transfer one granted slot's release duty to the calling task."""
        remaining = self._unclaimed.get(pool, 0)
        if remaining <= 0:
            raise ExecutionError(
                f"gang checkout without a reserved slot on {pool.name!r}"
            )
        self._unclaimed[pool] = remaining - 1

    def release_unclaimed(self) -> None:
        """Return every slot no task checked out (abort/cleanup path)."""
        for pool, count in sorted(self._unclaimed.items(),
                                  key=lambda item: item[0].name):
            for _ in range(count):
                self._manager.release(pool, self.owner)
        self._unclaimed.clear()


class LeaseManager:
    """Arbitrates every task-slot acquisition on one shared cluster.

    ``policy`` is ``"fifo"`` (arrival order, with backfill past requests
    that do not fit yet) or ``"fair"`` (weighted per-pool shares, then
    per-query max-min, arbitration applied every time a slot frees up).
    Admission control — *whether a query may run at all* — lives a layer
    up in ``repro.sched``; the manager only divides slots between the
    queries already running.
    """

    def __init__(self, sim: Simulator, policy: str = "fifo",
                 ledger: Optional[LeaseLedger] = None, audit: bool = False):
        if policy not in ("fifo", "fair"):
            raise ExecutionError(f"unknown lease policy: {policy!r}")
        self.sim = sim
        self.policy = policy
        self.ledger = ledger or LeaseLedger(audit=audit)
        self._pending: List[_LeaseRequest] = []
        self._by_event: Dict[Event, _LeaseRequest] = {}
        self._seq = 0
        self._active_by_pool_group: Dict[str, int] = {}
        self._active_by_query: Dict[str, int] = {}
        # per-pool count of queued requests wanting it, so the
        # fast-path admission check is O(1) instead of a scan over
        # every pending request's wants
        self._pending_pool_wants: Dict[str, int] = {}

    # -- single leases -------------------------------------------------------
    def acquire(self, pool: SlotPool, owner: Optional[LeaseOwner] = None) -> Event:
        """Request one slot; the returned event triggers (with the pool as
        value) once the slot is held — immediately when capacity is free."""
        owner = owner or _ANONYMOUS
        event = Event(self.sim)
        if pool.in_use < pool.capacity and self._fits_nothing_ahead(pool):
            self._take(pool, owner, waited=0.0)
            event.trigger(pool)
        else:
            self._enqueue([(pool, 1)], owner, event, gang=False)
        return event

    def release(self, pool: SlotPool, owner: Optional[LeaseOwner] = None) -> None:
        """Return one slot and re-arbitrate: the policy's pick among the
        pending requests is granted synchronously (direct hand-over,
        exactly like ``SlotPool.release``)."""
        owner = owner or _ANONYMOUS
        pool.release()  # keeps the over-release check; waiters never queue here
        self._account_release(pool, owner)
        self._dispatch()

    def cancel(self, pool: SlotPool, event: Event,
               owner: Optional[LeaseOwner] = None) -> None:
        """Withdraw a single-slot ``acquire`` whose waiter was interrupted
        (same contract as ``SlotPool.cancel_acquire``)."""
        request = self._by_event.pop(event, None)
        if request is not None:
            self._unqueue(request)
            return
        if event.triggered:
            self.release(pool, owner)

    def cancel_gang(self, event: Event,
                    owner: Optional[LeaseOwner] = None) -> None:
        """Withdraw a pending ``acquire_gang`` whose waiter was
        interrupted (deadline/abort).  If the gang was already granted,
        every still-unclaimed slot is returned instead — checked-out
        slots remain the owning tasks' duty, exactly as on the normal
        cleanup path."""
        request = self._by_event.pop(event, None)
        if request is not None:
            self._unqueue(request)
            return
        if event.triggered and isinstance(event.value, GangLease):
            event.value.release_unclaimed()

    # -- gang leases ---------------------------------------------------------
    def acquire_gang(self, wants: Sequence[Tuple[SlotPool, int]],
                     owner: Optional[LeaseOwner] = None) -> Event:
        """Request several slots across several pools *atomically*.

        The returned event triggers with a :class:`GangLease` once every
        requested slot is held; until then nothing is held at all, so a
        waiting gang can never wedge another query's progress.
        """
        owner = owner or _ANONYMOUS
        wants = [(pool, count) for pool, count in wants if count > 0]
        for pool, count in wants:
            if count > pool.capacity:
                raise ExecutionError(
                    f"gang wants {count} slots of {pool.name!r} "
                    f"(capacity {pool.capacity}); clamp before requesting"
                )
        event = Event(self.sim)
        if not wants:
            event.trigger(GangLease(self, owner, []))
            return event
        if self._pending or not self._gang_fits(wants):
            self._enqueue(list(wants), owner, event, gang=True)
        else:
            self._grant_gang(wants, owner, event, waited=0.0)
        return event

    # -- introspection -------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def active_leases(self, query_id: str) -> int:
        return self._active_by_query.get(query_id, 0)

    # -- internals -----------------------------------------------------------
    def _fits_nothing_ahead(self, pool: SlotPool) -> bool:
        # A fresh request may only jump straight to a free slot when no
        # queued request wants that pool (the queued one was first);
        # requests blocked on *other* pools do not reserve this one.
        return self._pending_pool_wants.get(pool.name, 0) == 0

    def _enqueue(self, wants: List[Tuple[SlotPool, int]], owner: LeaseOwner,
                 event: Event, gang: bool) -> None:
        self._seq += 1
        request = _LeaseRequest(self._seq, owner, wants, event,
                                self.sim.now, gang)
        self._pending.append(request)
        self._by_event[event] = request
        for pool, _count in wants:
            self._pending_pool_wants[pool.name] = (
                self._pending_pool_wants.get(pool.name, 0) + 1
            )

    def _unqueue(self, request: _LeaseRequest) -> None:
        self._pending.remove(request)
        for pool, _count in request.wants:
            self._pending_pool_wants[pool.name] -= 1

    def _take(self, pool: SlotPool, owner: LeaseOwner, waited: float,
              count: int = 1) -> None:
        pool.in_use += count
        self.ledger.note_pool(pool)
        now = self.sim.now
        usage = self.ledger.owner_usage(owner.query_id)
        usage._touch(now)
        usage.held += count
        usage.grants += count
        usage.queue_wait_seconds += waited * count
        if usage.held > usage.peak:
            usage.peak = usage.held
        self._active_by_pool_group[owner.pool] = (
            self._active_by_pool_group.get(owner.pool, 0) + count
        )
        self._active_by_query[owner.query_id] = (
            self._active_by_query.get(owner.query_id, 0) + count
        )
        self.ledger.record_grant(now, pool.name, owner.query_id, count)

    def _account_release(self, pool: SlotPool, owner: LeaseOwner) -> None:
        now = self.sim.now
        usage = self.ledger.owner_usage(owner.query_id)
        usage._touch(now)
        usage.held -= 1
        self._active_by_pool_group[owner.pool] = (
            self._active_by_pool_group.get(owner.pool, 0) - 1
        )
        self._active_by_query[owner.query_id] = (
            self._active_by_query.get(owner.query_id, 0) - 1
        )
        self.ledger.record_release(now, pool.name, owner.query_id)

    def _request_fits(self, request: _LeaseRequest) -> bool:
        for pool, count in request.wants:
            if pool.capacity - pool.in_use < count:
                return False
        return True

    def _gang_fits(self, wants: Sequence[Tuple[SlotPool, int]]) -> bool:
        for pool, count in wants:
            if pool.capacity - pool.in_use < count:
                return False
        return True

    def _fair_key(self, request: _LeaseRequest) -> Tuple[float, int, int]:
        owner = request.owner
        pool_share = (
            self._active_by_pool_group.get(owner.pool, 0) / owner.weight
        )
        return (pool_share, self._active_by_query.get(owner.query_id, 0),
                request.seq)

    def _select(self) -> Optional[_LeaseRequest]:
        if self.policy == "fair":
            candidates = sorted(self._pending, key=self._fair_key)
        else:
            candidates = self._pending
        for request in candidates:
            if self._request_fits(request):
                return request
        return None

    def _dispatch(self) -> None:
        while self._pending:
            request = self._select()
            if request is None:
                return
            self._unqueue(request)
            del self._by_event[request.event]
            waited = self.sim.now - request.requested_at
            if request.gang:
                self._grant_gang(request.wants, request.owner, request.event,
                                 waited)
            else:
                pool = request.wants[0][0]
                self._take(pool, request.owner, waited)
                request.event.trigger(pool)

    def _grant_gang(self, wants: Sequence[Tuple[SlotPool, int]],
                    owner: LeaseOwner, event: Event, waited: float) -> None:
        for pool, count in wants:
            self._take(pool, owner, waited, count=count)
        self.ledger.gang_grants.append((
            self.sim.now, owner.query_id,
            tuple((pool.name, count) for pool, count in wants),
        ))
        event.trigger(GangLease(self, owner, wants))
