"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os
from typing import Dict, List

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results")


def results_path(name: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return os.path.join(RESULTS_DIR, name)


def emit(text: str) -> None:
    """Print a benchmark table (visible with -s, captured otherwise)."""
    print("\n" + text)


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
