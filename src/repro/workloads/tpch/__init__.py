"""TPC-H 2.17 workload: dbgen + the 22 queries ported to HiveQL.

The queries follow the public Hive port the paper used (its ref [19]):
correlated subqueries become temp-table stages, date arithmetic is
pre-computed, and every query remains semantically equivalent to the
spec query for the generated data.
"""

from repro.workloads.tpch.schema import TPCH_SCHEMAS, NATIONS, REGIONS
from repro.workloads.tpch.dbgen import load_tpch, TpchInfo
from repro.workloads.tpch.queries import tpch_query, TPCH_QUERY_IDS

__all__ = [
    "TPCH_SCHEMAS",
    "NATIONS",
    "REGIONS",
    "load_tpch",
    "TpchInfo",
    "tpch_query",
    "TPCH_QUERY_IDS",
]
