"""Semantic analysis: AST -> bound logical tree.

Responsibilities:

* resolve table/column names against the metastore and row signatures;
* bind + type expressions (desugaring BETWEEN / IN / LIKE / CASE);
* split join conditions into equi-keys and residuals;
* push WHERE conjuncts below joins (predicate pushdown — this is what
  later feeds ORC stripe elimination);
* plan aggregation: collect aggregate calls, rewrite post-aggregation
  expressions against the aggregate's output row.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import SemanticError
from repro.common.rows import DataType
from repro.exec import expressions as bexpr
from repro.exec.expressions import BoundExpression, Const, InputRef
from repro.sql import ast
from repro.sql.functions import get_aggregate, get_scalar, is_aggregate, is_scalar
from repro.storage.metastore import Metastore
from repro.plan.logical import (
    AggregateCall,
    AggregateNode,
    DistinctNode,
    FieldInfo,
    Filter,
    JoinNode,
    LimitNode,
    LogicalNode,
    Project,
    RowSignature,
    Scan,
    SortNode,
    UnionNode,
)


def expr_has_aggregate(expression: ast.Expression) -> bool:
    for node in ast.walk_expression(expression):
        if isinstance(node, ast.FunctionCall) and is_aggregate(node.name):
            return True
    return False


def collect_input_refs(expression: BoundExpression) -> List[int]:
    """All InputRef positions used by a bound expression tree."""
    refs: List[int] = []
    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, InputRef):
            refs.append(node.index)
        for name in getattr(node, "__dataclass_fields__", {}):
            value = getattr(node, name)
            if isinstance(value, BoundExpression):
                stack.append(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, BoundExpression):
                        stack.append(item)
                    elif isinstance(item, tuple):
                        stack.extend(
                            piece for piece in item if isinstance(piece, BoundExpression)
                        )
    return refs


def shift_input_refs(expression: BoundExpression, delta: int) -> BoundExpression:
    """Return a copy with every InputRef index shifted by *delta*."""
    import copy

    clone = copy.deepcopy(expression)
    stack = [clone]
    seen = set()  # shared subtrees (BETWEEN desugaring) must shift once
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, InputRef):
            node.index += delta
        for name in getattr(node, "__dataclass_fields__", {}):
            value = getattr(node, name)
            if isinstance(value, BoundExpression):
                stack.append(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, BoundExpression):
                        stack.append(item)
                    elif isinstance(item, tuple):
                        stack.extend(
                            piece for piece in item if isinstance(piece, BoundExpression)
                        )
    return clone


def split_conjuncts(expression: BoundExpression) -> List[BoundExpression]:
    if isinstance(expression, bexpr.LogicalAnd):
        out: List[BoundExpression] = []
        for operand in expression.operands:
            out.extend(split_conjuncts(operand))
        return out
    return [expression]


def conjoin(conjuncts: List[BoundExpression]) -> Optional[BoundExpression]:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return bexpr.LogicalAnd(operands=conjuncts)


class _AggContext:
    """Post-aggregation binding scope: group exprs and aggregate calls map
    to positions in the aggregate's output row."""

    def __init__(
        self,
        group_asts: List[ast.Expression],
        call_asts: List[ast.FunctionCall],
        signature: RowSignature,
    ):
        self.group_asts = group_asts
        self.call_asts = call_asts
        self.signature = signature


class Analyzer:
    def __init__(self, metastore: Metastore):
        self.metastore = metastore

    # -- entry point --------------------------------------------------------
    def analyze(self, select) -> LogicalNode:
        if isinstance(select, ast.UnionAll):
            return self._plan_union(select)
        if select.source is None:
            raise SemanticError("SELECT without FROM is not supported")
        select = self._rewrite_in_subqueries(select)
        node = self._build_source(select.source)

        if select.where is not None:
            if expr_has_aggregate(select.where):
                raise SemanticError("aggregates are not allowed in WHERE")
            predicate = self._bind(select.where, node.signature)
            node = self._push_filter(node, predicate)

        needs_aggregate = bool(select.group_by) or any(
            expr_has_aggregate(item.expression)
            for item in select.items
            if not isinstance(item.expression, ast.Star)
        ) or (select.having is not None)

        agg_context: Optional[_AggContext] = None
        if needs_aggregate:
            node, agg_context = self._plan_aggregate(select, node)
            if select.having is not None:
                having = self._bind(
                    select.having, node.signature, agg_context=agg_context
                )
                node = Filter(node, having)

        node = self._plan_projection(select, node, agg_context)

        if select.distinct:
            node = DistinctNode(node)

        if select.order_by:
            node = self._plan_order_by(select, node, agg_context)

        if select.limit is not None:
            node = LimitNode(node, select.limit)

        return node

    # -- IN (SELECT ...) rewrite -----------------------------------------------
    def _rewrite_in_subqueries(self, select: ast.Select) -> ast.Select:
        """Rewrite top-level ``[NOT] IN (SELECT ...)`` WHERE conjuncts into
        (anti-)joins against the DISTINCT subquery — the transformation the
        Hive TPC-H port applies by hand.  Uncorrelated subqueries only;
        NOT IN uses the usual anti-join (NULLs in the subquery do not
        empty the result as strict SQL would)."""
        if select.where is None:
            return select

        def split(expr):
            if isinstance(expr, ast.BinaryOp) and expr.op == "and":
                return split(expr.left) + split(expr.right)
            return [expr]

        conjuncts = split(select.where)
        if not any(isinstance(c, ast.InSubquery) for c in conjuncts):
            for conjunct in conjuncts:
                for sub in ast.walk_expression(conjunct):
                    if isinstance(sub, ast.InSubquery):
                        raise SemanticError(
                            "IN (SELECT ...) is only supported as a top-level "
                            "WHERE conjunct"
                        )
            return select

        import copy as _copy
        import dataclasses

        source = select.source
        kept: List[ast.Expression] = []
        counter = 0
        for conjunct in conjuncts:
            if not isinstance(conjunct, ast.InSubquery):
                kept.append(conjunct)
                continue
            inner = conjunct.query
            if not isinstance(inner, ast.Select):
                raise SemanticError("IN subquery must be a plain SELECT")
            if len(inner.items) != 1 or isinstance(inner.items[0].expression, ast.Star):
                raise SemanticError("IN subquery must produce exactly one column")
            item = inner.items[0]
            alias = f"_insub{counter}"
            column = f"_inval{counter}"  # unique: never clashes with sources
            counter += 1
            distinct_inner = dataclasses.replace(
                _copy.deepcopy(inner),
                distinct=True,
                items=[ast.SelectItem(_copy.deepcopy(item.expression), column)],
            )
            condition = ast.BinaryOp(
                "=", conjunct.operand, ast.ColumnRef(column, table=alias)
            )
            source = ast.Join(
                left=source,
                right=ast.SubquerySource(distinct_inner, alias),
                join_type="left" if conjunct.negated else "inner",
                condition=condition,
            )
            if conjunct.negated:
                kept.append(ast.IsNull(ast.ColumnRef(column, table=alias)))

        where = None
        for conjunct in kept:
            where = conjunct if where is None else ast.BinaryOp("and", where, conjunct)
        return dataclasses.replace(select, source=source, where=where)

    def _plan_union(self, union: ast.UnionAll) -> LogicalNode:
        """UNION ALL: analyze every branch; arities must match, the first
        branch's names/types win (Hive's positional union semantics)."""
        branches = [self.analyze(branch) for branch in union.branches]
        width = len(branches[0].signature)
        for position, branch in enumerate(branches[1:], start=2):
            if len(branch.signature) != width:
                raise SemanticError(
                    f"UNION ALL branch {position} has {len(branch.signature)} "
                    f"columns, expected {width}"
                )
        return UnionNode(inputs=branches)

    # -- FROM --------------------------------------------------------------
    def _build_source(self, source: ast.Source) -> LogicalNode:
        if isinstance(source, ast.TableRef):
            table = self.metastore.get_table(source.name)
            return Scan(table, source.binding)
        if isinstance(source, ast.SubquerySource):
            child = self.analyze(source.query)
            # expose the subquery's outputs under its alias
            child.signature = RowSignature(
                [
                    FieldInfo(source.binding, info.name, info.dtype)
                    for info in child.signature.fields
                ]
            )
            return child
        if isinstance(source, ast.Join):
            return self._build_join(source)
        raise SemanticError(f"unsupported FROM item: {type(source).__name__}")

    def _build_join(self, join: ast.Join) -> LogicalNode:
        left = self._build_source(join.left)
        right = self._build_source(join.right)
        concat = left.signature.concat(right.signature)
        left_width = len(left.signature)

        left_keys: List[BoundExpression] = []
        right_keys: List[BoundExpression] = []
        residuals: List[BoundExpression] = []

        if join.condition is not None:
            bound = self._bind(join.condition, concat)
            for conjunct in split_conjuncts(bound):
                pair = self._as_equi_key(conjunct, left_width)
                if pair is not None:
                    left_key, right_key = pair
                    left_keys.append(left_key)
                    right_keys.append(shift_input_refs(right_key, -left_width))
                else:
                    residuals.append(conjunct)

        # side-pure residuals can run below the join (inner joins only;
        # for LEFT joins the right side must not be pre-filtered by ON)
        kept: List[BoundExpression] = []
        for conjunct in residuals:
            refs = collect_input_refs(conjunct)
            if join.join_type == "inner" and refs and all(r < left_width for r in refs):
                left = Filter(left, conjunct)
            elif (
                join.join_type == "inner"
                and refs
                and all(r >= left_width for r in refs)
            ):
                right = Filter(right, shift_input_refs(conjunct, -left_width))
            else:
                kept.append(conjunct)

        return JoinNode(
            left=left,
            right=right,
            join_type=join.join_type,
            left_keys=left_keys,
            right_keys=right_keys,
            residual=conjoin(kept),
        )

    @staticmethod
    def _as_equi_key(
        conjunct: BoundExpression, left_width: int
    ) -> Optional[Tuple[BoundExpression, BoundExpression]]:
        if not isinstance(conjunct, bexpr.Comparison) or conjunct.op != "=":
            return None
        left_refs = collect_input_refs(conjunct.left)
        right_refs = collect_input_refs(conjunct.right)
        if not left_refs or not right_refs:
            return None  # constant side: stays a residual/filter
        if all(r < left_width for r in left_refs) and all(
            r >= left_width for r in right_refs
        ):
            return conjunct.left, conjunct.right
        if all(r >= left_width for r in left_refs) and all(
            r < left_width for r in right_refs
        ):
            return conjunct.right, conjunct.left
        return None

    # -- predicate pushdown --------------------------------------------------
    def _push_filter(self, node: LogicalNode, predicate: BoundExpression) -> LogicalNode:
        remaining: List[BoundExpression] = []
        for conjunct in split_conjuncts(predicate):
            pushed = self._try_push(node, conjunct)
            if pushed is None:
                remaining.append(conjunct)
        residue = conjoin(remaining)
        return Filter(node, residue) if residue is not None else node

    def _try_push(
        self, node: LogicalNode, conjunct: BoundExpression
    ) -> Optional[LogicalNode]:
        """Push one conjunct below joins in place; returns the node if the
        push happened, None if the caller must keep the filter."""
        if isinstance(node, JoinNode):
            refs = collect_input_refs(conjunct)
            left_width = len(node.left.signature)
            if refs and all(r < left_width for r in refs):
                if self._try_push(node.left, conjunct) is None:
                    node.left = Filter(node.left, conjunct)
                return node
            if (
                refs
                and all(r >= left_width for r in refs)
                and node.join_type == "inner"
            ):
                shifted = shift_input_refs(conjunct, -left_width)
                if self._try_push(node.right, shifted) is None:
                    node.right = Filter(node.right, shifted)
                return node
            return None
        if isinstance(node, Filter):
            return self._try_push(node.child, conjunct)
        return None  # Scan/subquery: caller wraps in Filter directly above

    # -- aggregation -----------------------------------------------------------
    def _plan_aggregate(
        self, select: ast.Select, node: LogicalNode
    ) -> Tuple[LogicalNode, _AggContext]:
        signature = node.signature

        group_asts = list(select.group_by)
        group_bound = [self._bind(expr, signature) for expr in group_asts]
        group_names = []
        for position, expr in enumerate(group_asts):
            if isinstance(expr, ast.ColumnRef):
                group_names.append(expr.name.lower())
            else:
                group_names.append(f"_g{position}")

        # collect every distinct aggregate call appearing downstream
        call_asts: List[ast.FunctionCall] = []
        scan_targets: List[ast.Expression] = [
            item.expression for item in select.items
        ]
        if select.having is not None:
            scan_targets.append(select.having)
        for order in select.order_by:
            scan_targets.append(order.expression)
        for target in scan_targets:
            if isinstance(target, ast.Star):
                continue
            for sub in ast.walk_expression(target):
                if isinstance(sub, ast.FunctionCall) and is_aggregate(sub.name):
                    if not any(sub == known for known in call_asts):
                        call_asts.append(sub)

        calls: List[AggregateCall] = []
        for position, call in enumerate(call_asts):
            for argument in call.args:
                if expr_has_aggregate(argument):
                    raise SemanticError("nested aggregates are not allowed")
            aggregate = get_aggregate(call.name, call.distinct)
            if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
                argument_bound = None
                arg_type = None
            else:
                if len(call.args) != 1:
                    raise SemanticError(f"{call.name} takes exactly one argument")
                argument_bound = self._bind(call.args[0], signature)
                arg_type = argument_bound.dtype
            calls.append(
                AggregateCall(
                    aggregate=aggregate,
                    argument=argument_bound,
                    name=f"_agg{position}",
                    dtype=aggregate.result_type(arg_type),
                    distinct=call.distinct,
                )
            )

        agg_node = AggregateNode(
            child=node,
            group_expressions=group_bound,
            group_names=group_names,
            calls=calls,
        )
        context = _AggContext(group_asts, call_asts, agg_node.signature)
        return agg_node, context

    # -- projection ------------------------------------------------------------
    def _plan_projection(
        self,
        select: ast.Select,
        node: LogicalNode,
        agg_context: Optional[_AggContext],
    ) -> LogicalNode:
        expressions: List[BoundExpression] = []
        names: List[str] = []
        for position, item in enumerate(select.items):
            if isinstance(item.expression, ast.Star):
                if agg_context is not None:
                    raise SemanticError("SELECT * cannot be combined with GROUP BY")
                star = item.expression
                for index, info in enumerate(node.signature.fields):
                    if star.table is not None and info.binding != star.table.lower():
                        continue
                    expressions.append(InputRef(index, info.dtype))
                    names.append(info.name)
                continue
            bound = self._bind(item.expression, node.signature, agg_context=agg_context)
            expressions.append(bound)
            if item.alias:
                names.append(item.alias.lower())
            elif isinstance(item.expression, ast.ColumnRef):
                names.append(item.expression.name.lower())
            else:
                names.append(f"_c{position}")
        return Project(node, expressions, names)

    # -- order by ---------------------------------------------------------------
    def _plan_order_by(
        self,
        select: ast.Select,
        node: LogicalNode,
        agg_context: Optional[_AggContext],
    ) -> LogicalNode:
        """ORDER BY binds against the select outputs (aliases and repeated
        expressions); for non-aggregate queries it may also reference
        source columns, which are carried as hidden sort columns and
        trimmed after the sort (Hive's behaviour)."""
        sort_expressions: List[BoundExpression] = []
        ascending: List[bool] = []
        hidden: List[BoundExpression] = []  # exprs over the pre-projection row
        visible_width = len(node.signature)

        for order in select.order_by:
            bound: Optional[BoundExpression] = None
            expr = order.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int) \
                    and not isinstance(expr.value, bool):
                # ORDER BY <ordinal> (1-based select position)
                ordinal = expr.value
                if not 1 <= ordinal <= visible_width:
                    raise SemanticError(
                        f"ORDER BY position {ordinal} is out of range 1..{visible_width}"
                    )
                info = node.signature.fields[ordinal - 1]
                bound = InputRef(ordinal - 1, info.dtype)
            if bound is None and isinstance(expr, ast.ColumnRef) and expr.table is None:
                try:
                    index, dtype = node.signature.resolve(expr.name)
                    bound = InputRef(index, dtype)
                except SemanticError:
                    bound = None
            if bound is None:
                # expression identical to a select item -> order by that output
                for position, item in enumerate(select.items):
                    if not isinstance(item.expression, ast.Star) and item.expression == expr:
                        info = node.signature.fields[position]
                        bound = InputRef(position, info.dtype)
                        break
            if bound is None and agg_context is None and isinstance(node, Project):
                # hidden sort column over the projection's input
                try:
                    under = self._bind(expr, node.child.signature)
                except SemanticError:
                    under = None
                if under is not None:
                    hidden.append(under)
                    bound = InputRef(visible_width + len(hidden) - 1, under.dtype)
            if bound is None:
                raise SemanticError(
                    f"ORDER BY expression must name a select output: {expr}"
                )
            sort_expressions.append(bound)
            ascending.append(order.ascending)

        if hidden:
            widened = Project(
                node.child,
                list(node.expressions) + hidden,
                list(node.names) + [f"_sort{i}" for i in range(len(hidden))],
            )
            sorted_node = SortNode(widened, sort_expressions, ascending)
            trim = [
                InputRef(i, widened.signature.fields[i].dtype)
                for i in range(visible_width)
            ]
            return Project(sorted_node, trim, list(node.names))
        return SortNode(node, sort_expressions, ascending)

    # -- expression binding -------------------------------------------------------
    def _bind(
        self,
        expression: ast.Expression,
        signature: RowSignature,
        agg_context: Optional[_AggContext] = None,
    ) -> BoundExpression:
        if agg_context is not None:
            # group-by expressions and aggregate calls resolve to positions
            # in the aggregate output row
            for position, group in enumerate(agg_context.group_asts):
                if expression == group:
                    info = agg_context.signature.fields[position]
                    return InputRef(position, info.dtype)
            base = len(agg_context.group_asts)
            for position, call in enumerate(agg_context.call_asts):
                if expression == call:
                    info = agg_context.signature.fields[base + position]
                    return InputRef(base + position, info.dtype)
            signature = agg_context.signature  # remaining names resolve here

        if isinstance(expression, ast.Literal):
            return Const(expression.value, self._literal_type(expression.value))

        if isinstance(expression, ast.ColumnRef):
            index, dtype = signature.resolve(expression.name, expression.table)
            return InputRef(index, dtype)

        if isinstance(expression, ast.BinaryOp):
            return self._bind_binary(expression, signature, agg_context)

        if isinstance(expression, ast.UnaryOp):
            operand = self._bind(expression.operand, signature, agg_context)
            if expression.op == "not":
                return bexpr.LogicalNot(operand=operand)
            if expression.op == "-":
                zero = Const(0, operand.dtype if operand.dtype.is_numeric else DataType.DOUBLE)
                return bexpr.Arithmetic(
                    "-", zero, operand, dtype=self._numeric_type(operand, operand)
                )
            raise SemanticError(f"unknown unary operator {expression.op!r}")

        if isinstance(expression, ast.FunctionCall):
            if is_aggregate(expression.name):
                raise SemanticError(
                    f"aggregate {expression.name} not allowed in this context"
                )
            if not is_scalar(expression.name):
                raise SemanticError(f"unknown function: {expression.name}")
            function = get_scalar(expression.name)
            if not (function.min_args <= len(expression.args) <= function.max_args):
                raise SemanticError(
                    f"{function.name} expects {function.min_args}..{function.max_args} args"
                )
            args = [self._bind(arg, signature, agg_context) for arg in expression.args]
            dtype = function.infer_type([arg.dtype for arg in args])
            return bexpr.ScalarCall(function=function, args=args, dtype=dtype)

        if isinstance(expression, ast.CaseWhen):
            branches = [
                (
                    self._bind(condition, signature, agg_context),
                    self._bind(value, signature, agg_context),
                )
                for condition, value in expression.branches
            ]
            else_value = (
                self._bind(expression.else_value, signature, agg_context)
                if expression.else_value is not None
                else None
            )
            dtype = branches[0][1].dtype if branches else DataType.STRING
            return bexpr.CaseExpr(branches=branches, else_value=else_value, dtype=dtype)

        if isinstance(expression, ast.Between):
            operand = self._bind(expression.operand, signature, agg_context)
            low = self._bind(expression.low, signature, agg_context)
            high = self._bind(expression.high, signature, agg_context)
            inside = bexpr.LogicalAnd(
                operands=[
                    bexpr.Comparison(">=", operand, low),
                    bexpr.Comparison("<=", operand, high),
                ]
            )
            return bexpr.LogicalNot(operand=inside) if expression.negated else inside

        if isinstance(expression, ast.InList):
            operand = self._bind(expression.operand, signature, agg_context)
            if all(isinstance(item, ast.Literal) for item in expression.items):
                values = frozenset(item.value for item in expression.items)
                return bexpr.InSet(
                    operand=operand, values=values, negated=expression.negated
                )
            comparisons = [
                bexpr.Comparison(
                    "=", operand, self._bind(item, signature, agg_context)
                )
                for item in expression.items
            ]
            union: BoundExpression = bexpr.LogicalOr(operands=comparisons)
            return bexpr.LogicalNot(operand=union) if expression.negated else union

        if isinstance(expression, ast.Like):
            operand = self._bind(expression.operand, signature, agg_context)
            pattern = expression.pattern
            if not isinstance(pattern, ast.Literal) or not isinstance(pattern.value, str):
                raise SemanticError("LIKE pattern must be a string literal")
            return bexpr.LikeExpr(
                operand=operand, pattern=pattern.value, negated=expression.negated
            )

        if isinstance(expression, ast.IsNull):
            operand = self._bind(expression.operand, signature, agg_context)
            return bexpr.IsNullExpr(operand=operand, negated=expression.negated)

        if isinstance(expression, ast.Cast):
            operand = self._bind(expression.operand, signature, agg_context)
            return bexpr.CastExpr(
                operand=operand, dtype=DataType.from_name(expression.type_name)
            )

        raise SemanticError(f"cannot bind expression {type(expression).__name__}")

    def _bind_binary(
        self,
        expression: ast.BinaryOp,
        signature: RowSignature,
        agg_context: Optional[_AggContext],
    ) -> BoundExpression:
        op = expression.op
        left = self._bind(expression.left, signature, agg_context)
        right = self._bind(expression.right, signature, agg_context)
        if op == "and":
            return bexpr.LogicalAnd(operands=[left, right])
        if op == "or":
            return bexpr.LogicalOr(operands=[left, right])
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return bexpr.Comparison(op, left, right)
        if op in ("+", "-", "*", "/", "%"):
            return bexpr.Arithmetic(op, left, right, dtype=self._numeric_type(left, right, op))
        raise SemanticError(f"unknown operator {op!r}")

    @staticmethod
    def _numeric_type(
        left: BoundExpression, right: BoundExpression, op: str = "+"
    ) -> DataType:
        if op == "/":
            return DataType.DOUBLE
        integers = (DataType.INT, DataType.BIGINT)
        if left.dtype in integers and right.dtype in integers:
            return DataType.BIGINT
        return DataType.DOUBLE

    @staticmethod
    def _literal_type(value: object) -> DataType:
        if isinstance(value, bool):
            return DataType.BOOLEAN
        if isinstance(value, int):
            return DataType.BIGINT
        if isinstance(value, float):
            return DataType.DOUBLE
        return DataType.STRING
