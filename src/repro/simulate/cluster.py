"""Nodes and cluster topology.

Defaults mirror the paper's testbed (section V-A): 8 nodes on a Gigabit
Ethernet switch, 2x Intel Xeon E5620 with 4 usable task slots configured
per node, 16 GB RAM and one 7200-RPM SATA disk.  Node 0 is the master
(JobTracker / mpidrun launcher); nodes 1..7 are workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List

from repro.common.errors import ExecutionError
from repro.common.units import GB, MB
from repro.simulate.events import Simulator
from repro.simulate.resources import Bandwidth, MemoryAccount, SlotPool


@dataclass(frozen=True)
class ClusterSpec:
    """Physical description of the simulated testbed."""

    num_nodes: int = 8
    slots_per_node: int = 4
    disk_bandwidth: float = 100 * MB  # 7200-RPM SATA sequential throughput
    nic_bandwidth: float = 117 * MB  # GigE payload rate per direction
    memory_per_node: float = 16 * GB
    heap_per_task: float = 1 * GB

    def __post_init__(self):
        if self.num_nodes < 2:
            raise ExecutionError("need at least a master and one worker")

    @property
    def num_workers(self) -> int:
        return self.num_nodes - 1

    @property
    def total_slots(self) -> int:
        return self.num_workers * self.slots_per_node


class Node:
    """One machine: task slots, a disk, a full-duplex NIC and memory.

    *metrics* (a :class:`repro.obs.MetricsRegistry`, optional) receives
    cumulative cluster-wide counters — CPU-seconds, disk/net bytes —
    alongside the per-resource accounting; recording never advances the
    simulated clock.
    """

    def __init__(self, sim: Simulator, spec: ClusterSpec, node_id: int,
                 metrics=None):
        self.sim = sim
        self.spec = spec
        self.node_id = node_id
        self.metrics = metrics
        self.name = f"node{node_id}"
        self.slots = SlotPool(sim, spec.slots_per_node, f"{self.name}.slots")
        self.disk = Bandwidth(sim, spec.disk_bandwidth, f"{self.name}.disk")
        self.nic_tx = Bandwidth(sim, spec.nic_bandwidth, f"{self.name}.tx")
        self.nic_rx = Bandwidth(sim, spec.nic_bandwidth, f"{self.name}.rx")
        self.memory = MemoryAccount(spec.memory_per_node, f"{self.name}.mem")
        # fault-injection state: a dead node schedules no new work, a
        # straggling node pays `slowdown` times the CPU cost; a draining
        # node finishes what it is running but takes no new placements
        self.alive = True
        self.draining = False
        self.slowdown = 1.0
        # instantaneous gauges for the dstat-style sampler
        self.computing = 0
        self.io_waiting = 0

    @property
    def schedulable(self) -> bool:
        """True when new work may be placed here (alive and not draining).

        Replica *reads* keep using ``alive``: a draining node still
        serves its blocks until it is retired.
        """
        return self.alive and not self.draining

    @property
    def disk_bytes_read(self) -> float:
        """Progressive read-byte counter (shared spindle, split by
        category inside the bandwidth resource)."""
        self.disk.progressed_bytes()
        return self.disk.categorized.get("read", 0.0)

    @property
    def disk_bytes_written(self) -> float:
        self.disk.progressed_bytes()
        return self.disk.categorized.get("write", 0.0)

    # -- coroutine helpers (use with ``yield from``) ---------------------------
    def compute(self, seconds: float) -> Generator:
        """Burn CPU for *seconds* of simulated time on this node."""
        if seconds <= 0:
            return
        seconds *= self.slowdown
        if self.metrics is not None:
            self.metrics.counter("cluster.cpu_seconds").add(seconds)
        self.computing += 1
        try:
            yield self.sim.timeout(seconds)
        finally:
            self.computing -= 1

    def disk_read(self, nbytes: float) -> Generator:
        """Read *nbytes* from the local disk (processor-shared spindle)."""
        if nbytes <= 0:
            return
        if self.metrics is not None:
            self.metrics.counter("cluster.disk.read_bytes").add(nbytes)
        self.io_waiting += 1
        try:
            yield self.disk.transfer(nbytes, category="read")
        finally:
            self.io_waiting -= 1

    def disk_write(self, nbytes: float) -> Generator:
        """Write *nbytes* to the local disk."""
        if nbytes <= 0:
            return
        if self.metrics is not None:
            self.metrics.counter("cluster.disk.write_bytes").add(nbytes)
        self.io_waiting += 1
        try:
            yield self.disk.transfer(nbytes, category="write")
        finally:
            self.io_waiting -= 1

    def __repr__(self) -> str:
        return f"Node({self.name})"


class Cluster:
    """The full simulated cluster behind one non-blocking switch.

    The GigE switch has enough backplane for all NICs, so a transfer is
    limited only by the sender's TX and the receiver's RX shares.
    """

    def __init__(self, sim: Simulator, spec: ClusterSpec = ClusterSpec(),
                 metrics=None):
        self.sim = sim
        self.spec = spec
        self.metrics = metrics
        self.nodes: List[Node] = [
            Node(sim, spec, i, metrics=metrics) for i in range(spec.num_nodes)
        ]
        self._join_listeners: List = []

    def on_join(self, listener) -> None:
        """Register *listener(node, worker_index)* for future node joins.

        Engines use this to grow per-worker structures (aux slot pools,
        daemon fleets) when the cluster scales up mid-run.
        """
        self._join_listeners.append(listener)

    def add_node(self) -> Node:
        """Grow the cluster by one worker node (elastic scale-up).

        The new node starts empty — no HDFS blocks, no cached stripes —
        exactly like a machine racked into a running cluster.  Join
        listeners fire synchronously so slot pools and daemon fleets
        exist before any placement can target the new worker.
        """
        node = Node(self.sim, self.spec, len(self.nodes), metrics=self.metrics)
        self.nodes.append(node)
        worker_index = len(self.workers) - 1
        for listener in list(self._join_listeners):
            listener(node, worker_index)
        return node

    @property
    def master(self) -> Node:
        return self.nodes[0]

    @property
    def workers(self) -> List[Node]:
        return self.nodes[1:]

    def worker(self, index: int) -> Node:
        return self.workers[index % len(self.workers)]

    def network_transfer(self, src: Node, dst: Node, nbytes: float) -> Generator:
        """Move *nbytes* from *src* to *dst* through the switch.

        Same-node transfers are free on the network (they happen through
        the page cache / loopback); the engines charge disk separately
        where real systems would.
        """
        if nbytes <= 0 or src is dst:
            return
        if self.metrics is not None:
            self.metrics.counter("cluster.net.bytes").add(nbytes)
        yield self.sim.all_of(
            [src.nic_tx.transfer(nbytes), dst.nic_rx.transfer(nbytes)]
        )

    def total_memory_used(self) -> float:
        return sum(node.memory.used for node in self.workers)

    def total_computing(self) -> int:
        return sum(node.computing for node in self.workers)

    def total_io_waiting(self) -> int:
        return sum(node.io_waiting for node in self.workers)
