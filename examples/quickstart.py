#!/usr/bin/env python
"""Quickstart: create tables, run HiveQL on both engines, compare.

Run with:  python examples/quickstart.py
"""

import random

from repro import HDFS, Metastore, connect
from repro.common.rows import Schema
from repro.common.units import GB


def build_warehouse():
    """A toy web-log warehouse; `scale` lifts the byte accounting so the
    simulated cluster sees ~2 GB per table while we generate only a few
    thousand real rows."""
    hdfs = HDFS(num_workers=7)
    metastore = Metastore(hdfs)
    rng = random.Random(42)

    pages = Schema.parse("url string, rank int")
    visits = Schema.parse("ip string, url string, day string, revenue double")

    page_rows = [(f"/page/{i}", rng.randint(1, 100)) for i in range(500)]
    visit_rows = [
        (
            f"10.0.{rng.randint(0, 40)}.{rng.randint(0, 255)}",
            f"/page/{rng.randint(0, 499)}",
            f"2015-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
            round(rng.uniform(0.1, 25.0), 2),
        )
        for _ in range(20000)
    ]

    for name, schema, rows in (("pages", pages, page_rows), ("visits", visits, visit_rows)):
        table = metastore.create_table(name, schema, format_name="text")
        from repro.storage.formats.base import get_format

        actual = get_format("text").build(schema, rows).total_bytes
        hdfs.write(f"{table.location}/part-00000", schema, rows,
                   format_name="text", scale=2 * GB / actual)
    return hdfs, metastore


QUERY = """
SELECT ip, avg(rank) AS avg_rank, sum(revenue) AS total_revenue
FROM pages p JOIN visits v ON p.url = v.url
WHERE v.day >= '2015-06-01'
GROUP BY ip
ORDER BY total_revenue DESC
LIMIT 5
"""


def main():
    from repro.engines import capabilities

    hdfs, metastore = build_warehouse()

    print("running the same query on the cluster engines...\n")
    for engine in ("hadoop", "datampi", "llap"):
        session = connect(engine=engine, hdfs=hdfs, metastore=metastore)
        result = session.query(QUERY)
        timing = result.execution
        print(f"== {engine} ==")
        print(f"  capabilities: {', '.join(capabilities(engine).enabled())}")
        print(f"  physical plan: {len(result.plan.jobs)} MapReduce job(s)")
        print(f"  simulated time: {timing.total_seconds:.1f}s "
              f"(startup {sum(j.startup for j in timing.jobs):.1f}s, "
              f"map-shuffle {sum(j.map_shuffle for j in timing.jobs):.1f}s)")
        print("  top rows:")
        for row in result.rows:
            print(f"    {row}")
        print()


if __name__ == "__main__":
    main()
