"""Fig 12 — TPC-H scalability: 10/20/40 GB, Text + ORC, both engines.

Paper: execution time grows similarly on Hadoop and DataMPI as data
grows (similar scalability); averaged over the 22 queries DataMPI wins
by ~20 % (Text) and ~32 % (ORC); the best case is Q12 on the 20 GB ORC
set (~53 %).
"""

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_tpch, improvement_percent, run_script
from repro.reporting.figures import write_csv
from repro.workloads.tpch import TPCH_QUERY_IDS, tpch_query

SIZES = [10, 20, 40]
SAMPLE = 4000


def _experiment():
    # results[(fmt, size, engine)] = [seconds per query]
    results = {}
    for format_name in ("text", "orc"):
        for size in SIZES:
            hdfs, metastore = fresh_tpch(size, lineitem_sample=SAMPLE,
                                         format_name=format_name)
            for engine in ("hadoop", "datampi"):
                per_query = []
                for query in TPCH_QUERY_IDS:
                    run = run_script(engine, hdfs, metastore, tpch_query(query, size))
                    per_query.append(run.breakdown.total)
                results[(format_name, size, engine)] = per_query
    return results


def test_fig12_tpch_scalability(benchmark):
    results = run_once(benchmark, _experiment)
    avg = lambda xs: sum(xs) / len(xs)

    csv_rows = []
    for (format_name, size, engine), values in sorted(results.items()):
        for query, value in zip(TPCH_QUERY_IDS, values):
            csv_rows.append([format_name, size, engine, query, round(value, 2)])
    write_csv(results_path("fig12_scalability.csv"),
              ["format", "size_gb", "engine", "query", "seconds"], csv_rows)

    best = (None, 0.0)
    for format_name in ("text", "orc"):
        emit(f"== Fig 12 ({format_name.upper()}) total of 22 queries (seconds) ==")
        for size in SIZES:
            hadoop = results[(format_name, size, "hadoop")]
            datampi = results[(format_name, size, "datampi")]
            improvements = [improvement_percent(h, d) for h, d in zip(hadoop, datampi)]
            emit(f"  {size:>2} GB: Hadoop {sum(hadoop):8.1f}  DataMPI {sum(datampi):8.1f}  "
                 f"avg improvement {avg(improvements):5.1f}%")
            for query, improvement in zip(TPCH_QUERY_IDS, improvements):
                if improvement > best[1]:
                    best = ((format_name, size, query), improvement)

    emit(f"best case: Q{best[0][2]} at {best[0][1]} GB {best[0][0].upper()} "
         f"with {best[1]:.1f}% (paper: Q12, 20 GB ORC, ~53%)")

    # scalability shape: monotone growth with size on both engines
    for format_name in ("text", "orc"):
        for engine in ("hadoop", "datampi"):
            totals = [sum(results[(format_name, size, engine)]) for size in SIZES]
            assert totals[0] < totals[1] < totals[2], \
                f"{engine}/{format_name} must scale with data size"
    # averaged improvements in the paper's bands
    text40 = [improvement_percent(h, d) for h, d in zip(
        results[("text", 40, "hadoop")], results[("text", 40, "datampi")])]
    orc40 = [improvement_percent(h, d) for h, d in zip(
        results[("orc", 40, "hadoop")], results[("orc", 40, "datampi")])]
    assert 10.0 < avg(text40) < 40.0
    assert 15.0 < avg(orc40) < 45.0
