"""Bound expressions: index-resolved, NULL-aware, compiled to closures.

The analyzer turns parser AST (names) into these nodes (row positions);
``compile_expression`` then produces a plain ``row -> value`` closure so
the per-row hot path has no interpretive dispatch.

Semantics follow Hive:

* three-valued logic — comparisons with NULL yield NULL; ``AND``/``OR``
  propagate unknowns; filters keep a row only when the predicate is
  exactly TRUE;
* ``int / int`` is double division; ``%`` keeps integer semantics;
* ``LIKE`` supports ``%`` and ``_``.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.common.errors import ExecutionError, SemanticError
from repro.common.kv import KeyValue, serialize_kv
from repro.common.rows import DataType
from repro.sql.functions import ScalarFunction

Row = Tuple[object, ...]
Evaluator = Callable[[Row], object]


class BoundExpression:
    """Base class; every node knows its result type."""

    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        raise NotImplementedError


@dataclass
class InputRef(BoundExpression):
    index: int
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        index = self.index
        return lambda row: row[index]


@dataclass
class Const(BoundExpression):
    value: object
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        value = self.value
        return lambda row: value


@dataclass
class Arithmetic(BoundExpression):
    op: str
    left: BoundExpression
    right: BoundExpression
    dtype: DataType = DataType.DOUBLE

    def compile(self) -> Evaluator:
        left, right = self.left.compile(), self.right.compile()
        op = self.op

        if op == "+":
            def evaluate(row):
                a, b = left(row), right(row)
                return None if a is None or b is None else a + b
        elif op == "-":
            def evaluate(row):
                a, b = left(row), right(row)
                return None if a is None or b is None else a - b
        elif op == "*":
            def evaluate(row):
                a, b = left(row), right(row)
                return None if a is None or b is None else a * b
        elif op == "/":
            def evaluate(row):
                a, b = left(row), right(row)
                if a is None or b is None or b == 0:
                    return None  # Hive yields NULL on division by zero
                return a / b
        elif op == "%":
            def evaluate(row):
                a, b = left(row), right(row)
                if a is None or b is None or b == 0:
                    return None
                return a % b
        else:
            raise ExecutionError(f"unknown arithmetic op {op!r}")
        return evaluate


@dataclass
class Comparison(BoundExpression):
    op: str  # '=', '<>', '<', '<=', '>', '>='
    left: BoundExpression
    right: BoundExpression
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        left, right = self.left.compile(), self.right.compile()
        op = self.op
        if op == "=":
            compare = lambda a, b: a == b
        elif op == "<>":
            compare = lambda a, b: a != b
        elif op == "<":
            compare = lambda a, b: a < b
        elif op == "<=":
            compare = lambda a, b: a <= b
        elif op == ">":
            compare = lambda a, b: a > b
        elif op == ">=":
            compare = lambda a, b: a >= b
        else:
            raise ExecutionError(f"unknown comparison {op!r}")

        def evaluate(row):
            a, b = left(row), right(row)
            if a is None or b is None:
                return None
            return compare(a, b)

        return evaluate


@dataclass
class LogicalAnd(BoundExpression):
    operands: List[BoundExpression] = field(default_factory=list)
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        compiled = [operand.compile() for operand in self.operands]

        def evaluate(row):
            saw_null = False
            for evaluator in compiled:
                value = evaluator(row)
                if value is None:
                    saw_null = True
                elif not value:
                    return False
            return None if saw_null else True

        return evaluate


@dataclass
class LogicalOr(BoundExpression):
    operands: List[BoundExpression] = field(default_factory=list)
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        compiled = [operand.compile() for operand in self.operands]

        def evaluate(row):
            saw_null = False
            for evaluator in compiled:
                value = evaluator(row)
                if value is None:
                    saw_null = True
                elif value:
                    return True
            return None if saw_null else False

        return evaluate


@dataclass
class LogicalNot(BoundExpression):
    operand: BoundExpression = None
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        inner = self.operand.compile()

        def evaluate(row):
            value = inner(row)
            return None if value is None else not value

        return evaluate


@dataclass
class ScalarCall(BoundExpression):
    function: ScalarFunction = None
    args: List[BoundExpression] = field(default_factory=list)
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        impl = self.function.impl
        compiled = [arg.compile() for arg in self.args]
        if len(compiled) == 1:
            only = compiled[0]
            return lambda row: impl(only(row))
        if len(compiled) == 2:
            first, second = compiled
            return lambda row: impl(first(row), second(row))
        return lambda row: impl(*[evaluator(row) for evaluator in compiled])


@dataclass
class CaseExpr(BoundExpression):
    branches: List[Tuple[BoundExpression, BoundExpression]] = field(default_factory=list)
    else_value: Optional[BoundExpression] = None
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        compiled = [(cond.compile(), value.compile()) for cond, value in self.branches]
        otherwise = self.else_value.compile() if self.else_value else (lambda row: None)

        def evaluate(row):
            for condition, value in compiled:
                if condition(row):
                    return value(row)
            return otherwise(row)

        return evaluate


@dataclass
class LikeExpr(BoundExpression):
    operand: BoundExpression = None
    pattern: str = ""
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        regex = re.compile(_like_to_regex(self.pattern), re.DOTALL)
        inner = self.operand.compile()
        negated = self.negated

        def evaluate(row):
            value = inner(row)
            if value is None:
                return None
            matched = regex.fullmatch(str(value)) is not None
            return not matched if negated else matched

        return evaluate


@dataclass
class InSet(BoundExpression):
    """Membership test against a literal set (the common TPC-H shape)."""

    operand: BoundExpression = None
    values: frozenset = frozenset()
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        inner = self.operand.compile()
        values = self.values
        negated = self.negated

        def evaluate(row):
            value = inner(row)
            if value is None:
                return None
            contained = value in values
            return not contained if negated else contained

        return evaluate


@dataclass
class IsNullExpr(BoundExpression):
    operand: BoundExpression = None
    negated: bool = False
    dtype: DataType = DataType.BOOLEAN

    def compile(self) -> Evaluator:
        inner = self.operand.compile()
        negated = self.negated
        if negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None


@dataclass
class CastExpr(BoundExpression):
    operand: BoundExpression = None
    dtype: DataType = DataType.STRING

    def compile(self) -> Evaluator:
        inner = self.operand.compile()
        target = self.dtype

        def evaluate(row):
            value = inner(row)
            if value is None:
                return None
            try:
                if target in (DataType.INT, DataType.BIGINT):
                    return int(float(value))
                if target is DataType.DOUBLE:
                    return float(value)
                if target is DataType.BOOLEAN:
                    return bool(value)
                return str(value)
            except (TypeError, ValueError):
                return None  # Hive casts malformed values to NULL

        return evaluate


def _like_to_regex(pattern: str) -> str:
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return "".join(out)


def compile_expression(expression: BoundExpression) -> Evaluator:
    """Compile a bound expression tree into a ``row -> value`` closure."""
    return expression.compile()


def compile_many(expressions: List[BoundExpression]) -> Callable[[Row], Row]:
    """Compile a projection list into a ``row -> tuple`` closure."""
    compiled = [expression.compile() for expression in expressions]
    return lambda row: tuple(evaluator(row) for evaluator in compiled)


def stable_hash(fields: Tuple[object, ...]) -> int:
    """Deterministic cross-process hash of a key tuple (CRC32 of the wire
    encoding) — Python's builtin ``hash`` is salted per process, which
    would make the two engines partition differently."""
    return zlib.crc32(serialize_kv(KeyValue(fields, ()))) & 0x7FFFFFFF


def require_boolean(expression: BoundExpression, context: str) -> BoundExpression:
    if expression.dtype is not DataType.BOOLEAN:
        raise SemanticError(f"{context} must be boolean, got {expression.dtype}")
    return expression
