"""Logical optimizer passes.

Predicate pushdown happens during analysis (:mod:`repro.plan.analyzer`);
this module adds Hive's **ColumnPruner**: walking the bound logical tree
top-down with the set of required output positions, narrowing joins and
scans to just the columns the query touches.  Without it every
intermediate job would materialize full-width rows — exactly the
difference between a 39 GB and a 2 GB temp table for TPC-H Q13.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import PlanError
from repro.exec.expressions import BoundExpression, InputRef
from repro.plan.analyzer import collect_input_refs
from repro.plan.logical import (
    AggregateNode,
    DistinctNode,
    FieldInfo,
    Filter,
    JoinNode,
    LimitNode,
    LogicalNode,
    Project,
    RowSignature,
    Scan,
    SortNode,
    UnionNode,
)


def _remap_refs(expression: BoundExpression, mapping: Dict[int, int]) -> BoundExpression:
    """Copy *expression* with every InputRef index translated."""
    clone = copy.deepcopy(expression)
    stack = [clone]
    seen = set()  # subtrees can be shared (BETWEEN desugaring); remap once
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, InputRef):
            try:
                node.index = mapping[node.index]
            except KeyError:
                raise PlanError(
                    f"column pruner lost input position {node.index}"
                ) from None
        for name in getattr(node, "__dataclass_fields__", {}):
            value = getattr(node, name)
            if isinstance(value, BoundExpression):
                stack.append(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, BoundExpression):
                        stack.append(item)
                    elif isinstance(item, tuple):
                        stack.extend(
                            piece for piece in item if isinstance(piece, BoundExpression)
                        )
    return clone


def _refs_of(expressions: List[BoundExpression]) -> Set[int]:
    needed: Set[int] = set()
    for expression in expressions:
        needed.update(collect_input_refs(expression))
    return needed


def prune_columns(root: LogicalNode) -> LogicalNode:
    """Return an equivalent tree that only carries needed columns."""
    required = set(range(len(root.signature)))
    pruned, _mapping = _prune(root, required)
    return pruned


def _identity(width: int) -> Dict[int, int]:
    return {index: index for index in range(width)}


def _prune(node: LogicalNode, required: Set[int]) -> Tuple[LogicalNode, Dict[int, int]]:
    """Prune *node* so it produces (at least) the *required* positions.

    Returns the rewritten node and a mapping old-position -> new-position
    for every position in *required*.
    """
    if isinstance(node, Scan):
        width = len(node.signature)
        wanted = sorted(index for index in required if 0 <= index < width)
        if len(wanted) == width or not wanted:
            return node, _identity(width)
        fields = [node.signature.fields[index] for index in wanted]
        project = Project(
            child=node,
            expressions=[
                InputRef(index, node.signature.fields[index].dtype) for index in wanted
            ],
            names=[info.name for info in fields],
            signature=RowSignature(
                [FieldInfo(info.binding, info.name, info.dtype) for info in fields]
            ),
        )
        return project, {old: new for new, old in enumerate(wanted)}

    if isinstance(node, Filter):
        child_required = set(required) | set(collect_input_refs(node.predicate))
        child, mapping = _prune(node.child, child_required)
        predicate = _remap_refs(node.predicate, mapping)
        return Filter(child, predicate, signature=child.signature), mapping

    if isinstance(node, Project):
        width = len(node.expressions)
        wanted = sorted(index for index in required if 0 <= index < width)
        if not wanted:
            wanted = list(range(width))
        kept_expressions = [node.expressions[index] for index in wanted]
        child_required = _refs_of(kept_expressions)
        if not child_required:
            child_required = {0} if len(node.child.signature) else set()
        child, mapping = _prune(node.child, child_required)
        rewritten = [_remap_refs(expression, mapping) for expression in kept_expressions]
        names = [node.names[index] for index in wanted]
        new_node = Project(child, rewritten, names)
        return new_node, {old: new for new, old in enumerate(wanted)}

    if isinstance(node, JoinNode):
        left_width = len(node.left.signature)
        residual_refs = (
            set(collect_input_refs(node.residual)) if node.residual is not None else set()
        )
        left_required = {index for index in required if index < left_width}
        left_required |= _refs_of(node.left_keys)
        left_required |= {index for index in residual_refs if index < left_width}
        right_required = {
            index - left_width for index in required if index >= left_width
        }
        right_required |= _refs_of(node.right_keys)
        right_required |= {
            index - left_width for index in residual_refs if index >= left_width
        }
        left, left_map = _prune(node.left, left_required)
        right, right_map = _prune(node.right, right_required)
        new_left_width = len(left.signature)
        left_keys = [_remap_refs(key, left_map) for key in node.left_keys]
        right_keys = [_remap_refs(key, right_map) for key in node.right_keys]
        concat_map: Dict[int, int] = {}
        for old, new in left_map.items():
            concat_map[old] = new
        for old, new in right_map.items():
            concat_map[old + left_width] = new + new_left_width
        residual = (
            _remap_refs(node.residual, concat_map) if node.residual is not None else None
        )
        new_node = JoinNode(
            left=left,
            right=right,
            join_type=node.join_type,
            left_keys=left_keys,
            right_keys=right_keys,
            residual=residual,
            signature=left.signature.concat(right.signature),
        )
        return new_node, concat_map

    if isinstance(node, AggregateNode):
        # output layout (groups then aggregates) is fixed; prune below
        child_required = _refs_of(node.group_expressions)
        for call in node.calls:
            if call.argument is not None:
                child_required |= set(collect_input_refs(call.argument))
        if not child_required and len(node.child.signature):
            child_required = {0}
        child, mapping = _prune(node.child, child_required)
        group_expressions = [
            _remap_refs(expression, mapping) for expression in node.group_expressions
        ]
        calls = []
        for call in node.calls:
            new_call = copy.copy(call)
            if call.argument is not None:
                new_call.argument = _remap_refs(call.argument, mapping)
            calls.append(new_call)
        new_node = AggregateNode(
            child=child,
            group_expressions=group_expressions,
            group_names=list(node.group_names),
            calls=calls,
            signature=node.signature,
        )
        return new_node, _identity(len(node.signature))

    if isinstance(node, SortNode):
        child_required = set(required) | _refs_of(node.sort_expressions)
        child, mapping = _prune(node.child, child_required)
        sort_expressions = [
            _remap_refs(expression, mapping) for expression in node.sort_expressions
        ]
        new_node = SortNode(
            child, sort_expressions, list(node.ascending), signature=child.signature
        )
        return new_node, mapping

    if isinstance(node, LimitNode):
        child, mapping = _prune(node.child, required)
        return LimitNode(child, node.limit, signature=child.signature), mapping

    if isinstance(node, DistinctNode):
        # DISTINCT keys on the full row: every column stays required
        child, mapping = _prune(node.child, set(range(len(node.child.signature))))
        return DistinctNode(child, signature=child.signature), mapping

    if isinstance(node, UnionNode):
        # branch outputs must stay positionally aligned: keep full width
        inputs = []
        for child in node.inputs:
            pruned, _mapping = _prune(child, set(range(len(child.signature))))
            inputs.append(pruned)
        return UnionNode(inputs=inputs, signature=inputs[0].signature), _identity(
            len(node.signature)
        )

    raise PlanError(f"column pruner cannot handle {type(node).__name__}")
