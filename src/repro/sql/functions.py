"""Builtin scalar functions and aggregates (Hive UDF/UDAF equivalents).

Scalar functions are plain callables over Python values with Hive's
NULL-propagation behaviour.  Aggregates follow the GenericUDAF protocol:
``create -> update* -> partial`` on the map side, ``merge* -> result`` on
the reduce side, which is what lets both engines do map-side partial
aggregation before the shuffle.

Dates are ISO-8601 strings (Hive's string-date idiom the TPC-H port
uses); ``year``/``month`` slice them and the ``date_add_*`` helpers do
real calendar arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SemanticError
from repro.common.rows import DataType

# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _days_in_month(year: int, month: int) -> int:
    if month == 2 and _is_leap(year):
        return 29
    return _DAYS_IN_MONTH[month - 1]


def _split_date(text: str) -> Tuple[int, int, int]:
    parts = text.split("-")
    if len(parts) != 3:
        raise SemanticError(f"malformed date: {text!r}")
    return int(parts[0]), int(parts[1]), int(parts[2])


def _join_date(year: int, month: int, day: int) -> str:
    return f"{year:04d}-{month:02d}-{day:02d}"


def date_add_months(text: Optional[str], months) -> Optional[str]:
    """Calendar-correct ``date + INTERVAL n MONTH`` (day clamped)."""
    if text is None or months is None:
        return None
    year, month, day = _split_date(text)
    index = year * 12 + (month - 1) + int(months)
    year, month = index // 12, index % 12 + 1
    return _join_date(year, month, min(day, _days_in_month(year, month)))


def date_add_days(text: Optional[str], days) -> Optional[str]:
    """Calendar-correct ``date + INTERVAL n DAY``."""
    if text is None or days is None:
        return None
    year, month, day = _split_date(text)
    day += int(days)
    while day > _days_in_month(year, month):
        day -= _days_in_month(year, month)
        month += 1
        if month > 12:
            month, year = 1, year + 1
    while day < 1:
        month -= 1
        if month < 1:
            month, year = 12, year - 1
        day += _days_in_month(year, month)
    return _join_date(year, month, day)


def _fn_year(value):
    return None if value is None else int(str(value)[0:4])


def _fn_month(value):
    return None if value is None else int(str(value)[5:7])


def _fn_substr(value, start, length=None):
    if value is None or start is None:
        return None
    text = str(value)
    start = int(start)
    begin = start - 1 if start > 0 else len(text) + start
    begin = max(0, begin)
    if length is None:
        return text[begin:]
    return text[begin : begin + max(0, int(length))]


def _fn_concat(*args):
    if any(arg is None for arg in args):
        return None
    return "".join(str(arg) for arg in args)


def _fn_if(condition, then_value, else_value):
    return then_value if condition else else_value


def _fn_coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _fn_round(value, digits=0):
    if value is None or digits is None:
        return None
    rounded = round(float(value) + 1e-12, int(digits))
    return rounded if digits else float(int(rounded))


def _null_prop(fn: Callable) -> Callable:
    def wrapper(*args):
        if any(arg is None for arg in args):
            return None
        return fn(*args)

    return wrapper


@dataclass(frozen=True)
class ScalarFunction:
    name: str
    impl: Callable
    # fixed return type or a rule over argument types
    return_type: object  # DataType | Callable[[List[DataType]], DataType]
    min_args: int = 1
    max_args: int = 8

    def infer_type(self, arg_types: List[DataType]) -> DataType:
        if isinstance(self.return_type, DataType):
            return self.return_type
        return self.return_type(arg_types)

    def __reduce__(self):
        # Several impls are closures (``_null_prop`` wrappers) that
        # cannot pickle; serialize as a registry reference instead so
        # plan specs carrying scalar calls can cross process boundaries.
        return (get_scalar, (self.name,))


def _first_arg_type(arg_types: List[DataType]) -> DataType:
    return arg_types[0] if arg_types else DataType.STRING


def _second_arg_type(arg_types: List[DataType]) -> DataType:
    return arg_types[1] if len(arg_types) > 1 else DataType.STRING


SCALAR_FUNCTIONS: Dict[str, ScalarFunction] = {}


def _register(name: str, impl: Callable, return_type, min_args=1, max_args=8) -> None:
    SCALAR_FUNCTIONS[name] = ScalarFunction(name, impl, return_type, min_args, max_args)


_register("year", _fn_year, DataType.INT)
_register("month", _fn_month, DataType.INT)
_register("substr", _fn_substr, DataType.STRING, 2, 3)
_register("substring", _fn_substr, DataType.STRING, 2, 3)
_register("concat", _fn_concat, DataType.STRING, 1, 16)
_register("lower", _null_prop(lambda s: str(s).lower()), DataType.STRING)
_register("upper", _null_prop(lambda s: str(s).upper()), DataType.STRING)
_register("length", _null_prop(lambda s: len(str(s))), DataType.INT)
_register("trim", _null_prop(lambda s: str(s).strip()), DataType.STRING)
_register("abs", _null_prop(abs), _first_arg_type)
_register("floor", _null_prop(lambda x: int(math.floor(x))), DataType.BIGINT)
_register("ceil", _null_prop(lambda x: int(math.ceil(x))), DataType.BIGINT)
_register("sqrt", _null_prop(math.sqrt), DataType.DOUBLE)
_register("round", _fn_round, DataType.DOUBLE, 1, 2)
_register("if", _fn_if, _second_arg_type, 3, 3)
_register("coalesce", _fn_coalesce, _first_arg_type, 1, 16)
_register("date_add_months", date_add_months, DataType.DATE, 2, 2)
_register("date_add_days", date_add_days, DataType.DATE, 2, 2)
_register("hash_code", _null_prop(lambda s: hash(str(s)) & 0x7FFFFFFF), DataType.INT)


def get_scalar(name: str) -> ScalarFunction:
    try:
        return SCALAR_FUNCTIONS[name.lower()]
    except KeyError:
        raise SemanticError(f"unknown function: {name}") from None


def is_scalar(name: str) -> bool:
    return name.lower() in SCALAR_FUNCTIONS


# ---------------------------------------------------------------------------
# aggregates (GenericUDAF protocol)
# ---------------------------------------------------------------------------

class Aggregate:
    """Stateless descriptor; accumulators are plain tuples so they can be
    shuffled as partial values between map and reduce sides."""

    name: str = "abstract"

    def create(self):
        raise NotImplementedError

    def update(self, acc, value):
        raise NotImplementedError

    def merge(self, acc, partial):
        raise NotImplementedError

    def partial(self, acc) -> Tuple:
        """Serializable partial state (tuple of primitives)."""
        return acc

    def result(self, acc):
        raise NotImplementedError

    def result_type(self, arg_type: Optional[DataType]) -> DataType:
        raise NotImplementedError


class CountAggregate(Aggregate):
    name = "count"

    def create(self):
        return (0,)

    def update(self, acc, value):
        # COUNT(*) passes the sentinel True; COUNT(x) skips NULLs.
        if value is None:
            return acc
        return (acc[0] + 1,)

    def merge(self, acc, partial):
        return (acc[0] + partial[0],)

    def result(self, acc):
        return acc[0]

    def result_type(self, arg_type):
        return DataType.BIGINT


class SumAggregate(Aggregate):
    name = "sum"

    def create(self):
        return (None,)

    def update(self, acc, value):
        if value is None:
            return acc
        return (value if acc[0] is None else acc[0] + value,)

    def merge(self, acc, partial):
        if partial[0] is None:
            return acc
        return self.update(acc, partial[0])

    def result(self, acc):
        return acc[0]

    def result_type(self, arg_type):
        if arg_type in (DataType.INT, DataType.BIGINT):
            return DataType.BIGINT
        return DataType.DOUBLE


class AvgAggregate(Aggregate):
    name = "avg"

    def create(self):
        return (0.0, 0)

    def update(self, acc, value):
        if value is None:
            return acc
        return (acc[0] + value, acc[1] + 1)

    def merge(self, acc, partial):
        return (acc[0] + partial[0], acc[1] + partial[1])

    def result(self, acc):
        return acc[0] / acc[1] if acc[1] else None

    def result_type(self, arg_type):
        return DataType.DOUBLE


class MinAggregate(Aggregate):
    name = "min"

    def create(self):
        return (None,)

    def update(self, acc, value):
        if value is None:
            return acc
        if acc[0] is None or value < acc[0]:
            return (value,)
        return acc

    def merge(self, acc, partial):
        return self.update(acc, partial[0])

    def result(self, acc):
        return acc[0]

    def result_type(self, arg_type):
        return arg_type or DataType.STRING


class MaxAggregate(MinAggregate):
    name = "max"

    def update(self, acc, value):
        if value is None:
            return acc
        if acc[0] is None or value > acc[0]:
            return (value,)
        return acc


class CountDistinctAggregate(Aggregate):
    """COUNT(DISTINCT x).

    Holds a set; never shipped as a partial (the planner disables
    map-side aggregation when a distinct aggregate is present, matching
    Hive's plan shape), so :meth:`partial` raises by design.
    """

    name = "count_distinct"

    def create(self):
        return frozenset()

    def update(self, acc, value):
        if value is None:
            return acc
        return acc | {value}

    def merge(self, acc, partial):
        return acc | set(partial)

    def partial(self, acc):
        raise SemanticError("distinct aggregates cannot be partially shuffled")

    def result(self, acc):
        return len(acc)

    def result_type(self, arg_type):
        return DataType.BIGINT


AGGREGATES: Dict[str, Aggregate] = {
    agg.name: agg
    for agg in (
        CountAggregate(),
        SumAggregate(),
        AvgAggregate(),
        MinAggregate(),
        MaxAggregate(),
        CountDistinctAggregate(),
    )
}


def get_aggregate(name: str, distinct: bool = False) -> Aggregate:
    lowered = name.lower()
    if distinct:
        if lowered == "count":
            return AGGREGATES["count_distinct"]
        if lowered in ("sum", "avg", "min", "max"):
            # min/max distinct degenerate to plain; sum/avg distinct unsupported
            if lowered in ("min", "max"):
                return AGGREGATES[lowered]
            raise SemanticError(f"{name}(DISTINCT ...) is not supported")
    try:
        return AGGREGATES[lowered]
    except KeyError:
        raise SemanticError(f"unknown aggregate: {name}") from None


def is_aggregate(name: str) -> bool:
    return name.lower() in ("count", "sum", "avg", "min", "max")
