"""Fig 10 — HiBench 20 GB per-job breakdown, Hadoop vs DataMPI.

Paper findings reproduced here:

* every job's startup is ~30 % shorter on DataMPI (light-weight
  framework vs per-job JVM machinery);
* AGGREGATE's Map-Shuffle section improves ~40 %;
* JOIN's three jobs improve their MS sections by ~20 % (JOB1), ~55 %
  (JOB2) and ~70 % (JOB3, the 1-map/1-reduce sink job that benefits
  purely from light-weight process management).
"""

from benchhelpers import emit, results_path, run_once

from repro.bench import fresh_hibench, improvement_percent, run_hibench_query
from repro.reporting.breakdown import format_breakdown_table
from repro.reporting.figures import write_csv


def _experiment():
    hdfs, metastore = fresh_hibench(20, sample_uservisits=16000)
    runs = {}
    for which in ("aggregate", "join"):
        for engine in ("hadoop", "datampi"):
            runs[(which, engine)] = run_hibench_query(engine, hdfs, metastore, which)
    return runs


def test_fig10_hibench_breakdown(benchmark):
    runs = run_once(benchmark, _experiment)
    emit(format_breakdown_table(
        {f"{which}/{engine}": run.breakdown for (which, engine), run in runs.items()}
    ))

    csv_rows = []
    startup_improvements = []
    ms_improvements = {}
    for which in ("aggregate", "join"):
        hadoop = runs[(which, "hadoop")].breakdown
        datampi = runs[(which, "datampi")].breakdown
        assert len(hadoop.jobs) == len(datampi.jobs), "same physical plan -> same #jobs"
        for index, (hj, dj) in enumerate(zip(hadoop.jobs, datampi.jobs)):
            startup_improvements.append(improvement_percent(hj.startup, dj.startup))
            ms_improvements[(which, index)] = improvement_percent(
                hj.map_shuffle, dj.map_shuffle
            )
            csv_rows.append(
                [which, index, round(hj.startup, 2), round(hj.map_shuffle, 2),
                 round(hj.others, 2), round(dj.startup, 2),
                 round(dj.map_shuffle, 2), round(dj.others, 2)]
            )
    write_csv(results_path("fig10_breakdown.csv"),
              ["workload", "job", "h_startup", "h_ms", "h_others",
               "d_startup", "d_ms", "d_others"], csv_rows)

    average_startup = sum(startup_improvements) / len(startup_improvements)
    emit(f"average startup improvement: {average_startup:.1f}% (paper: ~30%)")
    assert 20.0 < average_startup < 50.0

    for (which, index), improvement in sorted(ms_improvements.items()):
        emit(f"{which} job{index + 1} MS improvement: {improvement:.1f}%")
    # paper band: 20%-70% across jobs, with the sink job (JOIN job3) highest
    assert all(10.0 < value <= 90.0 for value in ms_improvements.values())
    join_values = [v for (w, _i), v in ms_improvements.items() if w == "join"]
    assert max(join_values) == ms_improvements[("join", 2)], \
        "the tiny sink job should benefit the most from light-weight tasks"
