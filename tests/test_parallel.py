"""Dual-mode equivalence for the multi-core worker pool.

The persistent process pool (``repro.parallel``) exists to change
wall-clock time and nothing else: with ``repro.parallel.workers`` set,
every query must produce byte-identical rows and the identical
simulated-seconds figure it produces inline.  The suite sweeps engines
(hadoop, datampi, llap) crossed with row-at-a-time and vectorized
execution over sequence-file and ORC warehouses, at pool sizes 2 and 4,
and additionally checks the failure policy (a crashed worker degrades
to inline recompute, never a wrong answer), clean shutdown, and the
plan-cache layout-version key the pool's shared kernels rely on.
"""

import multiprocessing
import os
import signal

import pytest

from repro import connect
from repro.bench import fresh_tpch
from repro.common.config import (
    Configuration,
    EXEC_VECTORIZED,
    PARALLEL_WORKERS,
)
from repro.common.errors import ConfigError
from repro.common.rows import LAYOUT_VERSION
from repro.obs import get_metrics
from repro.parallel import (
    active_pool,
    get_pool,
    make_batches,
    resolve_workers,
    shutdown,
)
from repro.workloads.tpch import tpch_query

SF = 1
LINEITEM_SAMPLE = 300
ENGINES = ("hadoop", "datampi", "llap")
MODES = (False, True)
FORMATS = ("sequence", "orc")
QUERIES = (1, 6)


@pytest.fixture(scope="module")
def stores():
    return {
        fmt: fresh_tpch(SF, lineitem_sample=LINEITEM_SAMPLE, format_name=fmt)
        for fmt in FORMATS
    }


@pytest.fixture(scope="module", autouse=True)
def _pool_cleanup():
    """Leave no worker processes behind for the rest of the test run."""
    yield
    shutdown()


def run_queries(store, engine, vectorized, workers):
    """(query, rows-repr, simulated seconds) for each probe query."""
    hdfs, metastore = store
    conf = {EXEC_VECTORIZED: vectorized, PARALLEL_WORKERS: workers}
    out = []
    with connect(engine=engine, hdfs=hdfs, metastore=metastore,
                 conf=conf) as session:
        for query in QUERIES:
            results = session.execute(tpch_query(query, SF))
            rows = [r for r in results if r.statement == "select"][-1].rows
            simulated = sum(r.simulated_seconds for r in results)
            out.append((query, repr(rows), simulated))
    return out


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("vectorized", MODES, ids=["row", "vectorized"])
@pytest.mark.parametrize("engine", ENGINES)
def test_pool_matches_inline(stores, engine, vectorized, fmt):
    """Pool of 2: identical rows AND identical simulated time."""
    store = stores[fmt]
    inline = run_queries(store, engine, vectorized, 0)
    pooled = run_queries(store, engine, vectorized, 2)
    assert pooled == inline


@pytest.mark.parametrize("engine", ENGINES)
def test_pool_of_four_matches_inline(stores, engine):
    store = stores["sequence"]
    inline = run_queries(store, engine, True, 0)
    pooled = run_queries(store, engine, True, 4)
    assert pooled == inline


def test_worker_crash_falls_back_inline(stores):
    """SIGKILLed workers must cost a fallback, never a wrong answer."""
    store = stores["sequence"]
    baseline = run_queries(store, "hadoop", True, 0)
    pool = get_pool(2)
    before = get_metrics().counter("parallel.fallbacks").value
    respawned = get_metrics().counter("parallel.workers.respawned").value
    for pid in pool.worker_pids():
        os.kill(pid, signal.SIGKILL)
    pooled = run_queries(store, "hadoop", True, 2)
    assert pooled == baseline
    assert get_metrics().counter("parallel.fallbacks").value > before
    assert (
        get_metrics().counter("parallel.workers.respawned").value > respawned
    )
    # The pool healed: every slot holds a live respawned worker.
    assert len(pool.worker_pids()) == 2
    assert all(worker.proc.is_alive() for worker in pool._workers)


def test_shutdown_leaves_no_children():
    pool = get_pool(2)
    pids = pool.worker_pids()
    assert len(pids) == 2
    shutdown()
    assert active_pool() is None
    leaked = [
        proc for proc in multiprocessing.active_children()
        if proc.name.startswith("repro-parallel-worker")
    ]
    assert leaked == []
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)


def test_get_pool_resizes():
    pool = get_pool(2)
    assert len(pool.worker_pids()) == 2
    bigger = get_pool(3)
    assert bigger is active_pool()
    assert len(bigger.worker_pids()) == 3
    shutdown()


def test_resolve_workers():
    assert resolve_workers(Configuration()) == 0
    assert resolve_workers(Configuration({PARALLEL_WORKERS: 3})) == 3
    assert resolve_workers(Configuration({PARALLEL_WORKERS: "0"})) == 0
    assert resolve_workers(Configuration({PARALLEL_WORKERS: -2})) == 0
    auto = resolve_workers(Configuration({PARALLEL_WORKERS: "auto"}))
    assert auto == max(1, (os.cpu_count() or 2) - 1)
    with pytest.raises(ConfigError):
        resolve_workers(Configuration({PARALLEL_WORKERS: "many"}))


def test_make_batches_matches_engine_chunking():
    rows = [(i,) for i in range(10)]
    total = 3 * 2 ** 20  # 3 MB at a 1 MB target -> 3 batches
    batches = make_batches(rows, total_bytes=total, target_mb=1.0, min_rows=4)
    assert [chunk for chunk, _ in batches] == [rows[0:4], rows[4:8], rows[8:10]]
    assert sum(nbytes for _, nbytes in batches) == pytest.approx(total)
    # Empty scans still charge their bytes through a single empty batch.
    assert make_batches([], total_bytes=77.0, target_mb=8.0, min_rows=200) \
        == [([], 77.0)]


def test_plan_cache_key_includes_layout_version(stores):
    """A ColumnBatch layout bump must invalidate compiled plans: cached
    descriptors are compiled into kernels against a specific physical
    column representation (the one pool workers also assume)."""
    hdfs, metastore = stores["sequence"]
    with connect(engine="datampi", hdfs=hdfs, metastore=metastore) as session:
        key = session._plan_cache_key(object())  # repr()-able stand-in
    assert LAYOUT_VERSION in key
