"""Shared fixtures: a small warehouse and engine helpers."""

import random

import pytest

from repro import HDFS, Metastore, connect
from repro.common.rows import Schema

EMP_SCHEMA = Schema.parse("emp_id int, name string, dept string, salary double, hired date")
DEPT_SCHEMA = Schema.parse("dept string, budget double, region string")

EMP_ROWS = [
    (1, "ann", "eng", 120.0, "2001-04-01"),
    (2, "bob", "eng", 100.0, "2003-06-15"),
    (3, "cat", "ops", 90.0, "1999-01-20"),
    (4, "dan", "ops", 95.0, "2005-09-09"),
    (5, "eve", "hr", 80.0, "2002-02-02"),
    (6, "fay", None, 70.0, "2004-12-31"),
    (7, "gus", "eng", None, "2000-07-07"),
]

DEPT_ROWS = [
    ("eng", 1000.0, "west"),
    ("ops", 500.0, "east"),
    ("fin", 800.0, "west"),  # no employees
]


def build_warehouse(scale: float = 5e5):
    hdfs = HDFS(num_workers=7)
    metastore = Metastore(hdfs)
    emp = metastore.create_table("emp", EMP_SCHEMA, format_name="text")
    dept = metastore.create_table("dept", DEPT_SCHEMA, format_name="text")
    hdfs.write(f"{emp.location}/part-0", EMP_SCHEMA, EMP_ROWS, scale=scale)
    hdfs.write(f"{dept.location}/part-0", DEPT_SCHEMA, DEPT_ROWS, scale=100.0)
    return hdfs, metastore


@pytest.fixture()
def warehouse():
    """(hdfs, metastore) with small `emp` and `dept` tables."""
    return build_warehouse()


@pytest.fixture()
def local_session(warehouse):
    hdfs, metastore = warehouse
    return connect(engine="local", hdfs=hdfs, metastore=metastore)


def build_big_warehouse():
    """A larger random table for engine-level tests (deterministic)."""
    rng = random.Random(99)
    schema = Schema.parse("k int, grp string, val double")
    rows = [
        (i, f"g{rng.randrange(25)}", round(rng.uniform(0, 100), 3))
        for i in range(4000)
    ]
    hdfs = HDFS(num_workers=7)
    metastore = Metastore(hdfs)
    table = metastore.create_table("facts", schema, format_name="text")
    hdfs.write(f"{table.location}/part-0", schema, rows, scale=2e5)
    return hdfs, metastore


@pytest.fixture()
def big_warehouse():
    return build_big_warehouse()


@pytest.fixture()
def big_warehouse_factory():
    """For tests that need several pristine copies of the warehouse."""
    return build_big_warehouse
