"""Node-local LRU cache of decoded ORC stripes (LLAP's data cache).

Each daemon keeps the decoded per-column value lists of recently scanned
stripes resident in its off-heap cache.  A hit means the fragment skips
both the simulated disk read (local or remote) *and* the ORC decode
charge for that stripe; a miss reads, decodes, and inserts.  Entries are
keyed by :meth:`~repro.storage.formats.orc.OrcStoredFile.stripe_cache_key`
— *(path, stripe row offset, column signature)* — and additionally pin
the identity of the stored file they came from, so a path rewritten by
DROP + re-CREATE or INSERT OVERWRITE can never serve stale data: the
identity mismatch is treated as a miss and the dead entry is dropped.

Eviction is strict LRU by cached (logical) bytes against a configurable
capacity (``repro.llap.cache.mb``).  Every transition is counted, and
because the discrete-event simulation is deterministic, the hit/miss/
eviction sequence is reproducible for a given seed and workload.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional


@dataclass
class CacheEntry:
    """One resident stripe: the decoded columns plus enough identity to
    detect a rewritten file."""

    stored: object  # the OrcStoredFile the decoded columns belong to
    nbytes: float  # logical (scaled) encoded bytes this entry accounts for
    columns: List[list]  # decoded per-column value lists (shared, read-only)


class StripeCache:
    """LRU cache of decoded stripe columns for one daemon node.

    A non-positive *capacity_bytes* disables caching entirely (every
    lookup misses, nothing is inserted) — used to model cache-less
    daemons and to force deterministic miss paths in tests.
    """

    def __init__(self, node_name: str, capacity_bytes: float):
        self.node_name = node_name
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self.bytes = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.hit_bytes = 0.0
        self.miss_bytes = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable, stored: object,
               nbytes: float) -> Optional[List[list]]:
        """The decoded columns for *key*, or ``None`` on a miss.

        *stored* must be the live stored-file object for the path in the
        key; an entry recorded against a different object (the path was
        rewritten) is discarded rather than served.  *nbytes* is the
        scaled byte weight of the access, accounted to the hit/miss
        byte counters either way.
        """
        entry = self._entries.get(key)
        if entry is not None and entry.stored is not stored:
            self._drop(key)
            entry = None
        if entry is None:
            self.misses += 1
            self.miss_bytes += nbytes
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.hit_bytes += nbytes
        return entry.columns

    def insert(self, key: Hashable, stored: object, nbytes: float,
               columns: List[list]) -> None:
        """Make *key* resident, evicting LRU entries to fit; entries
        larger than the whole cache are not admitted."""
        if self.capacity_bytes <= 0 or nbytes > self.capacity_bytes:
            return
        if key in self._entries:
            self._drop(key)
        self._entries[key] = CacheEntry(stored=stored, nbytes=nbytes,
                                        columns=columns)
        self.bytes += nbytes
        while self.bytes > self.capacity_bytes and self._entries:
            victim, _entry = next(iter(self._entries.items()))
            self._drop(victim)
            self.evictions += 1

    def invalidate(self) -> int:
        """Drop everything (the daemon died); returns entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.bytes = 0.0
        self.invalidations += dropped
        return dropped

    def _drop(self, key: Hashable) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.bytes -= entry.nbytes

    def stats(self) -> Dict[str, object]:
        """Counters for ``Session.caches()`` (public introspection)."""
        return {
            "entries": len(self._entries),
            "bytes": self.bytes,
            "capacity_bytes": self.capacity_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_bytes": self.hit_bytes,
            "miss_bytes": self.miss_bytes,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
