"""A Hadoop ``JobConf``-style string-keyed configuration.

Hive, Hadoop and DataMPI all communicate tuning knobs through one loosely
typed key-value configuration object, so we model the same thing: every
value is stored as a string and read back through typed getters.  The
well-known keys used throughout the reproduction are declared as constants
so call sites cannot typo them.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.common.errors import ConfigError

# -- Hive on DataMPI knobs (paper, section IV-D) ---------------------------
HIVE_DATAMPI_PARALLELISM = "hive.datampi.parallelism"  # "default" | "enhanced"
HIVE_DATAMPI_MEM_USED_PERCENT = "hive.datampi.memusedpercent"  # float in (0,1)
HIVE_DATAMPI_SEND_QUEUE = "hive.datampi.sendqueue"  # int >= 1
HIVE_EXECUTION_ENGINE = "hive.execution.engine"  # "mr" | "datampi"
HIVE_FILE_FORMAT = "hive.default.fileformat"  # "text" | "sequence" | "orc"
HIVE_MAPJOIN_SMALLTABLE_BYTES = "hive.mapjoin.smalltable.filesize"

# -- cluster / engine knobs -------------------------------------------------
DFS_BLOCK_SIZE = "dfs.block.size"
DFS_REPLICATION = "dfs.replication"
MAPRED_SLOTS_PER_NODE = "mapred.tasktracker.tasks.maximum"
DATAMPI_SLOTS_PER_NODE = "datampi.tasks.maximum"
DATAMPI_NONBLOCKING = "datampi.shuffle.nonblocking"  # bool
DATAMPI_OVERLAP = "datampi.shuffle.overlap"  # bool; False = send only at O end
HIVE_DATAMPI_DAG = "hive.datampi.dag"  # bool; True = pipeline stages (future work §VII.3)
SHUFFLE_PARTITION_BYTES = "shuffle.partition.bytes"
EXEC_VECTORIZED = "repro.exec.vectorized"  # bool; columnar map-side execution

# -- fault injection / recovery knobs ---------------------------------------
FAILURE_RATE = "repro.failure.rate"  # per-attempt task failure probability
FAULT_SPEC = "repro.faults"  # declarative fault plan (see docs/fault_model.md)
FAULT_SEED = "repro.faults.seed"  # seed for every fault-plan random draw
TASK_MAX_ATTEMPTS = "repro.task.max.attempts"  # per-task attempt cap (mr)
RETRY_MAX = "repro.retry.max"  # whole-job resubmissions (dm)
RETRY_BACKOFF = "repro.retry.backoff"  # base backoff seconds, doubles per retry
RETRY_FALLBACK = "repro.retry.fallback"  # engine name to degrade to ("" = off)
SPECULATIVE_EXECUTION = "repro.speculative.execution"  # bool (mr stragglers)
SPECULATIVE_SLOWDOWN = "repro.speculative.slowdown"  # lateness factor to trigger
BLACKLIST_THRESHOLD = "repro.blacklist.failures"  # failures/node before blacklist

# -- membership / health knobs (docs/fault_model.md) -------------------------
HEARTBEAT_ENABLED = "repro.heartbeat.enabled"  # "auto" | "true" | "false"
HEARTBEAT_INTERVAL = "repro.heartbeat.interval"  # seconds between beats
HEARTBEAT_SUSPECT = "repro.heartbeat.suspect"  # silence before suspicion
HEARTBEAT_TIMEOUT = "repro.heartbeat.timeout"  # silence before declared dead
QUERY_DEADLINE = "repro.query.deadline"  # seconds per query (0 = no deadline)
LEASE_AUDIT = "repro.lease.audit"  # record the per-slot lease event trail
BREAKER_THRESHOLD = "repro.breaker.threshold"  # consecutive failures (0 = off)
BREAKER_COOLDOWN = "repro.breaker.cooldown"  # seconds a tripped breaker stays open

# -- llap persistent-daemon engine knobs (docs/llap_engine.md) ---------------
LLAP_CACHE_MB = "repro.llap.cache.mb"  # per-node decoded-stripe cache capacity
LLAP_DAEMON_SLOTS = "repro.llap.daemon.slots"  # executors per daemon (0 = all)
RESULT_CACHE_ENABLED = "repro.result.cache.enabled"  # bool; driver result cache
RESULT_CACHE_ENTRIES = "repro.result.cache.entries"  # LRU capacity (queries)

# -- host-parallelism knobs (docs/performance.md) ---------------------------
PARALLEL_WORKERS = "repro.parallel.workers"  # pool size; 0 = inline, "auto"

# -- statistics / skew-join knobs (docs/optimizer.md) -----------------------
STATS_ENABLED = "repro.stats.enabled"  # bool; stats-driven planning
STATS_AUTO = "repro.stats.auto"  # bool; basic-stats autogather on INSERT/CTAS
SKEWJOIN_THRESHOLD = "repro.skewjoin.threshold"  # heavy-key share; <=0 disables
SKEWJOIN_FANOUT = "repro.skewjoin.fanout"  # reducers per heavy key; 0 = all

# -- workload scheduler knobs (docs/scheduling.md) --------------------------
SCHED_POLICY = "repro.sched.policy"  # "fifo" | "fair" | "capacity"
SCHED_MAX_CONCURRENT = "repro.sched.max.concurrent"  # global cap (0 = unlimited)
SCHED_POOLS = "repro.sched.pools"  # "etl:weight=2,cap=1,queue=4; adhoc:weight=1"
SCHED_DEFAULT_POOL = "repro.sched.pool"  # pool for submits that don't name one


class Configuration:
    """String-keyed configuration with typed accessors and defaults.

    >>> conf = Configuration({"hive.datampi.sendqueue": "6"})
    >>> conf.get_int("hive.datampi.sendqueue", 4)
    6
    """

    def __init__(self, values: Optional[Mapping[str, str]] = None):
        self._values: Dict[str, str] = {}
        if values:
            for key, value in values.items():
                self.set(key, value)

    # -- mutation -----------------------------------------------------------
    def set(self, key: str, value: object) -> None:
        """Store *value* under *key*; any value is stringified."""
        if not key:
            raise ConfigError("configuration key must be non-empty")
        if isinstance(value, bool):
            self._values[key] = "true" if value else "false"
        else:
            self._values[key] = str(value)

    def update(self, other: Mapping[str, str]) -> None:
        for key, value in other.items():
            self.set(key, value)

    # -- typed access ---------------------------------------------------------
    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self._values.get(key, default)

    def get_int(self, key: str, default: int) -> int:
        raw = self._values.get(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise ConfigError(f"{key}={raw!r} is not an int") from exc

    def get_float(self, key: str, default: float) -> float:
        raw = self._values.get(key)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError as exc:
            raise ConfigError(f"{key}={raw!r} is not a float") from exc

    def get_bool(self, key: str, default: bool) -> bool:
        raw = self._values.get(key)
        if raw is None:
            return default
        lowered = raw.strip().lower()
        if lowered in ("true", "1", "yes", "on"):
            return True
        if lowered in ("false", "0", "no", "off"):
            return False
        raise ConfigError(f"{key}={raw!r} is not a bool")

    # -- protocol -------------------------------------------------------------
    def copy(self) -> "Configuration":
        return Configuration(self._values)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(sorted(self._values.items()))

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"Configuration({self._values!r})"
