"""Map-side physical operators (Hive's operator tree, push style).

The physical plan stores *descriptors* (plain dataclasses); each task
instantiates fresh runtime operators from them, compiling the bound
expressions into closures.  Rows are pushed down the pipeline one batch
at a time by :class:`repro.exec.mapper.ExecMapper`; the pipeline ends in
either a :class:`ReduceSinkOperator` (emitting shuffle pairs through the
engine's collector — Hadoop's spill buffer or the DataMPICollector) or a
:class:`FileSinkOperator` (buffering output rows for HDFS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ExecutionError
from repro.common.kv import KeyValue, kv_size
from repro.exec.expressions import BoundExpression, compile_many, stable_hash

Row = Tuple[object, ...]


# ---------------------------------------------------------------------------
# descriptors (what the physical plan serializes)
# ---------------------------------------------------------------------------

@dataclass
class FilterDesc:
    predicate: BoundExpression


@dataclass
class SelectDesc:
    expressions: List[BoundExpression]


@dataclass
class MapGroupByDesc:
    """Map-side partial aggregation (hash in memory, flush on pressure)."""

    key_expressions: List[BoundExpression]
    # (aggregate object, argument expression or None for COUNT(*))
    aggregates: List[Tuple[object, Optional[BoundExpression]]]
    max_groups_in_memory: int = 100_000


@dataclass
class ReduceSinkDesc:
    key_expressions: List[BoundExpression]
    value_expressions: List[BoundExpression]
    tag: int = 0
    # number of reduce partitions is decided by the engine at job start


@dataclass
class MapJoinDesc:
    """Broadcast hash join executed entirely map-side.

    ``small_location`` names the HDFS directory of the small table; the
    engine loads its rows (running the broadcast chain) and hands them to
    the operator at init.  When ``swap_output`` is set the build side is
    the logical *left* input, so output rows are ``small + big`` to keep
    the plan's column order.
    """

    small_location: str
    probe_key_expressions: List[BoundExpression]  # over the big (streamed) side
    build_key_expressions: List[BoundExpression]  # over the small side's rows
    join_type: str = "inner"  # 'inner' | 'left'
    small_width: int = 0  # columns in the small side (for outer-join nulls)
    swap_output: bool = False


@dataclass
class LimitDesc:
    limit: int


@dataclass
class FileSinkDesc:
    column_names: List[str] = field(default_factory=list)


MapOperatorDesc = object  # union of the dataclasses above


# ---------------------------------------------------------------------------
# runtime context + collector protocol
# ---------------------------------------------------------------------------

class Collector:
    """Engine-provided sink for shuffle pairs (partition pre-computed)."""

    def collect(self, partition: int, pair: KeyValue) -> None:
        raise NotImplementedError


class ListCollector(Collector):
    """Test/reference collector: buffers everything."""

    def __init__(self):
        self.pairs: List[Tuple[int, KeyValue]] = []

    def collect(self, partition: int, pair: KeyValue) -> None:
        self.pairs.append((partition, pair))


class OperatorContext:
    """Per-task runtime services shared by the operator pipeline."""

    def __init__(
        self,
        collector: Optional[Collector] = None,
        num_partitions: int = 1,
        small_tables: Optional[Dict[str, List[Row]]] = None,
    ):
        self.collector = collector
        self.num_partitions = max(1, num_partitions)
        self.small_tables = small_tables or {}
        self.output_rows: List[Row] = []
        # counters
        self.rows_read = 0
        self.rows_emitted = 0
        self.kv_pairs_out = 0
        self.kv_bytes_out = 0
        # serialized size -> pair count (Fig 2(c)/(d) instrumentation)
        self.kv_size_histogram: Dict[int, int] = {}


# ---------------------------------------------------------------------------
# runtime operators
# ---------------------------------------------------------------------------

class MapOperator:
    def __init__(self, child: Optional["MapOperator"]):
        self.child = child

    def process(self, row: Row) -> None:
        raise NotImplementedError

    def close(self) -> None:
        if self.child is not None:
            self.child.close()


class FilterOperator(MapOperator):
    def __init__(self, desc: FilterDesc, child: MapOperator):
        super().__init__(child)
        self._predicate = desc.predicate.compile()

    def process(self, row: Row) -> None:
        if self._predicate(row) is True:
            self.child.process(row)


class SelectOperator(MapOperator):
    def __init__(self, desc: SelectDesc, child: MapOperator):
        super().__init__(child)
        self._project = compile_many(desc.expressions)

    def process(self, row: Row) -> None:
        self.child.process(self._project(row))


class MapGroupByOperator(MapOperator):
    """Hash-based partial aggregation; flushes when the table grows past
    the configured bound (Hive's map-side GroupBy with memory pressure)."""

    def __init__(self, desc: MapGroupByDesc, child: MapOperator):
        super().__init__(child)
        self._key = compile_many(desc.key_expressions)
        self._aggregates = [
            (aggregate, arg.compile() if arg is not None else None)
            for aggregate, arg in desc.aggregates
        ]
        self._max_groups = desc.max_groups_in_memory
        self._table: Dict[Row, list] = {}
        self.flushes = 0

    def process(self, row: Row) -> None:
        key = self._key(row)
        accumulators = self._table.get(key)
        if accumulators is None:
            if len(self._table) >= self._max_groups:
                self._flush()
            accumulators = [aggregate.create() for aggregate, _arg in self._aggregates]
            self._table[key] = accumulators
        for position, (aggregate, arg) in enumerate(self._aggregates):
            value = True if arg is None else arg(row)  # COUNT(*) sentinel
            accumulators[position] = aggregate.update(accumulators[position], value)

    def _flush(self) -> None:
        self.flushes += 1
        for key, accumulators in self._table.items():
            flat: List[object] = list(key)
            for (aggregate, _arg), accumulator in zip(self._aggregates, accumulators):
                flat.extend(aggregate.partial(accumulator))
            self.child.process(tuple(flat))
        self._table.clear()

    def close(self) -> None:
        self._flush()
        super().close()


class MapJoinOperator(MapOperator):
    """Broadcast hash join: build side loaded at init, probe side streamed."""

    def __init__(self, desc: MapJoinDesc, child: MapOperator, context: OperatorContext):
        super().__init__(child)
        self._probe_key = compile_many(desc.probe_key_expressions)
        self._join_type = desc.join_type
        self._small_width = desc.small_width
        self._swap = desc.swap_output
        try:
            small_rows = context.small_tables[desc.small_location]
        except KeyError:
            raise ExecutionError(
                f"map-join small table not loaded: {desc.small_location}"
            ) from None
        build_key = compile_many(desc.build_key_expressions)
        self._hash: Dict[Row, List[Row]] = {}
        for row in small_rows:
            key = build_key(row)
            if any(part is None for part in key):
                continue  # NULL never matches an equi-join key
            self._hash.setdefault(key, []).append(row)

    def process(self, row: Row) -> None:
        key = self._probe_key(row)
        matches = None
        if not any(part is None for part in key):
            matches = self._hash.get(key)
        if matches:
            for small_row in matches:
                if self._swap:
                    self.child.process(small_row + row)
                else:
                    self.child.process(row + small_row)
        elif self._join_type == "left":
            self.child.process(row + (None,) * self._small_width)


class LimitOperator(MapOperator):
    def __init__(self, desc: LimitDesc, child: MapOperator):
        super().__init__(child)
        self._remaining = desc.limit

    def process(self, row: Row) -> None:
        if self._remaining > 0:
            self._remaining -= 1
            self.child.process(row)


class ReduceSinkOperator(MapOperator):
    """Terminal: computes (key, value), partitions, hands to the collector."""

    def __init__(self, desc: ReduceSinkDesc, context: OperatorContext):
        super().__init__(None)
        self._key = compile_many(desc.key_expressions)
        self._value = compile_many(desc.value_expressions)
        self._tag = desc.tag
        self._context = context

    def process(self, row: Row) -> None:
        key = self._key(row)
        value = (self._tag,) + self._value(row)
        pair = KeyValue(key, value)
        partition = stable_hash(key) % self._context.num_partitions
        context = self._context
        size = kv_size(pair)
        context.kv_pairs_out += 1
        context.kv_bytes_out += size
        histogram = context.kv_size_histogram
        histogram[size] = histogram.get(size, 0) + 1
        context.collector.collect(partition, pair)

    def close(self) -> None:
        pass


class FileSinkOperator(MapOperator):
    """Terminal: buffers final output rows (the task writes them to HDFS)."""

    def __init__(self, desc: FileSinkDesc, context: OperatorContext):
        super().__init__(None)
        self._context = context

    def process(self, row: Row) -> None:
        self._context.rows_emitted += 1
        self._context.output_rows.append(row)

    def close(self) -> None:
        pass


def build_pipeline(
    descriptors: List[MapOperatorDesc], context: OperatorContext
) -> MapOperator:
    """Instantiate a runtime pipeline from descriptors (sink must be last)."""
    if not descriptors:
        raise ExecutionError("empty operator pipeline")
    tail = descriptors[-1]
    if isinstance(tail, ReduceSinkDesc):
        operator: MapOperator = ReduceSinkOperator(tail, context)
    elif isinstance(tail, FileSinkDesc):
        operator = FileSinkOperator(tail, context)
    else:
        raise ExecutionError(f"pipeline must end in a sink, got {type(tail).__name__}")
    for descriptor in reversed(descriptors[:-1]):
        if isinstance(descriptor, FilterDesc):
            operator = FilterOperator(descriptor, operator)
        elif isinstance(descriptor, SelectDesc):
            operator = SelectOperator(descriptor, operator)
        elif isinstance(descriptor, MapGroupByDesc):
            operator = MapGroupByOperator(descriptor, operator)
        elif isinstance(descriptor, MapJoinDesc):
            operator = MapJoinOperator(descriptor, operator, context)
        elif isinstance(descriptor, LimitDesc):
            operator = LimitOperator(descriptor, operator)
        else:
            raise ExecutionError(f"unknown operator descriptor {type(descriptor).__name__}")
    return operator
